//! Wearable health-data aggregation with a negotiated privacy target.
//!
//! Run with: `cargo run --example health_monitoring`
//!
//! The paper's §1 motivates aggregating health data from wearables where
//! individual readings are sensitive. This example starts from an
//! `(ε, δ)`-LDP *requirement* and an `(α, β)`-utility *requirement*, asks
//! Theorem 4.9 for a feasible noise level, configures the mechanism from
//! it, and verifies both sides empirically — including a comparison
//! against the fixed-variance Gaussian baseline at the same noise budget.

use dptd::core::theory::{privacy, tradeoff};
use dptd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = dptd::seeded_rng(2024);

    // 400 wearables report resting heart rate over 20 daily windows.
    let lambda1 = 2.0;
    let cfg = SyntheticConfig {
        num_users: 400,
        num_objects: 20,
        lambda1,
        truth_low: 55.0,
        truth_high: 75.0,
    };
    let dataset = cfg.generate(&mut rng)?;

    // Requirements: (ε=1, δ=0.2)-LDP per user; (α=1 bpm, β=0.2)-utility.
    let sensitivity = SensitivityBound::new(1.5, 0.9, lambda1)?;
    let requirement = privacy::PrivacyRequirement::new(1.0, 0.2, sensitivity)?;
    let (alpha, beta) = (1.0, 0.2);

    let window = tradeoff::feasible_noise_window(alpha, beta, cfg.num_users, &requirement)?;
    println!(
        "Theorem 4.9 window for c = λ₁/λ₂: [{:.3}, {:.3}] — feasible: {}",
        window.c_min,
        window.c_max,
        window.is_feasible()
    );
    let lambda2 = tradeoff::choose_lambda2(alpha, beta, cfg.num_users, &requirement)?;
    println!(
        "chosen hyper-parameter λ₂ = {lambda2:.4} (E[noise var] = {:.3})\n",
        1.0 / lambda2
    );

    // Run the paper's mechanism at the chosen operating point.
    let pipeline = PrivatePipeline::new(Crh::default(), lambda2)?;
    let run = pipeline.run(&dataset.observations, &mut rng)?;
    println!(
        "paper mechanism : noise {:.3} bpm, utility MAE {:.4} bpm (α target {alpha})",
        run.noise.mean_abs_noise,
        run.utility_mae()?
    );

    // Baseline: fixed-σ Gaussian with the same expected noise variance
    // (E[δ²] = 1/λ₂) — same utility pipeline, but the noise level is
    // public.
    let sigma = (1.0 / lambda2).sqrt();
    let fixed = FixedGaussianMechanism::from_sigma(sigma)?;
    let mut perturbed = dataset.observations.clone();
    for s in 0..dataset.num_users() {
        let original: Vec<f64> = dataset
            .observations
            .observations_of_user(s)
            .map(|(_, v)| v)
            .collect();
        let noisy = fixed.perturb_report(&original, &mut rng);
        perturbed.replace_user_observations(s, &noisy);
    }
    let clean = Crh::default().discover(&dataset.observations)?;
    let fixed_run = Crh::default().discover(&perturbed)?;
    println!(
        "fixed-σ baseline: noise σ {:.3} bpm, utility MAE {:.4} bpm (noise level public!)",
        sigma,
        mae(&clean.truths, &fixed_run.truths)?
    );

    println!(
        "\nBoth perturbations keep aggregate error within the α target, but only\n\
         the paper's mechanism keeps each user's realised noise level private."
    );
    Ok(())
}
