//! Air-quality monitoring campaign — multi-round private sensing.
//!
//! Run with: `cargo run --example air_quality`
//!
//! A city runs a week-long campaign: every day the same 200 phone users
//! sense a different part of the pollution grid. Each round runs the full
//! protocol (broadcast, local perturbation, lossy network, deadline); the
//! server refines user weights across rounds with the streaming
//! estimator, and every user's cumulative `(ε, δ)` cost is tracked via
//! composition.

use dptd::ldp::PrivacyLoss;
use dptd::prelude::*;
use dptd::protocol::campaign::Campaign;
use dptd::protocol::sim::{NetworkConfig, RoundConfig};
use dptd::sensing::air_quality::AirQualityConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = dptd::seeded_rng(314);
    let num_users = 200;

    // Privacy per round: Theorem 4.8 at (ε = 1, δ = 0.3), λ₁ = 1.
    let lambda1 = 1.0;
    let sens = SensitivityBound::new(1.5, 0.9, lambda1)?;
    let req = theory::privacy::PrivacyRequirement::new(1.0, 0.3, sens)?;
    let c = theory::privacy::min_noise_level(&req);
    let lambda2 = theory::privacy::lambda2_for_noise_level(lambda1, c)?;
    println!("per-round privacy (1.0, 0.3)-LDP -> lambda2 = {lambda2:.4}\n");

    let mut campaign = Campaign::new(
        num_users,
        lambda2,
        NetworkConfig {
            drop_probability: 0.05,
            ..NetworkConfig::default()
        },
        RoundConfig::default(),
        PrivacyLoss::new(1.0, 0.3)?,
    )?;

    println!("day | cells | participants | map MAE (ug/m3) | cumulative (eps, delta)");
    for day in 0..5 {
        // Each day covers a fresh 12x12 district of the city.
        let world = AirQualityConfig {
            num_users,
            ..Default::default()
        }
        .generate(&mut rng)?;
        let round = campaign.run_round(&world.observations, &mut rng)?;
        let mae = dptd::stats::summary::mae(&round.streaming_truths, &world.ground_truths)?;
        println!(
            "{:>3} | {:>5} | {:>12} | {:>15.3} | ({:.1}, {:.2})",
            day,
            world.num_objects(),
            round.outcome.participants.len(),
            mae,
            round.cumulative_privacy.epsilon(),
            round.cumulative_privacy.delta(),
        );
    }

    println!(
        "\nThe pollution map stays accurate every day while each user's privacy\n\
         budget is explicitly accounted across rounds (basic composition)."
    );
    Ok(())
}
