//! Traffic-speed sensing over the full protocol runtime.
//!
//! Run with: `cargo run --example traffic_speed`
//!
//! The paper's §1 motivates GPS-based traffic monitoring where location
//! traces are sensitive. This example runs the crowd-sensing *protocol* —
//! broadcast, local perturbation, lossy network, deadline — over a fleet
//! of vehicles reporting road-segment speeds, first on the deterministic
//! discrete-event simulator (with drops and stragglers), then on the real
//! multi-threaded runtime.

use dptd::prelude::*;
use dptd::protocol::runtime::{run_threaded_round, ThreadedConfig};
use dptd::protocol::sim::{NetworkConfig, RoundConfig, SimHarness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = dptd::seeded_rng(99);

    // 120 vehicles, 25 road segments, true speeds 30-110 km/h.
    let cfg = SyntheticConfig {
        num_users: 120,
        num_objects: 25,
        lambda1: 0.5, // GPS-derived speeds are fairly noisy
        truth_low: 30.0,
        truth_high: 110.0,
    };
    let dataset = cfg.generate(&mut rng)?;
    let lambda2 = 0.25; // E[noise variance] = 4 (km/h)²

    // --- Discrete-event simulation with an unreliable network ---
    let network = NetworkConfig {
        min_latency_us: 10_000,
        max_latency_us: 120_000,
        drop_probability: 0.10,
    };
    let round = RoundConfig {
        deadline_us: 2_000_000,
        max_think_time_us: 400_000,
        straggler_fraction: 0.05,
        duplicate_probability: 0.02,
    };
    let harness = SimHarness::new(Crh::default(), lambda2, network)?;
    let outcome = harness.run_round(&dataset.observations, &round, &mut rng)?;

    println!("— discrete-event round —");
    println!(
        "participants {}/{} (missing {}), messages {} sent / {} dropped / {} duplicates",
        outcome.participants.len(),
        dataset.num_users(),
        outcome.missing.len(),
        outcome.messages_sent,
        outcome.messages_dropped,
        outcome.duplicates_discarded,
    );
    println!(
        "speed-map MAE vs ground truth: {:.2} km/h (finished at t = {} ms)",
        dptd::stats::summary::mae(&outcome.truths, &dataset.ground_truths)?,
        outcome.finished_at_us / 1000,
    );

    // --- Real threads ---
    let threaded = run_threaded_round(
        Crh::default(),
        lambda2,
        &dataset.observations,
        &ThreadedConfig::default(),
    )?;
    println!("\n— threaded round —");
    println!(
        "collected {} reports in {:?}; speed-map MAE {:.2} km/h",
        threaded.reports_collected,
        threaded.elapsed,
        dptd::stats::summary::mae(&threaded.truths, &dataset.ground_truths)?,
    );

    println!(
        "\nNo user ever talked to another user, and the server only ever saw\n\
         perturbed speeds — yet the fleet-wide speed map is accurate."
    );
    Ok(())
}
