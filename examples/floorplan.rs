//! Indoor floor-plan construction (§5.2 of the paper).
//!
//! Run with: `cargo run --example floorplan`
//!
//! Simulates 247 smartphone users walking 129 hallway segments, estimates
//! segment lengths with privacy-preserving CRH, and reproduces the Fig. 7
//! weight-comparison story: the weights CRH estimates track the weights
//! users deserve, and a user who adds big noise is discounted.

use dptd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = dptd::seeded_rng(7);

    let dataset = FloorplanConfig::default().generate(&mut rng)?;
    println!(
        "floor plan: {} hallway segments, {} users, {} walk records",
        dataset.num_objects(),
        dataset.num_users(),
        dataset.observations.num_observations()
    );

    let crh = Crh::default();
    let pipeline = PrivatePipeline::new(crh, 1.0)?; // E[noise variance] = 1 m²
    let run = pipeline.run(&dataset.observations, &mut rng)?;
    let metrics = RunMetrics::from_run(&run, Some(&dataset.ground_truths))?;

    println!(
        "mean |noise| injected      : {:.3} m",
        metrics.mean_abs_noise
    );
    println!(
        "reconstruction MAE (clean) : {:.3} m",
        metrics.truth_mae_unperturbed.unwrap()
    );
    println!(
        "reconstruction MAE (priv)  : {:.3} m",
        metrics.truth_mae_perturbed.unwrap()
    );
    println!("aggregate shift (utility)  : {:.3} m", metrics.utility_mae);

    // Fig. 7: true vs estimated weights for 7 sample users.
    let cmp = WeightComparison::compute(&dataset, &run, &crh)?;
    println!("\nuser  true-w(orig) est-w(orig)  true-w(pert) est-w(pert)");
    for s in 0..7 {
        println!(
            "{:>4} {:>12.3} {:>11.3} {:>13.3} {:>11.3}",
            s,
            cmp.true_weights_original[s],
            cmp.estimated_weights_original[s],
            cmp.true_weights_perturbed[s],
            cmp.estimated_weights_perturbed[s],
        );
    }
    println!(
        "\nrank correlation(true, estimated): original {:.3}, perturbed {:.3}",
        cmp.rank_correlation_original(),
        cmp.rank_correlation_perturbed()
    );
    Ok(())
}
