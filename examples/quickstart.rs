//! Quickstart: the paper's pipeline end-to-end on synthetic data.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Generates the §5.1 world (150 users, 30 objects), runs
//! privacy-preserving truth discovery at a few noise levels, and prints
//! the utility loss next to the noise magnitude — the paper's headline
//! "large noise, small utility loss" in one table.

use dptd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = dptd::seeded_rng(42);

    // The paper's synthetic world: σ_s² ~ Exp(λ₁ = 2).
    let dataset = SyntheticConfig::default().generate(&mut rng)?;
    println!(
        "world: {} users × {} objects, ground truths in [0, 10)",
        dataset.num_users(),
        dataset.num_objects()
    );

    // Reference: truth discovery without any perturbation.
    let clean = Crh::default().discover(&dataset.observations)?;
    println!(
        "unperturbed CRH vs ground truth: MAE = {:.4}\n",
        dataset.mae_to_truth(&clean.truths)
    );

    println!(
        "{:>10} {:>14} {:>16} {:>18}",
        "lambda2", "mean |noise|", "utility MAE", "MAE vs truth"
    );
    for lambda2 in [50.0, 10.0, 2.0, 1.0, 0.5] {
        let pipeline = PrivatePipeline::new(Crh::default(), lambda2)?;
        let run = pipeline.run(&dataset.observations, &mut rng)?;
        let metrics = RunMetrics::from_run(&run, Some(&dataset.ground_truths))?;
        println!(
            "{:>10.2} {:>14.4} {:>16.4} {:>18.4}",
            lambda2,
            metrics.mean_abs_noise,
            metrics.utility_mae,
            metrics.truth_mae_perturbed.unwrap(),
        );
    }

    println!(
        "\nEven at the noisiest setting the aggregate moved a fraction of the\n\
         injected noise: weight estimation absorbed the perturbation."
    );
    Ok(())
}
