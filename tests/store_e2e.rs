//! Acceptance harness for the segmented snapshot store: a long-horizon
//! (200-round) campaign with compaction enabled must end with on-disk
//! bytes bounded by `O(num_users + rounds_since_last_snapshot)` — a
//! fixed multiple of one snapshot, independent of campaign length — and
//! a crashed campaign resumed **from the newest snapshot** must land on
//! a weights digest and budget ledger bit-identical to an uninterrupted
//! run. The same long log is inspected through the `dptd recover`
//! read-only path and stays byte-for-byte untouched.

mod common;

use dptd::engine::store::{read_dir, SegmentStore, StoreConfig};
use dptd::engine::{EngineBackend, RecordKind, WalPolicy};
use dptd::ldp::PrivacyLoss;
use dptd::protocol::campaign::{CampaignConfig, CampaignDriver};
use dptd::stats::digest::fnv1a_f64s;

const USERS: usize = 40;
const OBJECTS: usize = 4;
const ROUNDS: u64 = 200;
const COMPACT_EVERY: u64 = 16;

fn load() -> dptd::engine::LoadGen {
    common::churny_load(USERS, OBJECTS, ROUNDS, 0.2, 0.02, 0.02, 97)
}

fn config(load: &dptd::engine::LoadGen) -> CampaignConfig {
    let per_round = PrivacyLoss::new(0.05, 0.0).unwrap();
    CampaignConfig {
        num_objects: OBJECTS,
        deadline_us: load.config().epoch_len_us,
        per_round_loss: per_round,
        // Roomy: a 200-round horizon without total exhaustion.
        budget: per_round.compose_k(ROUNDS as u32 + 8),
    }
}

fn store_config() -> StoreConfig {
    StoreConfig {
        rotate_bytes: 0,
        rotate_records: 8,
        compact_every: COMPACT_EVERY,
    }
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum()
}

/// Drive rounds `[from, to)` of the campaign over the store in `dir`,
/// returning (ledger, weights) at the end.
fn run_rounds(dir: &std::path::Path, from_hint: u64, to: u64) -> (Vec<u32>, Vec<f64>) {
    let load = load();
    let (store, replay) = SegmentStore::open_dir(dir, store_config()).unwrap();
    let policy = WalPolicy::from_campaign(&config(&load));
    let (backend, recovered) = EngineBackend::with_log(
        common::engine_for(&load, 4, 1024),
        Box::new(store),
        &replay,
        policy,
    )
    .unwrap();
    let next = recovered.next_epoch();
    assert!(
        next >= from_hint,
        "resume point {next} went backwards from {from_hint}"
    );
    let mut driver = CampaignDriver::resume(
        backend,
        config(&load),
        recovered.rounds_debited,
        recovered.records_applied.min(u64::from(u32::MAX)) as u32,
    )
    .unwrap();
    for epoch in next..to {
        driver.run_round(epoch, load.epoch_reports(epoch)).unwrap();
    }
    let ledger = driver.accountant().debits_by_user().to_vec();
    let weights = driver.into_backend().current_weights().to_vec();
    (ledger, weights)
}

#[test]
fn two_hundred_round_campaign_has_bounded_disk_and_snapshot_resume() {
    let base = std::env::temp_dir().join(format!(
        "dptd-store-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let uninterrupted_dir = base.join("uninterrupted");
    let crashed_dir = base.join("crashed");

    // Uninterrupted 200-round reference.
    let (ref_ledger, ref_weights) = run_rounds(&uninterrupted_dir, 0, ROUNDS);

    // ── Bounded disk ────────────────────────────────────────────────
    // The log holds one snapshot plus at most ~compact_every records
    // (plus rotation slack); every record is O(num_users), so "a fixed
    // multiple of one snapshot" is the bound — independent of the 200
    // rounds. An uncompacted log would hold all 200 records.
    let replayed = read_dir(&uninterrupted_dir).unwrap();
    let snapshot_bytes = replayed
        .replay
        .records
        .last()
        .unwrap()
        .to_snapshot()
        .encode()
        .len() as u64;
    let total = dir_bytes(&uninterrupted_dir);
    let bound = (2 * COMPACT_EVERY + 8) * snapshot_bytes / 2;
    assert!(
        total < bound,
        "on-disk {total} bytes exceeds the compaction bound {bound} \
         (snapshot = {snapshot_bytes} bytes)"
    );
    // Far below what 200 uncompacted records would occupy.
    assert!(total < ROUNDS * snapshot_bytes / 4, "{total} bytes");
    // And recovery replays only the post-snapshot suffix, not 200
    // records: O(segment), not O(campaign-lifetime).
    assert!(
        (replayed.replay.records.len() as u64) <= 2 * COMPACT_EVERY + 2,
        "recovery replays {} records",
        replayed.replay.records.len()
    );
    assert_eq!(replayed.replay.records[0].kind, RecordKind::Snapshot);
    assert!(replayed.newest_snapshot_epoch().unwrap() >= ROUNDS - COMPACT_EVERY - 1);

    // ── Crash + resume from the newest snapshot ─────────────────────
    // Kill the campaign at round 150 (a record boundary: the store
    // fault harness covers torn offsets exhaustively), then resume.
    let (_, _) = run_rounds(&crashed_dir, 0, 150);
    let mid = read_dir(&crashed_dir).unwrap();
    assert!(
        mid.newest_snapshot_epoch().is_some(),
        "the crashed log must carry a snapshot to seed from"
    );
    let (ledger, weights) = run_rounds(&crashed_dir, 150, ROUNDS);
    assert_eq!(ledger, ref_ledger, "resumed ledger diverged");
    assert_eq!(
        fnv1a_f64s(&weights),
        fnv1a_f64s(&ref_weights),
        "resumed weights digest diverged"
    );
    assert_eq!(weights, ref_weights);

    // The resumed directory is byte-identical to the uninterrupted one.
    let image = |dir: &std::path::Path| -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };
    assert_eq!(image(&uninterrupted_dir), image(&crashed_dir));

    // ── Read-only inspection stays read-only ────────────────────────
    let before = image(&uninterrupted_dir);
    let _ = read_dir(&uninterrupted_dir).unwrap();
    assert_eq!(before, image(&uninterrupted_dir));

    let _ = std::fs::remove_dir_all(&base);
}
