//! End-to-end integration tests: the full Algorithm 2 pipeline across
//! crates, on both of the paper's dataset families.

use dptd::prelude::*;

#[test]
fn synthetic_pipeline_full_circle() {
    // Generate the §5.1 world, run privacy-preserving truth discovery,
    // verify utility and weight behaviour jointly.
    let mut rng = dptd::seeded_rng(1001);
    let dataset = SyntheticConfig::default().generate(&mut rng).unwrap();

    let pipeline = PrivatePipeline::new(Crh::default(), 2.0).unwrap();
    let run = pipeline.run(&dataset.observations, &mut rng).unwrap();

    // The aggregate must track ground truth on both sides.
    assert!(dataset.mae_to_truth(&run.unperturbed.truths) < 0.1);
    assert!(dataset.mae_to_truth(&run.perturbed.truths) < 0.25);
    // And the perturbation-induced shift must be well below the noise.
    let mae = run.utility_mae().unwrap();
    assert!(
        mae < run.noise.mean_abs_noise / 2.0,
        "utility MAE {mae} not well below noise {}",
        run.noise.mean_abs_noise
    );
}

#[test]
fn floorplan_pipeline_full_circle() {
    let mut rng = dptd::seeded_rng(1002);
    let dataset = FloorplanConfig::default().generate(&mut rng).unwrap();

    let pipeline = PrivatePipeline::new(Crh::default(), 1.0).unwrap();
    let run = pipeline.run(&dataset.observations, &mut rng).unwrap();

    // Hallway lengths are 5-40 m; private reconstruction stays sub-metre.
    assert!(dataset.mae_to_truth(&run.perturbed.truths) < 1.0);
}

#[test]
fn mechanism_is_algorithm_agnostic() {
    // §3.1: the mechanism works with any continuous truth-discovery
    // method. Same world, same noise draw pattern, four algorithms.
    let mut rng = dptd::seeded_rng(1003);
    let dataset = SyntheticConfig {
        num_users: 80,
        num_objects: 20,
        ..Default::default()
    }
    .generate(&mut rng)
    .unwrap();

    fn run_with<A: TruthDiscoverer + Copy>(a: A, data: &ObservationMatrix, seed: u64) -> f64 {
        let pipeline = PrivatePipeline::new(a, 2.0).unwrap();
        let mut rng = dptd::seeded_rng(seed);
        pipeline.run(data, &mut rng).unwrap().utility_mae().unwrap()
    }

    let crh = run_with(Crh::default(), &dataset.observations, 77);
    let gtm = run_with(Gtm::default(), &dataset.observations, 77);
    let mean = run_with(MeanAggregator::new(), &dataset.observations, 77);
    let median = run_with(MedianAggregator::new(), &dataset.observations, 77);
    for (name, mae) in [
        ("crh", crh),
        ("gtm", gtm),
        ("mean", mean),
        ("median", median),
    ] {
        assert!(mae.is_finite() && mae < 1.0, "{name} MAE {mae}");
    }
}

#[test]
fn theory_to_mechanism_to_audit_loop() {
    // Choose (ε, δ) → λ₂ via Theorem 4.8 → mechanism → empirical audit
    // must not reveal more than ε (+MC slack).
    use dptd::ldp::audit::{audit_mechanism, AuditConfig};

    let lambda1 = 2.0;
    let (eps, delta) = (1.0, 0.25);
    let sens = SensitivityBound::new(1.5, 0.9, lambda1).unwrap();
    let req = theory::privacy::PrivacyRequirement::new(eps, delta, sens).unwrap();
    let c = theory::privacy::min_noise_level(&req);
    let lambda2 = theory::privacy::lambda2_for_noise_level(lambda1, c).unwrap();

    let mech = RandomizedVarianceGaussian::new(lambda2).unwrap();
    let distance = sens.delta_bound_paper();
    let cfg = AuditConfig {
        trials: 60_000,
        bins: 20,
        min_count: 300,
        low: -5.0 * distance,
        high: 6.0 * distance,
    };
    let mut rng = dptd::seeded_rng(1004);
    let audit = audit_mechanism(&mech, 0.0, distance, &cfg, &mut rng).unwrap();
    assert!(
        audit.epsilon_hat <= eps + 0.5,
        "audited ε̂ {} above target {eps}",
        audit.epsilon_hat
    );
}

#[test]
fn seeds_reproduce_entire_experiments() {
    // The whole experiment (world + noise + discovery) must be bit-stable
    // under a fixed seed — the reproducibility contract of the harness.
    let run = |seed: u64| {
        let mut rng = dptd::seeded_rng(seed);
        let ds = SyntheticConfig::default().generate(&mut rng).unwrap();
        let pipeline = PrivatePipeline::new(Crh::default(), 1.0).unwrap();
        let out = pipeline.run(&ds.observations, &mut rng).unwrap();
        (out.perturbed.truths, out.noise.mean_abs_noise)
    };
    assert_eq!(run(555), run(555));
    assert_ne!(run(555), run(556));
}

#[test]
fn larger_noise_never_helps_utility_on_average() {
    // Sweep λ₂ downwards (more noise); average utility MAE over seeds
    // must be non-decreasing within tolerance.
    let mut rng = dptd::seeded_rng(1005);
    let dataset = SyntheticConfig::default().generate(&mut rng).unwrap();
    let mut previous = 0.0;
    for lambda2 in [100.0, 10.0, 1.0, 0.25] {
        let pipeline = PrivatePipeline::new(Crh::default(), lambda2).unwrap();
        let mut acc = 0.0;
        for seed in 0..10 {
            let mut rng = dptd::seeded_rng(9000 + seed);
            acc += pipeline
                .run(&dataset.observations, &mut rng)
                .unwrap()
                .utility_mae()
                .unwrap();
        }
        let mae = acc / 10.0;
        assert!(
            mae >= previous - 0.01,
            "MAE decreased when noise grew: {previous} -> {mae} at λ₂={lambda2}"
        );
        previous = mae;
    }
}
