//! End-to-end pin for the observability layer.
//!
//! Two guarantees, tested over real TCP against the multi-campaign
//! server:
//!
//! 1. **Observability is free of side effects.** A served run with
//!    tracing enabled and `QueryStatus` snapshots interleaved between
//!    every submit and round close produces round tuples, weights
//!    digests, and budget debit ledgers bit-identical to both an
//!    uninstrumented served run and the sequential in-process
//!    `CampaignDriver` reference.
//! 2. **The live metrics plane tells the truth.** With three campaigns
//!    driven concurrently, one `QueryStatus` snapshot reports every
//!    campaign, fair shares that sum to at most 100%, ingest latency
//!    quantiles, connection gauges, and — after deliberately
//!    overflowing a bounded queue — the per-campaign `refused_busy`
//!    frequency counter.

mod common;

use dptd::engine::{Engine, EngineConfig, LoadGen};
use dptd::ldp::PrivacyLoss;
use dptd::obs::trace::{self, codes};
use dptd::obs::{names, MetricsSnapshot};
use dptd::protocol::campaign::{CampaignConfig, CampaignDriver};
use dptd::server::client::SubmitOutcome;
use dptd::server::registry::RegistryConfig;
use dptd::server::{CampaignSpec, Client, Server, ServerConfig};
use dptd::stats::digest::fnv1a_f64s;
use dptd::truth::Loss;

/// One campaign's shape: distinct seeds/sizes per campaign so the
/// snapshot demonstrably keeps the streams apart.
#[derive(Clone, Copy)]
struct Shape {
    id: &'static str,
    seed: u64,
    users: usize,
    objects: usize,
    rounds: u64,
    shards: usize,
    churn: f64,
}

const SHAPES: [Shape; 3] = [
    Shape {
        id: "obs-metro-air",
        seed: 41,
        users: 120,
        objects: 4,
        rounds: 3,
        shards: 4,
        churn: 0.2,
    },
    Shape {
        id: "obs-floorplan",
        seed: 42,
        users: 80,
        objects: 3,
        rounds: 3,
        shards: 2,
        churn: 0.1,
    },
    Shape {
        id: "obs-traffic.v1",
        seed: 43,
        users: 100,
        objects: 5,
        rounds: 3,
        shards: 4,
        churn: 0.25,
    },
];

fn load_for(shape: &Shape) -> LoadGen {
    common::churny_load(
        shape.users,
        shape.objects,
        shape.rounds,
        shape.churn,
        0.02,
        0.02,
        shape.seed,
    )
}

fn campaign_config(shape: &Shape) -> CampaignConfig {
    CampaignConfig {
        num_objects: shape.objects,
        deadline_us: 1_000_000,
        per_round_loss: PrivacyLoss::new(0.5, 0.01).unwrap(),
        budget: PrivacyLoss::new(1.5, 0.03).unwrap(),
    }
}

fn spec_for(shape: &Shape, durable: bool) -> CampaignSpec {
    let cfg = campaign_config(shape);
    CampaignSpec {
        num_users: shape.users as u64,
        num_objects: shape.objects as u64,
        num_shards: shape.shards as u64,
        workers: 0,
        engine_queue: 4_096,
        deadline_us: cfg.deadline_us,
        submission_capacity: 1 << 15,
        per_round_epsilon: cfg.per_round_loss.epsilon(),
        per_round_delta: cfg.per_round_loss.delta(),
        budget_epsilon: cfg.budget.epsilon(),
        budget_delta: cfg.budget.delta(),
        stream_tag: shape.seed ^ (shape.users as u64) << 20,
        durable,
    }
}

/// What one campaign run observably produced: per round
/// `(accepted, refused, duplicates, late, weights digest)` plus the
/// final per-user debit ledger.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    rounds: Vec<(u64, u64, u64, u64, u64)>,
    debits: Vec<u32>,
}

/// The sequential in-process reference: the same stream through a bare
/// `CampaignDriver<EngineBackend>`.
fn reference_trace(shape: &Shape) -> Trace {
    let load = load_for(shape);
    let engine = Engine::new(EngineConfig {
        num_users: shape.users,
        num_objects: shape.objects,
        num_shards: shape.shards,
        epoch_deadline_us: 1_000_000,
        loss: Loss::Squared,
        ..EngineConfig::default()
    })
    .unwrap();
    let backend = dptd::engine::EngineBackend::new(engine).unwrap();
    let mut driver = CampaignDriver::new(backend, campaign_config(shape)).unwrap();
    let mut rounds = Vec::new();
    for epoch in 0..shape.rounds {
        let round = driver.run_round(epoch, load.epoch_reports(epoch)).unwrap();
        rounds.push((
            round.accepted as u64,
            round.refused_users as u64,
            round.duplicates_discarded,
            round.late_dropped,
            fnv1a_f64s(&round.weights),
        ));
    }
    Trace {
        rounds,
        debits: driver.accountant().debits_by_user().to_vec(),
    }
}

/// Drive all shapes through one server sequentially. When
/// `instrumented`, a full `QueryStatus` snapshot is pulled between
/// every submit and close — the exact interleaving that must not
/// perturb a single bit — and the third campaign runs durable so the
/// WAL commit path is traced too.
fn serve_all(instrumented: bool, wal_root: Option<&std::path::Path>) -> Vec<Trace> {
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        registry: RegistryConfig {
            wal_root: wal_root.map(std::path::Path::to_path_buf),
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut out = Vec::new();
    for (i, shape) in SHAPES.iter().enumerate() {
        let durable = wal_root.is_some() && i == 2;
        client
            .create_campaign(shape.id, spec_for(shape, durable))
            .unwrap();
        let load = load_for(shape);
        let mut trace = Trace {
            rounds: Vec::new(),
            debits: Vec::new(),
        };
        for epoch in 0..shape.rounds {
            client
                .submit_chunked(shape.id, &load.epoch_reports(epoch), 128)
                .unwrap();
            if instrumented {
                let snap = client.query_status().unwrap();
                assert!(
                    snap.campaign_ids().iter().any(|id| id == shape.id),
                    "mid-run snapshot must list the live campaign `{}`",
                    shape.id
                );
                assert!(
                    snap.scalar(&names::campaign_metric(shape.id, names::QUEUE_DEPTH))
                        .is_some(),
                    "mid-run snapshot must carry the campaign's queue depth"
                );
            }
            let round = client.close_round(shape.id, epoch).unwrap();
            trace.rounds.push((
                round.accepted,
                round.refused,
                round.duplicates,
                round.late,
                round.weights_digest,
            ));
        }
        trace.debits = client.query_budget(shape.id).unwrap().debits;
        out.push(trace);
    }
    server.shutdown();
    out
}

#[test]
fn instrumented_runs_are_bit_identical_to_uninstrumented_and_in_process_references() {
    let wal_root = std::env::temp_dir().join(format!(
        "dptd-obs-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&wal_root);

    let references: Vec<Trace> = SHAPES.iter().map(reference_trace).collect();
    let plain = serve_all(false, None);

    // The instrumented arm: tracing on, snapshots interleaved, third
    // campaign durable (so WAL commit spans fire).
    trace::reset();
    trace::set_enabled(true);
    let traced = serve_all(true, Some(&wal_root));
    // A batch engine run under tracing covers the round/route/filter/
    // merge spans the incremental served path does not drive.
    let gen = common::bursty_load(2_000, 4, 2, 0.01, 0.01, 9);
    let eng = Engine::new(EngineConfig {
        num_users: 2_000,
        num_objects: 4,
        num_shards: 4,
        epoch_deadline_us: 1_000_000,
        ..EngineConfig::default()
    })
    .unwrap();
    eng.run(gen.stream()).unwrap();
    trace::set_enabled(false);

    assert_eq!(
        plain, references,
        "uninstrumented served runs diverged from the in-process references"
    );
    assert_eq!(
        traced, references,
        "tracing + mid-run QueryStatus perturbed digests or debit ledgers"
    );

    // The rings saw the whole pipeline: submission instants, dequeues,
    // durable commit spans, and the batch engine's round/merge spans.
    let events = trace::collect();
    let has = |code, phase| events.iter().any(|e| e.code == code && e.phase == phase);
    assert!(has(codes::SUBMIT, 'i'), "no submit instants recorded");
    assert!(has(codes::DEQUEUE, 'i'), "no dequeue instants recorded");
    assert!(
        has(codes::COMMIT, 'B') && has(codes::COMMIT, 'E'),
        "durable campaign left no WAL commit span"
    );
    assert!(
        has(codes::ROUND, 'B') && has(codes::ROUND, 'E'),
        "batch engine run left no round span"
    );
    assert!(has(codes::MERGE, 'B'), "no merge span recorded");

    // And the dump is well-formed chrome://tracing JSON.
    let json = trace::dump_chrome_json();
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    for needle in [
        "\"ph\":\"B\"",
        "\"ph\":\"E\"",
        "\"ph\":\"i\"",
        "\"name\":\"commit\"",
    ] {
        assert!(json.contains(needle), "dump missing {needle}");
    }

    let _ = std::fs::remove_dir_all(&wal_root);
}

#[test]
fn live_status_snapshot_reports_fair_shares_latencies_and_refusals() {
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Hold one extra connection open so the live-connection gauge has a
    // floor even after the campaign drivers hang up.
    let mut observer = Client::connect(addr).unwrap();

    // Three campaigns driven fully concurrently, one thread each.
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for shape in &SHAPES {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .create_campaign(shape.id, spec_for(shape, false))
                    .unwrap();
                let load = load_for(shape);
                for epoch in 0..shape.rounds {
                    client
                        .submit_chunked(shape.id, &load.epoch_reports(epoch), 128)
                        .unwrap();
                    client.close_round(shape.id, epoch).unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().expect("campaign thread");
        }
    });

    // Overflow a tiny bounded queue so the Busy frequency counter has
    // something to say.
    let busy = &SHAPES[1];
    let busy_id = "obs-busy";
    let mut spec = spec_for(busy, false);
    spec.submission_capacity = 32;
    let load = load_for(busy);
    let reports = load.epoch_reports(0);
    observer.create_campaign(busy_id, spec).unwrap();
    match observer.submit(busy_id, reports[..32].to_vec()).unwrap() {
        SubmitOutcome::Queued(32) => {}
        other => panic!("expected 32 queued, got {other:?}"),
    }
    match observer.submit(busy_id, reports[32..34].to_vec()).unwrap() {
        SubmitOutcome::Busy { .. } => {}
        other => panic!("expected Busy, got {other:?}"),
    }

    let snapshot: MetricsSnapshot = observer.query_status().unwrap();

    // Connection plane: the observer itself is live, and at least four
    // connections (observer + three drivers) were accepted.
    assert!(snapshot.scalar(names::SERVER_CONN_LIVE).unwrap_or(0) >= 1);
    assert!(snapshot.scalar(names::SERVER_CONN_ACCEPTED).unwrap_or(0) >= 4);
    assert!(snapshot.scalar(names::SERVER_REQUESTS).unwrap_or(0) > 0);

    // Campaign plane: every campaign present, fair shares a partition.
    let shares = snapshot.campaign_shares();
    for shape in &SHAPES {
        let share = shares
            .iter()
            .find(|s| s.id == shape.id)
            .unwrap_or_else(|| panic!("campaign `{}` missing from the snapshot", shape.id));
        assert!(
            share.submitted > 0,
            "`{}` reported no submissions",
            shape.id
        );
        assert!(share.accepted > 0, "`{}` reported no accepts", shape.id);
        assert_eq!(share.rounds, shape.rounds, "`{}` round count", shape.id);
        assert_eq!(share.queue_depth, 0, "`{}` should have drained", shape.id);
        assert!(!share.quarantined);
        assert!(
            share.ingest.p50_ns().is_some() && share.ingest.p99_ns().is_some(),
            "`{}` must expose ingest latency quantiles",
            shape.id
        );
        assert!((0.0..=1.0).contains(&share.share));
    }
    let total: f64 = shares.iter().map(|s| s.share).sum();
    assert!(
        total <= 1.0 + 1e-9,
        "fair shares must sum to at most 100%, got {total}"
    );

    // Refusal plane: the overflowed queue shows up as a per-campaign
    // Busy frequency, in both the share view and the raw counter.
    let busy_share = shares.iter().find(|s| s.id == busy_id).unwrap();
    assert!(
        busy_share.refused_busy >= 1,
        "the overflowed queue must be visible as refused_busy"
    );
    assert_eq!(
        snapshot.scalar(&names::campaign_metric(busy_id, names::REFUSED_BUSY)),
        Some(busy_share.refused_busy)
    );

    // The per-campaign wire metrics carry the connection plane too.
    let report = observer.query_metrics(SHAPES[0].id).unwrap();
    assert!(report.conn_live >= 1);
    assert!(report.conn_accepted >= 4);
    assert!(report.io_threads >= 1);

    server.shutdown();
}
