//! Loopback end-to-end harness for the cluster subsystem.
//!
//! The acceptance bar, part one: **a 3-node campaign over real TCP —
//! durable, with a budget-constrained final round — is bit-identical in
//! weights digest AND per-user debit ledger to the same campaign on a
//! single-node server and to an in-process `CampaignDriver<SimBackend>`
//! run.** Each node owns a rendezvous partition of the population, so
//! nothing about fanning the stream out and merging it back through the
//! two-phase barrier may perturb a single bit.
//!
//! Part two: **failover.** A primary node replicating its WAL directory
//! to a follower is killed without any flush; a fresh node pointed at
//! the follower's replica directory resumes the campaign via the stock
//! crash-recovery path and completes it bit-identically to an
//! uninterrupted run. (Kills at *arbitrary replication offsets* are
//! pinned by `crates/cluster/tests/replication_faults.rs`; this harness
//! pins the end-to-end TCP story.)

mod common;

use dptd::cluster::{ClusterCampaign, ClusterSpec, NodeConfig, NodeServer};
use dptd::ldp::PrivacyLoss;
use dptd::protocol::campaign::{CampaignConfig, CampaignDriver, SimBackend};
use dptd::server::registry::RegistryConfig;
use dptd::server::{CampaignSpec, Client, Server, ServerConfig};
use dptd::stats::digest::fnv1a_f64s;
use dptd::truth::Loss;

const USERS: usize = 120;
const OBJECTS: usize = 5;
const ROUNDS: u64 = 4;
const SEED: u64 = 303;

fn per_round_loss() -> PrivacyLoss {
    PrivacyLoss::new(0.5, 0.01).unwrap()
}

/// Three affordable rounds against four driven ones: the final round
/// sees budget refusals on every path.
fn budget() -> PrivacyLoss {
    PrivacyLoss::new(1.5, 0.03).unwrap()
}

fn load() -> dptd::engine::LoadGen {
    common::churny_load(USERS, OBJECTS, ROUNDS, 0.25, 0.02, 0.02, SEED)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dptd-cluster-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// What one campaign run observably produced, however it was hosted.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    /// Per round: (accepted, refused, duplicates, late, weights digest).
    rounds: Vec<(u64, u64, u64, u64, u64)>,
    /// Final per-user debit ledger.
    debits: Vec<u32>,
}

fn sim_trace() -> Trace {
    let load = load();
    let mut driver = CampaignDriver::new(
        SimBackend::new(USERS, Loss::Squared).unwrap(),
        CampaignConfig {
            num_objects: OBJECTS,
            deadline_us: 1_000_000,
            per_round_loss: per_round_loss(),
            budget: budget(),
        },
    )
    .unwrap();
    let mut rounds = Vec::new();
    for epoch in 0..ROUNDS {
        let round = driver.run_round(epoch, load.epoch_reports(epoch)).unwrap();
        rounds.push((
            round.accepted as u64,
            round.refused_users as u64,
            round.duplicates_discarded,
            round.late_dropped,
            fnv1a_f64s(&round.weights),
        ));
    }
    Trace {
        rounds,
        debits: driver.accountant().debits_by_user().to_vec(),
    }
}

fn single_node_trace() -> Trace {
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        registry: RegistryConfig::default(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .create_campaign(
            "one-node",
            CampaignSpec {
                num_users: USERS as u64,
                num_objects: OBJECTS as u64,
                num_shards: 4,
                workers: 0,
                engine_queue: 4_096,
                deadline_us: 1_000_000,
                submission_capacity: 1 << 15,
                per_round_epsilon: per_round_loss().epsilon(),
                per_round_delta: per_round_loss().delta(),
                budget_epsilon: budget().epsilon(),
                budget_delta: budget().delta(),
                stream_tag: SEED,
                durable: false,
            },
        )
        .unwrap();
    let load = load();
    let mut rounds = Vec::new();
    for epoch in 0..ROUNDS {
        client
            .submit_chunked("one-node", &load.epoch_reports(epoch), 256)
            .unwrap();
        let round = client.close_round("one-node", epoch).unwrap();
        rounds.push((
            round.accepted,
            round.refused,
            round.duplicates,
            round.late,
            round.weights_digest,
        ));
    }
    let debits = client.query_budget("one-node").unwrap().debits;
    server.shutdown();
    Trace { rounds, debits }
}

fn cluster_spec(durable: bool) -> ClusterSpec {
    ClusterSpec {
        num_users: USERS,
        num_objects: OBJECTS,
        deadline_us: 1_000_000,
        per_round_loss: per_round_loss(),
        budget: budget(),
        submission_capacity: 1 << 15,
        stream_tag: SEED,
        durable,
    }
}

#[test]
fn three_node_campaign_is_bit_identical_to_single_node_and_sim() {
    let reference = sim_trace();
    assert!(
        reference.rounds[ROUNDS as usize - 1].1 > 0,
        "the shape must exercise budget refusals in its final round: {reference:?}"
    );
    assert_eq!(single_node_trace(), reference);

    // Three durable nodes, each with its own WAL root.
    let roots: Vec<_> = (0..3).map(|i| temp_dir(&format!("node{i}"))).collect();
    let nodes: Vec<NodeServer> = (0..3)
        .map(|id| {
            NodeServer::start(NodeConfig {
                node_id: id as u32,
                num_nodes: 3,
                wal_root: Some(roots[id].clone()),
                ..NodeConfig::default()
            })
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();

    let mut cluster = ClusterCampaign::create(&addrs, "trio", cluster_spec(true)).unwrap();
    let load = load();
    let mut trace = Trace {
        rounds: Vec::new(),
        debits: Vec::new(),
    };
    for epoch in 0..ROUNDS {
        cluster.submit(&load.epoch_reports(epoch), 256).unwrap();
        let round = cluster.close_round(epoch).unwrap();
        trace.rounds.push((
            round.accepted as u64,
            round.refused_users as u64,
            round.duplicates_discarded,
            round.late_dropped,
            round.weights_digest,
        ));
    }
    trace.debits = cluster.accountant().debits_by_user().to_vec();
    assert_eq!(trace, reference, "3-node vs in-process sim");

    // A fresh coordinator resumes the completed campaign from the node
    // ledgers alone and rebuilds the identical global estimator.
    drop(cluster);
    let (resumed, at) = ClusterCampaign::resume(&addrs, "trio", cluster_spec(true)).unwrap();
    assert_eq!(at, ROUNDS);
    assert!(!resumed.needs_redrive());
    assert_eq!(resumed.weights_digest(), reference.rounds[3].4);
    assert_eq!(resumed.accountant().debits_by_user(), &reference.debits[..]);

    for node in nodes {
        node.shutdown();
    }
    for root in roots {
        let _ = std::fs::remove_dir_all(root);
    }
}

#[test]
fn a_killed_primary_fails_over_to_its_follower_bit_identically() {
    let reference = sim_trace();

    let wal_root = temp_dir("primary");
    let replica_root = temp_dir("replica");

    let follower = NodeServer::start(NodeConfig {
        replica_root: Some(replica_root.clone()),
        ..NodeConfig::default()
    })
    .unwrap();
    let primary = NodeServer::start(NodeConfig {
        wal_root: Some(wal_root.clone()),
        replicate_to: Some(follower.local_addr().to_string()),
        ..NodeConfig::default()
    })
    .unwrap();
    let addrs = vec![primary.local_addr().to_string()];

    // Two rounds, then the primary dies abruptly: no flush, no clean
    // shutdown. Every committed store mutation has already been acked
    // by the follower, so the replica directory is a valid prefix.
    let mut cluster = ClusterCampaign::create(&addrs, "fail", cluster_spec(true)).unwrap();
    let load = load();
    for epoch in 0..2 {
        cluster.submit(&load.epoch_reports(epoch), 256).unwrap();
        let round = cluster.close_round(epoch).unwrap();
        assert_eq!(round.weights_digest, reference.rounds[epoch as usize].4);
    }
    drop(cluster);
    drop(primary); // kill: threads stop, nothing is finalized
    let flushed = follower.shutdown();
    assert_eq!(flushed, 0, "the follower holds replicas, not campaigns");

    // Failover = the stock recovery path pointed at the replica
    // directory: a fresh node adopts the follower's bytes as its WAL.
    let successor = NodeServer::start(NodeConfig {
        wal_root: Some(replica_root.clone()),
        ..NodeConfig::default()
    })
    .unwrap();
    let addrs = vec![successor.local_addr().to_string()];
    let (mut cluster, at) = ClusterCampaign::resume(&addrs, "fail", cluster_spec(true)).unwrap();
    assert_eq!(at, 2, "the replica holds both committed rounds");
    assert!(!cluster.needs_redrive());
    assert_eq!(cluster.weights_digest(), reference.rounds[1].4);

    // The resumed campaign completes bit-identically to a run that
    // never failed over.
    for epoch in 2..ROUNDS {
        cluster.submit(&load.epoch_reports(epoch), 256).unwrap();
        let round = cluster.close_round(epoch).unwrap();
        let (accepted, refused, dup, late, digest) = reference.rounds[epoch as usize];
        assert_eq!(round.accepted as u64, accepted);
        assert_eq!(round.refused_users as u64, refused);
        assert_eq!(round.duplicates_discarded, dup);
        assert_eq!(round.late_dropped, late);
        assert_eq!(round.weights_digest, digest);
    }
    assert_eq!(cluster.accountant().debits_by_user(), &reference.debits[..]);

    successor.shutdown();
    let _ = std::fs::remove_dir_all(wal_root);
    let _ = std::fs::remove_dir_all(replica_root);
}

#[test]
fn losing_the_follower_latches_a_diagnostic_without_blocking_the_primary() {
    let wal_root = temp_dir("latch-wal");
    let replica_root = temp_dir("latch-replica");

    let follower = NodeServer::start(NodeConfig {
        replica_root: Some(replica_root.clone()),
        ..NodeConfig::default()
    })
    .unwrap();
    let primary = NodeServer::start(NodeConfig {
        wal_root: Some(wal_root.clone()),
        replicate_to: Some(follower.local_addr().to_string()),
        ..NodeConfig::default()
    })
    .unwrap();
    let addrs = vec![primary.local_addr().to_string()];

    let mut cluster = ClusterCampaign::create(&addrs, "latch", cluster_spec(true)).unwrap();
    let load = load();
    cluster.submit(&load.epoch_reports(0), 256).unwrap();
    cluster.close_round(0).unwrap();
    assert_eq!(primary.replication_failure("latch"), None);

    // The follower disappears; the primary keeps committing rounds and
    // reports the replication loss through its failure slot.
    follower.shutdown();
    cluster.submit(&load.epoch_reports(1), 256).unwrap();
    let round = cluster.close_round(1).unwrap();
    assert_eq!(round.epoch, 1, "the primary never blocks on its follower");
    let failure = primary
        .replication_failure("latch")
        .expect("the lost follower must latch a diagnostic");
    assert!(failure.contains("replicating op"), "{failure}");

    primary.shutdown();
    let _ = std::fs::remove_dir_all(wal_root);
    let _ = std::fs::remove_dir_all(replica_root);
}

/// The cluster front end under `--io-model threads` reproduces the
/// reactor's campaign bit for bit: the I/O model moves bytes, the
/// partition merge is oblivious to it.
#[test]
fn the_threads_io_model_reproduces_the_cluster_campaign_bit_identically() {
    use dptd::server::{IoConfig, IoModel};

    let reference = sim_trace();
    let run = |io: IoConfig| -> Trace {
        let nodes: Vec<NodeServer> = (0..2)
            .map(|id| {
                NodeServer::start(NodeConfig {
                    node_id: id,
                    num_nodes: 2,
                    io,
                    ..NodeConfig::default()
                })
                .unwrap()
            })
            .collect();
        let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
        let mut cluster = ClusterCampaign::create(&addrs, "duo", cluster_spec(false)).unwrap();
        let load = load();
        let mut trace = Trace {
            rounds: Vec::new(),
            debits: Vec::new(),
        };
        for epoch in 0..ROUNDS {
            cluster.submit(&load.epoch_reports(epoch), 256).unwrap();
            let round = cluster.close_round(epoch).unwrap();
            trace.rounds.push((
                round.accepted as u64,
                round.refused_users as u64,
                round.duplicates_discarded,
                round.late_dropped,
                round.weights_digest,
            ));
        }
        trace.debits = cluster.accountant().debits_by_user().to_vec();
        for node in nodes {
            node.shutdown();
        }
        trace
    };

    let reactor = run(IoConfig::default());
    let threads = run(IoConfig {
        io_model: IoModel::Threads,
        ..IoConfig::default()
    });
    assert_eq!(reactor, reference, "reactor vs in-process sim");
    assert_eq!(threads, reference, "threads vs in-process sim");
}
