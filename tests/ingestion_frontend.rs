//! Slow-client and handshake-failure hardening for the ingestion
//! front end.
//!
//! Two regressions pinned here, on **both** serving paths (the campaign
//! server and the cluster node — they share `dptd_server::Frontend`):
//!
//! 1. **Slow-loris reclamation.** A peer that sends half a frame and
//!    then goes silent used to pin a connection slot forever (the old
//!    blocking reader had no read deadline). Now the stall deadline
//!    reclaims the slot: with a connection budget of 1 and a stalled
//!    half-frame peer occupying it, a well-behaved client gets in
//!    within the deadline — under the reactor *and* under
//!    `--io-model threads` (where the socket read timeout enforces it).
//!
//! 2. **Handshake-failure slot accounting.** A connection refused at
//!    the `DPTDNET\x01` hello must decrement the live-connection
//!    budget on every close path. A loop of bad-hello connects must
//!    leave the budget intact for later good clients.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dptd::cluster::{NodeConfig, NodeServer};
use dptd::core::roles::PerturbedReport;
use dptd::protocol::message::StampedReport;
use dptd::server::registry::RegistryConfig;
use dptd::server::wire::{Request, HELLO};
use dptd::server::{CampaignSpec, Client, IoConfig, IoModel, Server, ServerConfig};

fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        num_users: 2,
        num_objects: 1,
        num_shards: 1,
        workers: 0,
        engine_queue: 64,
        deadline_us: 1_000,
        submission_capacity: 16,
        per_round_epsilon: 0.5,
        per_round_delta: 0.0,
        budget_epsilon: 5.0,
        budget_delta: 0.0,
        stream_tag: 0,
        durable: false,
    }
}

/// Short deadlines so the reclamation happens within test time. The
/// threads model enforces deadlines through socket read/write timeouts
/// set to `idle_timeout`, so that knob is the binding one there.
fn short_deadlines(io_model: IoModel) -> IoConfig {
    IoConfig {
        io_model,
        reactor_threads: 1,
        idle_timeout: Duration::from_millis(400),
        stall_timeout: Duration::from_millis(150),
    }
}

/// Hello plus half a valid frame, then silence — the socket stays open.
fn stall_half_frame(addr: std::net::SocketAddr) -> TcpStream {
    let frame = Request::SubmitReports {
        campaign: "c".to_string(),
        reports: vec![StampedReport {
            epoch: 0,
            sent_at_us: 1,
            report: PerturbedReport {
                user: 0,
                values: vec![(0, 1.0)],
            },
        }],
        ctx: None,
    }
    .encode();
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&HELLO).unwrap();
    raw.write_all(&frame[..frame.len() / 2]).unwrap();
    raw // held open by the caller: the peer is stalled, not gone
}

/// Keep trying to get a working session until the stalled peer's slot
/// is reclaimed; panic if the deadline sweep never frees it.
fn eventually<T>(what: &str, mut attempt: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(v) = attempt() {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: the stalled slot was never reclaimed"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn server_reclaims_stalled_slot(io_model: IoModel) {
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        max_connections: 1,
        io: short_deadlines(io_model),
        registry: RegistryConfig::default(),
    })
    .unwrap();
    let addr = server.local_addr();

    // The sole slot is taken by a peer stuck mid-frame.
    let _stalled = stall_half_frame(addr);

    // Within the stall deadline the reactor (or the read timeout) reaps
    // it, and a well-behaved client gets the slot and full service.
    let mut client = eventually(&format!("server/{io_model:?}"), || {
        let mut c = Client::connect(addr).ok()?;
        c.create_campaign("after", tiny_spec()).ok()?;
        Some(c)
    });
    client
        .submit(
            "after",
            vec![StampedReport {
                epoch: 0,
                sent_at_us: 1,
                report: PerturbedReport {
                    user: 0,
                    values: vec![(0, 2.0)],
                },
            }],
        )
        .unwrap();
    assert_eq!(client.close_round("after", 0).unwrap().accepted, 1);
    drop(client);
    server.shutdown();
}

#[test]
fn a_stalled_half_frame_peer_is_reclaimed_by_the_reactor() {
    server_reclaims_stalled_slot(IoModel::Reactor);
}

#[test]
fn a_stalled_half_frame_peer_is_reclaimed_under_io_model_threads() {
    server_reclaims_stalled_slot(IoModel::Threads);
}

#[test]
fn a_stalled_peer_on_a_cluster_node_is_reclaimed_too() {
    for io_model in [IoModel::Reactor, IoModel::Threads] {
        let node = NodeServer::start(NodeConfig {
            node_id: 0,
            num_nodes: 1,
            max_connections: 1,
            io: short_deadlines(io_model),
            ..NodeConfig::default()
        })
        .unwrap();
        let addr = node.local_addr();
        let _stalled = stall_half_frame(addr);
        let mut client = eventually(&format!("node/{io_model:?}"), || {
            let mut c = Client::connect(addr).ok()?;
            c.node_hello(0, 1).ok()?;
            Some(c)
        });
        assert_eq!(client.node_hello(0, 1).unwrap(), 0);
        drop(client);
        node.shutdown();
    }
}

#[test]
fn bad_hellos_do_not_leak_connection_slots() {
    for io_model in [IoModel::Reactor, IoModel::Threads] {
        let server = Server::start(ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            max_connections: 2,
            io: short_deadlines(io_model),
            registry: RegistryConfig::default(),
        })
        .unwrap();
        let addr = server.local_addr();

        // Far more handshake failures than the budget holds. Half read
        // the refusal to EOF (orderly close), half just vanish; both
        // paths must give the slot back.
        for i in 0..20 {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(b"GET / HT").unwrap(); // 8 bytes, wrong magic
            if i % 2 == 0 {
                use std::io::Read as _;
                let mut sink = Vec::new();
                let _ = raw.read_to_end(&mut sink);
                assert!(!sink.is_empty(), "a typed refusal precedes the close");
            }
            drop(raw);
        }

        // Both slots are (eventually — the abrupt halves may still be
        // draining) available to good clients, concurrently.
        let mut a = eventually(&format!("bad-hello/{io_model:?}/a"), || {
            let mut c = Client::connect(addr).ok()?;
            c.create_campaign(&format!("a-{io_model:?}"), tiny_spec())
                .ok()?;
            Some(c)
        });
        let mut b = eventually(&format!("bad-hello/{io_model:?}/b"), || {
            let mut c = Client::connect(addr).ok()?;
            c.query_budget(&format!("a-{io_model:?}")).ok()?;
            Some(c)
        });
        assert!(a.query_truths(&format!("a-{io_model:?}")).is_ok());
        assert!(b.query_budget(&format!("a-{io_model:?}")).is_ok());
        drop((a, b));
        server.shutdown();
    }
}
