//! End-to-end: multi-round campaigns through the umbrella crate's public
//! API — the engine-backed campaign against the sim reference, and
//! per-user privacy budget exhaustion under participation churn.

mod common;

use dptd::engine::EngineBackend;
use dptd::ldp::PrivacyLoss;
use dptd::protocol::campaign::{CampaignConfig, CampaignDriver, SimBackend};
use dptd::truth::Loss;

#[test]
fn campaign_through_engine_matches_sim_reference() {
    let users = 300;
    let objects = 5;
    let rounds = 6;
    let load = common::churny_load(users, objects, rounds, 0.2, 0.05, 0.05, 17);

    let per_round = PrivacyLoss::new(0.5, 0.02).unwrap();
    let config = CampaignConfig {
        num_objects: objects,
        deadline_us: load.config().epoch_len_us,
        per_round_loss: per_round,
        budget: per_round.compose_k(10), // roomy: no refusals here
    };

    let mut sim =
        CampaignDriver::new(SimBackend::new(users, Loss::Squared).unwrap(), config).unwrap();
    let mut eng = CampaignDriver::new(
        EngineBackend::new(common::engine_for(&load, 8, 256)).unwrap(),
        config,
    )
    .unwrap();

    let mut submitted = 0u64;
    for epoch in 0..rounds {
        let reports = load.epoch_reports(epoch);
        submitted += reports.len() as u64;
        let a = sim.run_round(epoch, reports.clone()).unwrap();
        let b = eng.run_round(epoch, reports).unwrap();
        // Bit-identical rounds: truths, weights, acceptance, drop
        // counters and privacy spend.
        assert_eq!(a, b, "round {epoch} diverged");
        // Campaign estimates stay close to the known ground truths.
        let mae = dptd::stats::summary::mae(&a.truths, &load.ground_truths(epoch)).unwrap();
        assert!(mae < 1.0, "round {epoch}: truth MAE {mae}");
    }
    assert_eq!(sim.accountant(), eng.accountant());

    // The engine backend's accumulated metrics cover the whole campaign.
    let backend = eng.into_backend();
    let m = backend.metrics();
    assert_eq!(backend.rounds(), rounds);
    assert_eq!(m.epochs_merged, rounds);
    assert_eq!(m.reports_submitted, submitted);
    assert_eq!(
        m.reports_submitted,
        m.reports_accepted + m.duplicates_discarded + m.late_dropped + m.out_of_order_dropped
    );
    assert!(m.throughput_rps() > 0.0);
}

#[test]
fn campaign_budget_exhaustion_refuses_punctual_users_first() {
    let users = 300;
    let objects = 4;
    let rounds = 4;
    let churn = 0.3;
    let load = common::churny_load(users, objects, rounds, churn, 0.0, 0.0, 23);

    let per_round = PrivacyLoss::new(1.0, 0.0).unwrap();
    let config = CampaignConfig {
        num_objects: objects,
        deadline_us: load.config().epoch_len_us,
        per_round_loss: per_round,
        budget: per_round.compose_k(2), // two affordable rounds per user
    };
    let mut driver = CampaignDriver::new(
        EngineBackend::new(common::engine_for(&load, 4, 256)).unwrap(),
        config,
    )
    .unwrap();

    let mut refused_seen = 0usize;
    for epoch in 0..rounds {
        let round = driver.run_round(epoch, load.epoch_reports(epoch)).unwrap();
        if epoch < 2 {
            assert_eq!(round.refused_users, 0, "round {epoch}");
        } else {
            // Users accepted in both opening rounds are now exhausted;
            // churned-out users still afford a submission, so the round
            // succeeds with a visibly smaller accepted set.
            assert!(round.refused_users > 0, "round {epoch}: {round:?}");
            assert!(
                round.accepted < users - round.refused_users + 1,
                "round {epoch}: {round:?}"
            );
        }
        refused_seen += round.refused_users;
        // The reported worst-case spend never exceeds the budget.
        assert!(round.max_spent.satisfies(&config.budget), "round {epoch}");
    }
    assert!(refused_seen > 0);

    // Ledger invariants: nobody exceeded two debits, somebody was
    // exhausted, and somebody (churned out early) still has budget.
    let ledger = driver.accountant();
    assert!((0..users).all(|u| ledger.rounds_debited(u) <= 2));
    assert!(ledger.exhausted_count() > 0);
    assert!(ledger.exhausted_count() < users);
}
