//! Shared builders for the umbrella integration tests: deterministic
//! load-generator streams and engines sized to match them. Used by
//! `engine_e2e.rs` (single-run streaming) and `campaign_e2e.rs`
//! (multi-round campaigns).

// Each test binary compiles this module independently and uses a
// different subset of the builders.
#![allow(dead_code)]

use dptd::engine::{ArrivalProcess, Engine, EngineConfig, LoadGen, LoadGenConfig};

/// A bursty, stressy stream: duplicates and stragglers on flash-crowd
/// arrivals.
pub fn bursty_load(
    users: usize,
    objects: usize,
    epochs: u64,
    dup: f64,
    straggler: f64,
    seed: u64,
) -> LoadGen {
    LoadGen::new(LoadGenConfig {
        num_users: users,
        num_objects: objects,
        epochs,
        duplicate_probability: dup,
        straggler_fraction: straggler,
        arrival: ArrivalProcess::Bursty {
            burst_size: 32,
            idle_gap_us: 20_000,
        },
        seed,
        ..LoadGenConfig::default()
    })
    .expect("valid load config")
}

/// A Poisson stream with per-round participation churn — the multi-round
/// campaign workload.
pub fn churny_load(
    users: usize,
    objects: usize,
    epochs: u64,
    churn: f64,
    dup: f64,
    straggler: f64,
    seed: u64,
) -> LoadGen {
    LoadGen::new(LoadGenConfig {
        num_users: users,
        num_objects: objects,
        epochs,
        churn,
        duplicate_probability: dup,
        straggler_fraction: straggler,
        seed,
        ..LoadGenConfig::default()
    })
    .expect("valid load config")
}

/// An engine sized to consume `load`'s stream: population, objects and
/// epoch deadline are derived so the two cannot drift apart.
pub fn engine_for(load: &LoadGen, shards: usize, queue_capacity: usize) -> Engine {
    Engine::new(EngineConfig {
        num_users: load.config().num_users,
        num_objects: load.config().num_objects,
        num_shards: shards,
        queue_capacity,
        epoch_deadline_us: load.config().epoch_len_us,
        ..EngineConfig::default()
    })
    .expect("valid engine config")
}
