//! Shape tests: compressed versions of every figure's sweep, asserting
//! the qualitative claims the paper makes about each plot. These are the
//! "does the reproduction reproduce" tests — they run the same code paths
//! as the `dptd-bench` binaries with fewer replicates.

use dptd::prelude::*;
use dptd::stats::summary::RunningStats;

/// ε → λ₂ map used by the trade-off figures (same as the bench harness).
fn lambda2_for(eps: f64, delta: f64, lambda1: f64) -> f64 {
    let sens = SensitivityBound::new(1.5, 0.9, lambda1).unwrap();
    let req = theory::privacy::PrivacyRequirement::new(eps, delta, sens).unwrap();
    let c = theory::privacy::min_noise_level(&req);
    theory::privacy::lambda2_for_noise_level(lambda1, c).unwrap()
}

fn mean_metrics<A: TruthDiscoverer + Copy>(
    algorithm: A,
    cfg: &SyntheticConfig,
    lambda2: f64,
    reps: u64,
) -> (f64, f64) {
    let pipeline = PrivatePipeline::new(algorithm, lambda2).unwrap();
    let mut mae = RunningStats::new();
    let mut noise = RunningStats::new();
    for rep in 0..reps {
        let mut rng = dptd::seeded_rng(7000 + rep);
        let ds = cfg.generate(&mut rng).unwrap();
        let run = pipeline.run(&ds.observations, &mut rng).unwrap();
        mae.push(run.utility_mae().unwrap());
        noise.push(run.noise.mean_abs_noise);
    }
    (mae.mean(), noise.mean())
}

#[test]
fn fig2_shape_mae_and_noise_fall_with_epsilon() {
    let cfg = SyntheticConfig::default();
    let (mae_tight, noise_tight) =
        mean_metrics(Crh::default(), &cfg, lambda2_for(0.25, 0.3, 2.0), 5);
    let (mae_loose, noise_loose) =
        mean_metrics(Crh::default(), &cfg, lambda2_for(3.0, 0.3, 2.0), 5);
    assert!(
        noise_tight > noise_loose,
        "noise: {noise_tight} vs {noise_loose}"
    );
    assert!(mae_tight > mae_loose, "mae: {mae_tight} vs {mae_loose}");
    // The headline: noise ≈ 1 causes utility loss well under 0.1·noise… the
    // paper states "less than 0.1 (only 1/10 of the noise)" at noise ≈ 1.
    assert!(
        mae_loose < noise_loose / 5.0,
        "weighted aggregation should absorb most noise: {mae_loose} vs {noise_loose}"
    );
}

#[test]
fn fig2_shape_smaller_delta_needs_more_noise() {
    let l_tight = lambda2_for(1.0, 0.2, 2.0);
    let l_loose = lambda2_for(1.0, 0.5, 2.0);
    // Smaller δ → smaller λ₂ → larger expected noise variance 1/λ₂.
    assert!(l_tight < l_loose);
}

#[test]
fn fig3_shape_better_quality_less_noise_and_mae() {
    let (mae_low, noise_low) = {
        let cfg = SyntheticConfig {
            lambda1: 0.5,
            ..Default::default()
        };
        mean_metrics(Crh::default(), &cfg, lambda2_for(1.0, 0.3, 0.5), 5)
    };
    let (mae_high, noise_high) = {
        let cfg = SyntheticConfig {
            lambda1: 8.0,
            ..Default::default()
        };
        mean_metrics(Crh::default(), &cfg, lambda2_for(1.0, 0.3, 8.0), 5)
    };
    assert!(noise_high < noise_low);
    assert!(mae_high < mae_low);
}

#[test]
fn fig4_shape_more_users_less_mae_same_noise() {
    let lambda2 = lambda2_for(1.0, 0.3, 2.0);
    let (mae_small, noise_small) = {
        let cfg = SyntheticConfig {
            num_users: 100,
            ..Default::default()
        };
        mean_metrics(Crh::default(), &cfg, lambda2, 6)
    };
    let (mae_big, noise_big) = {
        let cfg = SyntheticConfig {
            num_users: 600,
            ..Default::default()
        };
        mean_metrics(Crh::default(), &cfg, lambda2, 6)
    };
    assert!(mae_big < mae_small, "mae: {mae_big} vs {mae_small}");
    // Noise is independent of S (within MC tolerance).
    assert!(
        (noise_big - noise_small).abs() < 0.15 * noise_small,
        "noise drifted with S: {noise_small} vs {noise_big}"
    );
}

#[test]
fn fig5_shape_holds_for_gtm_too() {
    let cfg = SyntheticConfig::default();
    let (mae_tight, _) = mean_metrics(Gtm::default(), &cfg, lambda2_for(0.25, 0.3, 2.0), 5);
    let (mae_loose, noise_loose) =
        mean_metrics(Gtm::default(), &cfg, lambda2_for(3.0, 0.3, 2.0), 5);
    assert!(mae_tight > mae_loose);
    assert!(mae_loose < noise_loose / 5.0);
}

#[test]
fn fig6_shape_holds_on_floorplan() {
    let lambda2_tight = lambda2_for(0.25, 0.3, 1.0);
    let lambda2_loose = lambda2_for(3.0, 0.3, 1.0);
    let run = |lambda2: f64| {
        let pipeline = PrivatePipeline::new(Crh::default(), lambda2).unwrap();
        let mut mae = RunningStats::new();
        for rep in 0..3 {
            let mut rng = dptd::seeded_rng(7100 + rep);
            let ds = FloorplanConfig::default().generate(&mut rng).unwrap();
            let r = pipeline.run(&ds.observations, &mut rng).unwrap();
            mae.push(r.utility_mae().unwrap());
        }
        mae.mean()
    };
    assert!(run(lambda2_tight) > run(lambda2_loose));
}

#[test]
fn fig7_shape_estimated_weights_track_true_weights() {
    let mut rng = dptd::seeded_rng(7200);
    let ds = FloorplanConfig::default().generate(&mut rng).unwrap();
    let crh = Crh::default();
    let pipeline = PrivatePipeline::new(crh, 1.0).unwrap();
    let run = pipeline.run(&ds.observations, &mut rng).unwrap();
    let cmp = WeightComparison::compute(&ds, &run, &crh).unwrap();
    assert!(cmp.rank_correlation_original() > 0.9);
    assert!(cmp.rank_correlation_perturbed() > 0.9);
}

#[test]
fn fig8_shape_iterations_stable_across_noise() {
    // The efficiency claim reduces to: iteration count (the runtime
    // driver) does not grow with the noise level.
    let mut rng = dptd::seeded_rng(7300);
    let ds = SyntheticConfig {
        num_users: 100,
        num_objects: 50,
        ..Default::default()
    }
    .generate(&mut rng)
    .unwrap();
    let mut iters = Vec::new();
    for lambda2 in [100.0, 1.0, 0.25] {
        let pipeline = PrivatePipeline::new(Crh::default(), lambda2).unwrap();
        let run = pipeline.run(&ds.observations, &mut rng).unwrap();
        iters.push(run.perturbed.iterations);
    }
    let max = *iters.iter().max().unwrap();
    let min = *iters.iter().min().unwrap();
    assert!(
        max <= min + 3,
        "iteration count trends with noise: {iters:?}"
    );
}
