//! End-to-end harness for fleet-wide tracing and the flight recorder.
//!
//! The acceptance bar, part one: **tracing must be free of observable
//! effect** — a 3-node campaign run with tracing enabled (contexts on
//! every wire frame, spans recording on every layer) is bit-identical
//! in per-round weights digests and per-user debit ledgers to the same
//! campaign run untraced. Part two: the merged cluster timeline is
//! **causal** — the coordinator's barrier prepare/commit spans parent
//! the per-node drain/commit spans via wire-carried span contexts, and
//! `merge_trace_timeline` renders one clock-aligned chrome://tracing
//! document with a lane per process. Part three: a forced quarantine
//! (a partition poisoned mid-campaign) leaves a flight bundle on disk
//! whose final snapshot shows the refusal.

mod common;

use dptd::cluster::{
    merge_trace_events, merge_trace_timeline, ClusterCampaign, ClusterSpec, NodeConfig, NodeServer,
};
use dptd::ldp::PrivacyLoss;
use dptd::obs::trace::{self, codes};
use dptd::obs::{flight, TraceEvent};

const USERS: usize = 120;
const OBJECTS: usize = 5;
const ROUNDS: u64 = 3;
const SEED: u64 = 707;

fn spec() -> ClusterSpec {
    ClusterSpec {
        num_users: USERS,
        num_objects: OBJECTS,
        deadline_us: 1_000_000,
        per_round_loss: PrivacyLoss::new(0.5, 0.01).unwrap(),
        budget: PrivacyLoss::new(5.0, 0.2).unwrap(),
        submission_capacity: 1 << 15,
        stream_tag: SEED,
        durable: false,
    }
}

fn load() -> dptd::engine::LoadGen {
    common::churny_load(USERS, OBJECTS, ROUNDS, 0.25, 0.02, 0.02, SEED)
}

fn start_nodes(n: u32) -> (Vec<NodeServer>, Vec<String>) {
    let nodes: Vec<NodeServer> = (0..n)
        .map(|id| {
            NodeServer::start(NodeConfig {
                node_id: id,
                num_nodes: n,
                ..NodeConfig::default()
            })
            .unwrap()
        })
        .collect();
    let addrs = nodes.iter().map(|s| s.local_addr().to_string()).collect();
    (nodes, addrs)
}

/// Run the full campaign on a fresh 3-node cluster; return per-round
/// weights digests, the final debit ledger, and the live coordinator.
fn run_campaign(addrs: &[String], campaign: &str) -> (Vec<u64>, Vec<u32>, ClusterCampaign) {
    let mut cluster = ClusterCampaign::create(addrs, campaign, spec()).unwrap();
    let load = load();
    let mut digests = Vec::new();
    for epoch in 0..ROUNDS {
        cluster.submit(&load.epoch_reports(epoch), 64).unwrap();
        digests.push(cluster.close_round(epoch).unwrap().weights_digest);
    }
    let debits = cluster.accountant().debits_by_user().to_vec();
    (digests, debits, cluster)
}

/// The one trace-touching test: trace state is process-global, so the
/// determinism check, the causal-linkage check, and the merged-timeline
/// check all live here (parallel tests must not reset each other's
/// rings).
#[test]
fn traced_run_is_bit_identical_and_the_merged_timeline_is_causal() {
    // Untraced reference run.
    let (nodes, addrs) = start_nodes(3);
    let (ref_digests, ref_debits, _cluster) = run_campaign(&addrs, "plain");
    for node in nodes {
        node.shutdown();
    }

    // Traced run: fresh nodes, identical workload, rings armed.
    let (nodes, addrs) = start_nodes(3);
    trace::reset();
    trace::set_enabled(true);
    let (digests, debits, mut cluster) = run_campaign(&addrs, "traced");
    trace::set_enabled(false);

    // Part one: tracing is free of observable effect.
    assert_eq!(digests, ref_digests, "weights digests must not move");
    assert_eq!(debits, ref_debits, "debit ledgers must not move");

    // Part two: causal linkage. The nodes run in-process here, so every
    // lane shares this process's rings — the coordinator's collected
    // events hold both sides of each cross-process edge.
    let events = trace::collect();
    let begins = |code: u32| -> Vec<&TraceEvent> {
        events
            .iter()
            .filter(|e| e.code == code && e.phase == 'B')
            .collect()
    };
    let prepares = begins(codes::BARRIER_PREPARE);
    let commits = begins(codes::BARRIER_COMMIT);
    assert_eq!(prepares.len(), ROUNDS as usize, "one prepare per round");
    assert_eq!(commits.len(), ROUNDS as usize, "one commit per round");
    for prepare in &prepares {
        assert_ne!(prepare.trace_id, 0, "barrier spans carry the trace");
        let drains = begins(codes::NODE_DRAIN)
            .into_iter()
            .filter(|e| {
                e.trace_id == prepare.trace_id
                    && e.parent_span == prepare.span_id
                    && e.arg == prepare.arg
            })
            .count();
        assert!(
            drains > 0,
            "epoch {}: node drain spans must parent under the barrier prepare \
             span via the wire-carried context; events: {events:?}",
            prepare.arg
        );
    }
    for commit in &commits {
        assert!(
            begins(codes::NODE_COMMIT).iter().any(|e| {
                e.trace_id == commit.trace_id
                    && e.parent_span == commit.span_id
                    && e.arg == commit.arg
            }),
            "epoch {}: node commit spans must parent under the barrier commit span",
            commit.arg
        );
    }
    // Distinct rounds are distinct traces (deterministic per epoch).
    let trace_ids: std::collections::BTreeSet<u64> = prepares.iter().map(|e| e.trace_id).collect();
    assert_eq!(trace_ids.len(), ROUNDS as usize);

    // Part three: one merged, clock-aligned timeline with per-process
    // lanes. QueryTrace travels over real TCP to each node.
    let processes = cluster.collect_traces().unwrap();
    assert_eq!(processes.len(), 4, "coordinator + 3 nodes");
    assert_eq!(processes[0].label, "coordinator");
    let merged = merge_trace_events(&processes);
    assert!(
        merged
            .iter()
            .any(|&(pid, ref e)| pid == 1 && e.code == codes::BARRIER_PREPARE),
        "coordinator lane holds the barrier spans"
    );
    let json = merge_trace_timeline(&processes);
    assert!(json.trim_start().starts_with('['), "{json}");
    assert!(json.trim_end().ends_with(']'), "{json}");
    for lane in ["coordinator", "node0", "node1", "node2"] {
        assert!(
            json.contains(&format!("\"args\":{{\"name\":\"{lane}\"}}")),
            "missing process_name lane {lane}: {json}"
        );
    }
    assert!(json.contains("\"name\":\"barrier.prepare\""), "{json}");
    assert!(json.contains("\"name\":\"node.drain\""), "{json}");
    // Span contexts render as hex strings in args.
    assert!(json.contains("\"trace\":\""), "{json}");
    assert!(json.contains("\"parent\":\""), "{json}");

    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn a_forced_quarantine_freezes_a_flight_bundle_showing_the_refusal() {
    let dir = std::env::temp_dir().join(format!(
        "dptd-trace-e2e-flight-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    flight::global().set_dir(Some(dir.clone()));

    let (nodes, addrs) = start_nodes(2);
    let mut cluster = ClusterCampaign::create(&addrs, "camp", spec()).unwrap();
    let load = load();
    cluster.submit(&load.epoch_reports(0), 64).unwrap();
    cluster.close_round(0).unwrap();

    // Poison node 0's partition: the next frame touching it is refused
    // with CampaignQuarantined, and the node freezes the black box.
    assert!(nodes[0].poison_partition("camp"));
    let poisoned_round: Result<_, _> = cluster
        .submit(&load.epoch_reports(1), 64)
        .and_then(|_| cluster.close_round(1));
    assert!(
        poisoned_round.is_err(),
        "the poisoned partition must refuse"
    );

    // Other triggers (shutdowns from parallel tests) may also freeze
    // into the shared global recorder; the quarantine bundle must be
    // among them, and its final snapshot must show the refusal.
    let bundle_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with("-quarantine.json"))
        })
        .expect("a quarantine flight bundle must be written");
    let bundle = std::fs::read_to_string(&bundle_path).unwrap();
    assert!(bundle.contains("\"format\":\"dptd-flight-v1\""), "{bundle}");
    assert!(bundle.contains("\"trigger\":\"quarantine\""), "{bundle}");
    let last_snapshot = &bundle[bundle.rfind("\"reason\":").unwrap()..];
    assert!(
        last_snapshot.contains("\"campaign.camp.quarantined\":1"),
        "the freeze-time snapshot must show the quarantined partition: {bundle}"
    );

    flight::global().set_dir(None);
    for node in nodes {
        node.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
