//! Deterministic crash-injection harness for the epoch write-ahead log.
//!
//! Where `crates/engine/tests/wal_proptests.rs` samples kill points at
//! random, this harness is exhaustive at the interesting offsets: it
//! kills a budget-constrained multi-round campaign **after every record
//! boundary** and at torn offsets inside every frame (first byte, end of
//! the frame header, mid-payload), recovers, resumes, and requires the
//! final weights digest, budget ledger and log bytes to be bit-identical
//! to the uninterrupted engine run — and to the uninterrupted `sim`
//! reference — across 1/4/16 shards. It also exercises the on-disk
//! [`FileWal`] through a process-style stop/restart and a torn tail
//! appended behind the engine's back.

mod common;

use dptd::engine::wal::{FRAME_HEADER_LEN, WAL_MAGIC};
use dptd::engine::{EngineBackend, FailingWal, FileWal, LoadGen, MemWal, WalPolicy};
use dptd::ldp::PrivacyLoss;
use dptd::protocol::campaign::{CampaignConfig, CampaignDriver, SimBackend};
use dptd::stats::digest::fnv1a_f64s;
use dptd::truth::Loss;

const USERS: usize = 48;
const OBJECTS: usize = 4;
const ROUNDS: u64 = 4;

fn harness_load(seed: u64) -> LoadGen {
    common::churny_load(USERS, OBJECTS, ROUNDS, 0.25, 0.05, 0.05, seed)
}

fn harness_config(load: &LoadGen) -> CampaignConfig {
    let per_round = PrivacyLoss::new(0.5, 0.0).unwrap();
    CampaignConfig {
        num_objects: OBJECTS,
        deadline_us: load.config().epoch_len_us,
        per_round_loss: per_round,
        // Binding: three affordable rounds out of four, so the final
        // round runs with refusals — recovery must restore *that* too.
        budget: per_round.compose_k(3),
    }
}

fn harness_policy(load: &LoadGen) -> WalPolicy {
    WalPolicy::from_campaign(&harness_config(load))
}

struct Reference {
    bytes: Vec<u8>,
    ledger: Vec<u32>,
    round_weights: Vec<Vec<f64>>,
}

/// Uninterrupted WAL-enabled engine campaign: the ground truth every
/// crash-recovery cycle must reproduce exactly.
fn uninterrupted(load: &LoadGen, shards: usize) -> Reference {
    let mem = MemWal::new();
    let (backend, recovered) = EngineBackend::with_wal(
        common::engine_for(load, shards, 256),
        Box::new(mem.clone()),
        harness_policy(load),
    )
    .unwrap();
    let mut driver =
        CampaignDriver::resume(backend, harness_config(load), recovered.rounds_debited, 0).unwrap();
    let mut round_weights = Vec::new();
    for epoch in 0..ROUNDS {
        let round = driver.run_round(epoch, load.epoch_reports(epoch)).unwrap();
        round_weights.push(round.weights);
    }
    Reference {
        bytes: mem.snapshot(),
        ledger: driver.accountant().debits_by_user().to_vec(),
        round_weights,
    }
}

/// Byte offsets of every frame boundary in a log image (including the
/// header boundary and the total length).
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = vec![WAL_MAGIC.len()];
    let mut off = WAL_MAGIC.len();
    while off < bytes.len() {
        let payload_len =
            u32::from_le_bytes(bytes[off..off + 4].try_into().expect("length prefix")) as usize;
        off += FRAME_HEADER_LEN + payload_len;
        offsets.push(off);
    }
    assert_eq!(off, bytes.len(), "reference log has a torn tail");
    offsets
}

/// Crash a campaign after exactly `kill` logged bytes, recover from what
/// survived, resume, and return (final ledger, final weights, log bytes).
fn crash_recover_resume(load: &LoadGen, shards: usize, kill: u64) -> (Vec<u32>, Vec<f64>, Vec<u8>) {
    let config = harness_config(load);

    let crash_mem = MemWal::new();
    let failing = FailingWal::new(crash_mem.clone(), kill);
    if let Ok((backend, recovered)) = EngineBackend::with_wal(
        common::engine_for(load, shards, 256),
        Box::new(failing),
        harness_policy(load),
    ) {
        let next = recovered.next_epoch();
        let mut driver = CampaignDriver::resume(
            backend,
            config,
            recovered.rounds_debited,
            recovered.records_applied as u32,
        )
        .unwrap();
        for epoch in next..ROUNDS {
            if driver.run_round(epoch, load.epoch_reports(epoch)).is_err() {
                break; // the injected crash fired
            }
        }
    }

    let resume_mem = MemWal::from_bytes(crash_mem.snapshot());
    let (backend, recovered) = EngineBackend::with_wal(
        common::engine_for(load, shards, 256),
        Box::new(resume_mem.clone()),
        harness_policy(load),
    )
    .expect("torn tails recover, never error");
    let next = recovered.next_epoch();
    let mut driver = CampaignDriver::resume(
        backend,
        config,
        recovered.rounds_debited,
        recovered.records_applied as u32,
    )
    .unwrap();
    for epoch in next..ROUNDS {
        driver.run_round(epoch, load.epoch_reports(epoch)).unwrap();
    }
    let ledger = driver.accountant().debits_by_user().to_vec();
    let weights = driver.into_backend().current_weights().to_vec();
    (ledger, weights, resume_mem.snapshot())
}

#[test]
fn every_kill_point_recovers_bit_identically_across_shards() {
    let load = harness_load(31);
    let reference = uninterrupted(&load, 1);
    let final_weights = reference.round_weights.last().unwrap().clone();

    // The uninterrupted sim campaign lands on the same ledger and
    // weights — so recovery is pinned to the protocol reference, not
    // just to the engine's own uninterrupted run.
    let mut sim = CampaignDriver::new(
        SimBackend::new(USERS, Loss::Squared).unwrap(),
        harness_config(&load),
    )
    .unwrap();
    let mut sim_weights = Vec::new();
    for epoch in 0..ROUNDS {
        sim_weights = sim
            .run_round(epoch, load.epoch_reports(epoch))
            .unwrap()
            .weights;
    }
    assert_eq!(sim.accountant().debits_by_user(), &reference.ledger[..]);
    assert_eq!(sim_weights, final_weights);

    // Kill points: every record boundary (clean kill between records)
    // plus torn offsets inside every frame — first byte, end of the
    // frame header, mid-payload — and a torn file header.
    let boundaries = frame_boundaries(&reference.bytes);
    assert_eq!(boundaries.len() as u64, ROUNDS + 1, "one record per round");
    let mut kill_points: Vec<usize> = vec![0, 3];
    for window in boundaries.windows(2) {
        let (start, end) = (window[0], window[1]);
        kill_points.push(start);
        kill_points.extend([start + 1, start + FRAME_HEADER_LEN, (start + end) / 2]);
    }
    kill_points.push(reference.bytes.len());

    for &kill in &kill_points {
        for shards in [1usize, 4, 16] {
            let (ledger, weights, bytes) = crash_recover_resume(&load, shards, kill as u64);
            assert_eq!(
                ledger, reference.ledger,
                "kill at byte {kill}, {shards} shards: budget ledger diverged"
            );
            assert_eq!(
                fnv1a_f64s(&weights),
                fnv1a_f64s(&final_weights),
                "kill at byte {kill}, {shards} shards: weights digest diverged"
            );
            assert_eq!(weights, final_weights);
            assert_eq!(
                bytes, reference.bytes,
                "kill at byte {kill}, {shards} shards: resumed log diverged"
            );
        }
    }
}

#[test]
fn file_wal_survives_restart_and_a_torn_tail_on_disk() {
    let dir = std::env::temp_dir().join(format!(
        "dptd-wal-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let load = harness_load(47);
    let config = harness_config(&load);
    let reference = uninterrupted(&load, 4);

    // "Process one": runs the first two rounds, then stops (drop).
    {
        let sink = FileWal::open(&dir).unwrap();
        let (backend, recovered) = EngineBackend::with_wal(
            common::engine_for(&load, 4, 256),
            Box::new(sink),
            harness_policy(&load),
        )
        .unwrap();
        let mut driver =
            CampaignDriver::resume(backend, config, recovered.rounds_debited, 0).unwrap();
        for epoch in 0..2 {
            driver.run_round(epoch, load.epoch_reports(epoch)).unwrap();
        }
    }

    // Someone tears the tail behind our back (a crash mid-write).
    {
        use dptd::engine::WalSink;
        let mut sink = FileWal::open(&dir).unwrap();
        sink.append(&[0xba, 0xad, 0xf0]).unwrap();
    }

    // "Process two": recovery repairs the tail and resumes at round 2.
    let sink = FileWal::open(&dir).unwrap();
    let (backend, recovered) = EngineBackend::with_wal(
        common::engine_for(&load, 4, 256),
        Box::new(sink),
        harness_policy(&load),
    )
    .unwrap();
    assert_eq!(recovered.truncated_bytes, 3);
    assert_eq!(recovered.last_epoch, Some(1));
    assert_eq!(recovered.next_epoch(), 2);
    let mut driver = CampaignDriver::resume(
        backend,
        config,
        recovered.rounds_debited,
        recovered.records_applied as u32,
    )
    .unwrap();
    for epoch in 2..ROUNDS {
        driver.run_round(epoch, load.epoch_reports(epoch)).unwrap();
    }
    assert_eq!(driver.accountant().debits_by_user(), &reference.ledger[..]);
    assert_eq!(
        driver.into_backend().current_weights(),
        reference.round_weights.last().unwrap().as_slice()
    );

    // The on-disk log now equals the uninterrupted in-memory one.
    use dptd::engine::WalSink;
    let mut sink = FileWal::open(&dir).unwrap();
    assert_eq!(sink.load().unwrap(), reference.bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_round_indices_are_exact() {
    let load = harness_load(53);
    let config = harness_config(&load);
    let reference = uninterrupted(&load, 4);

    // Run three of four rounds, crash, recover.
    let mem = MemWal::new();
    {
        let (backend, recovered) = EngineBackend::with_wal(
            common::engine_for(&load, 4, 256),
            Box::new(mem.clone()),
            harness_policy(&load),
        )
        .unwrap();
        let mut driver =
            CampaignDriver::resume(backend, config, recovered.rounds_debited, 0).unwrap();
        for epoch in 0..3 {
            driver.run_round(epoch, load.epoch_reports(epoch)).unwrap();
        }
    }
    let (backend, recovered) = EngineBackend::with_wal(
        common::engine_for(&load, 4, 256),
        Box::new(mem.clone()),
        harness_policy(&load),
    )
    .unwrap();

    // No off-by-one anywhere: three records, last epoch 2, resume at 3.
    assert_eq!(recovered.records_applied, 3);
    assert_eq!(recovered.last_epoch, Some(2));
    assert_eq!(recovered.next_epoch(), 3);
    assert_eq!(backend.rounds(), 3);
    // The recovered estimator is the round-2 state, bit for bit.
    assert_eq!(
        recovered.crh.weights(),
        reference.round_weights[2].as_slice()
    );

    // `Engine::recover` on the raw sink agrees with the backend's view.
    let direct = common::engine_for(&load, 4, 256)
        .recover(&mut mem.clone())
        .unwrap();
    assert_eq!(direct.rounds_debited, recovered.rounds_debited);
    assert_eq!(direct.crh.weights(), recovered.crh.weights());

    // `Engine::run_with_state` resuming from the recovered estimator
    // reproduces round 3 exactly: apply the driver's refusal filter by
    // hand (budget = 3 rounds, so a user with 3 debits refuses) and the
    // raw engine epoch lands on the reference's final weights bits.
    let engine = common::engine_for(&load, 4, 256);
    let affordable: Vec<_> = load
        .epoch_reports(3)
        .into_iter()
        .filter(|r| direct.rounds_debited[r.report.user] < 3)
        .collect();
    let (_, crh) = engine.run_with_state(direct.crh, affordable).unwrap();
    assert_eq!(
        crh.weights(),
        reference.round_weights.last().unwrap().as_slice()
    );

    let mut driver = CampaignDriver::resume(
        backend,
        config,
        recovered.rounds_debited,
        recovered.records_applied as u32,
    )
    .unwrap();
    assert_eq!(driver.rounds_run(), 3);

    // Re-running an already-committed round is rejected (the WAL-enabled
    // backend enforces strictly increasing epochs) and nothing advances.
    let err = driver.run_round(2, load.epoch_reports(2)).unwrap_err();
    assert!(err.to_string().contains("epoch"), "{err}");
    assert_eq!(driver.rounds_run(), 3, "failed round must not count");

    // The correct next round completes the campaign identically.
    let round = driver.run_round(3, load.epoch_reports(3)).unwrap();
    assert_eq!(round.weights, *reference.round_weights.last().unwrap());
    assert_eq!(driver.rounds_run(), 4);
    assert_eq!(driver.accountant().debits_by_user(), &reference.ledger[..]);
}
