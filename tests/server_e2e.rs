//! Loopback end-to-end harness for the multi-campaign network service.
//!
//! The acceptance bar: **N campaigns served concurrently over real TCP
//! produce weights digests and budget ledgers bit-identical to N
//! sequential in-process `CampaignDriver` runs on the same seeds** —
//! including one campaign killed mid-round (its server dies with
//! reports submitted but the round never closed) and resumed from its
//! per-campaign write-ahead log by a fresh server on the same WAL root.
//!
//! The wire moves the bytes; the aggregation pipeline, budget
//! accounting and WAL semantics are exactly the in-process ones, so
//! nothing about serving may perturb a single bit.

mod common;

use std::collections::BTreeMap;

use dptd::engine::{Engine, EngineBackend, EngineConfig, LoadGen};
use dptd::ldp::PrivacyLoss;
use dptd::protocol::campaign::{CampaignConfig, CampaignDriver};
use dptd::server::client::SubmitOutcome;
use dptd::server::registry::RegistryConfig;
use dptd::server::{
    CampaignSpec, Client, ErrorCode, IoConfig, IoModel, Server, ServerConfig, ServerError,
};
use dptd::stats::digest::fnv1a_f64s;
use dptd::truth::Loss;

/// One campaign's shape: distinct seeds/sizes per campaign so the
/// concurrent server demonstrably keeps the streams apart.
#[derive(Clone, Copy)]
struct Shape {
    id: &'static str,
    seed: u64,
    users: usize,
    objects: usize,
    rounds: u64,
    shards: usize,
    churn: f64,
}

const SHAPES: [Shape; 3] = [
    Shape {
        id: "metro-air",
        seed: 101,
        users: 150,
        objects: 4,
        rounds: 4,
        shards: 4,
        churn: 0.2,
    },
    Shape {
        id: "floorplan-7",
        seed: 202,
        users: 90,
        objects: 3,
        rounds: 4,
        shards: 2,
        churn: 0.1,
    },
    // The durable one: budget affords only 3 of its 4 rounds, so the
    // resumed tail also exercises refusals.
    Shape {
        id: "traffic_speed.v2",
        seed: 303,
        users: 120,
        objects: 5,
        rounds: 4,
        shards: 4,
        churn: 0.25,
    },
];

fn load_for(shape: &Shape) -> LoadGen {
    common::churny_load(
        shape.users,
        shape.objects,
        shape.rounds,
        shape.churn,
        0.02,
        0.02,
        shape.seed,
    )
}

fn campaign_config(shape: &Shape) -> CampaignConfig {
    CampaignConfig {
        num_objects: shape.objects,
        deadline_us: 1_000_000,
        per_round_loss: PrivacyLoss::new(0.5, 0.01).unwrap(),
        // Three affordable rounds against four driven ones: the last
        // round sees budget refusals on both paths.
        budget: PrivacyLoss::new(1.5, 0.03).unwrap(),
    }
}

fn spec_for(shape: &Shape, durable: bool) -> CampaignSpec {
    let cfg = campaign_config(shape);
    CampaignSpec {
        num_users: shape.users as u64,
        num_objects: shape.objects as u64,
        num_shards: shape.shards as u64,
        workers: 0,
        engine_queue: 4_096,
        deadline_us: cfg.deadline_us,
        submission_capacity: 1 << 15,
        per_round_epsilon: cfg.per_round_loss.epsilon(),
        per_round_delta: cfg.per_round_loss.delta(),
        budget_epsilon: cfg.budget.epsilon(),
        budget_delta: cfg.budget.delta(),
        // Fingerprint the shape (the e2e drives one fixed stream per
        // campaign); a durable resume under a different one must refuse.
        stream_tag: shape.seed ^ (shape.users as u64) << 20,
        durable,
    }
}

/// What one campaign run (served or in-process) observably produced.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    /// Per round: (accepted, refused, duplicates, late, weights digest).
    rounds: Vec<(u64, u64, u64, u64, u64)>,
    /// Final per-user debit ledger.
    debits: Vec<u32>,
}

/// The sequential in-process reference: the same stream through a bare
/// `CampaignDriver<EngineBackend>`.
fn reference_trace(shape: &Shape) -> Trace {
    let load = load_for(shape);
    let engine = Engine::new(EngineConfig {
        num_users: shape.users,
        num_objects: shape.objects,
        num_shards: shape.shards,
        epoch_deadline_us: 1_000_000,
        loss: Loss::Squared,
        ..EngineConfig::default()
    })
    .unwrap();
    let backend = EngineBackend::new(engine).unwrap();
    let mut driver = CampaignDriver::new(backend, campaign_config(shape)).unwrap();
    let mut rounds = Vec::new();
    for epoch in 0..shape.rounds {
        let round = driver.run_round(epoch, load.epoch_reports(epoch)).unwrap();
        rounds.push((
            round.accepted as u64,
            round.refused_users as u64,
            round.duplicates_discarded,
            round.late_dropped,
            fnv1a_f64s(&round.weights),
        ));
    }
    Trace {
        rounds,
        debits: driver.accountant().debits_by_user().to_vec(),
    }
}

/// Drive rounds `from..to` of `shape` over the wire, appending to
/// `trace`.
fn drive_served(client: &mut Client, shape: &Shape, from: u64, to: u64, trace: &mut Trace) {
    let load = load_for(shape);
    for epoch in from..to {
        client
            .submit_chunked(shape.id, &load.epoch_reports(epoch), 256)
            .unwrap();
        let round = client.close_round(shape.id, epoch).unwrap();
        trace.rounds.push((
            round.accepted,
            round.refused,
            round.duplicates,
            round.late,
            round.weights_digest,
        ));
    }
    trace.debits = client.query_budget(shape.id).unwrap().debits;
}

/// The full concurrent + kill + WAL-resume scenario under one I/O
/// model. Both models must reproduce the in-process references bit for
/// bit — which transitively pins the reactor and threads front ends to
/// identical campaign results.
fn concurrent_kill_resume_under(io: IoConfig) {
    let wal_root = std::env::temp_dir().join(format!(
        "dptd-server-e2e-{:?}-{}-{:?}",
        io.io_model,
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&wal_root);

    let references: Vec<Trace> = SHAPES.iter().map(reference_trace).collect();
    let killed = &SHAPES[2];
    let kill_at_round = 2u64;

    // ---- Phase A: one server, three campaigns, fully concurrent. ----
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        max_connections: 16,
        io,
        registry: RegistryConfig {
            wal_root: Some(wal_root.clone()),
            ..RegistryConfig::default()
        },
    })
    .unwrap();
    let addr = server.local_addr();

    let mut served: BTreeMap<&'static str, Trace> = BTreeMap::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, shape) in SHAPES.iter().enumerate() {
            handles.push((
                shape.id,
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let durable = i == 2;
                    assert_eq!(
                        client
                            .create_campaign(shape.id, spec_for(shape, durable))
                            .unwrap(),
                        0
                    );
                    let mut trace = Trace {
                        rounds: Vec::new(),
                        debits: Vec::new(),
                    };
                    if durable {
                        // Run up to the kill point, then die mid-round: part
                        // of the next round's stream is submitted but the
                        // round never closes.
                        drive_served(&mut client, shape, 0, kill_at_round, &mut trace);
                        let load = load_for(shape);
                        let partial = load.epoch_reports(kill_at_round);
                        let half = &partial[..partial.len() / 2];
                        client.submit_chunked(shape.id, half, 64).unwrap();
                        // The thread (the "phone fleet") stops here; the
                        // server dies below with the round open.
                    } else {
                        drive_served(&mut client, shape, 0, shape.rounds, &mut trace);
                    }
                    trace
                }),
            ));
        }
        for (id, handle) in handles {
            served.insert(id, handle.join().expect("campaign thread"));
        }
    });
    // Kill the server with the durable campaign's round 2 open.
    server.shutdown();

    // The two volatile campaigns already match their references.
    for (shape, reference) in SHAPES.iter().zip(&references).take(2) {
        assert_eq!(
            &served[shape.id], reference,
            "served `{}` diverged from the in-process reference",
            shape.id
        );
    }

    // ---- Phase B: a fresh server on the same WAL root resumes the ----
    // killed campaign from its per-campaign log.
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        max_connections: 16,
        io,
        registry: RegistryConfig {
            wal_root: Some(wal_root.clone()),
            ..RegistryConfig::default()
        },
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let resumed = client
        .create_campaign(killed.id, spec_for(killed, true))
        .unwrap();
    assert_eq!(
        resumed, kill_at_round,
        "the WAL holds exactly the rounds closed before the kill"
    );
    // The mid-round submissions died with the first server: the resumed
    // round starts from an empty queue and the full stream is re-driven.
    let mut resumed_trace = served.remove(killed.id).unwrap();
    drive_served(
        &mut client,
        killed,
        kill_at_round,
        killed.rounds,
        &mut resumed_trace,
    );
    assert_eq!(
        &resumed_trace, &references[2],
        "kill + WAL resume must reproduce the uninterrupted run bit-for-bit"
    );
    // The constrained budget actually bit: the last round refused users
    // on both paths (the equality above is not vacuous).
    assert!(
        resumed_trace.rounds.last().unwrap().1 > 0,
        "expected budget refusals in the final round"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

#[test]
fn concurrent_campaigns_match_sequential_runs_including_a_mid_round_kill() {
    // The default front end: the event-driven reactor.
    concurrent_kill_resume_under(IoConfig::default());
}

#[test]
fn the_threads_io_model_reproduces_the_same_campaigns_bit_identically() {
    concurrent_kill_resume_under(IoConfig {
        io_model: IoModel::Threads,
        ..IoConfig::default()
    });
}

#[test]
fn submission_backpressure_is_an_explicit_busy_over_tcp() {
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .unwrap();
    let shape = &SHAPES[1];
    let mut spec = spec_for(shape, false);
    spec.submission_capacity = 32;
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.create_campaign(shape.id, spec).unwrap();

    let load = load_for(shape);
    let reports = load.epoch_reports(0);
    assert!(reports.len() > 32, "shape must overflow the tiny queue");
    // Fill to capacity in one batch…
    match client.submit(shape.id, reports[..32].to_vec()).unwrap() {
        SubmitOutcome::Queued(32) => {}
        other => panic!("expected 32 queued, got {other:?}"),
    }
    // …then every further report is pushed back, atomically.
    match client.submit(shape.id, reports[32..34].to_vec()).unwrap() {
        SubmitOutcome::Busy {
            queued: 32,
            capacity: 32,
        } => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    // And submit_chunked surfaces it as a typed client error.
    let err = client
        .submit_chunked(shape.id, &reports[32..], 16)
        .unwrap_err();
    assert!(matches!(err, ServerError::Busy), "{err:?}");
    server.shutdown();
}

#[test]
fn a_second_live_writer_on_a_served_wal_directory_is_refused() {
    let wal_root = std::env::temp_dir().join(format!(
        "dptd-server-e2e-lock-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&wal_root);
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        registry: RegistryConfig {
            wal_root: Some(wal_root.clone()),
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let shape = &SHAPES[0];
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .create_campaign(shape.id, spec_for(shape, true))
        .unwrap();
    // The served campaign holds the advisory lock on its directory: an
    // external writer (e.g. `dptd campaign --wal`) is refused at open.
    let err = dptd::engine::WalLock::acquire(&wal_root.join(shape.id)).unwrap_err();
    assert!(
        matches!(err, dptd::engine::WalError::Locked { .. }),
        "{err:?}"
    );
    // And so is a second server-side create of the same durable id on
    // this server (CampaignExists) — the id is live.
    let mut second = Client::connect(server.local_addr()).unwrap();
    let err = second
        .create_campaign(shape.id, spec_for(shape, true))
        .unwrap_err();
    match err {
        ServerError::Remote { code, .. } => assert_eq!(code, ErrorCode::CampaignExists),
        other => panic!("expected Remote(CampaignExists), got {other:?}"),
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}
