//! End-to-end: the sharded streaming engine through the umbrella crate's
//! public API, cross-checked against the single-shard streaming reference.

use dptd::engine::{ArrivalProcess, Engine, EngineConfig, LoadGen, LoadGenConfig};
use dptd::truth::streaming::StreamingCrh;
use dptd::truth::Loss;

#[test]
fn engine_round_trip_matches_streaming_reference() {
    let users = 300;
    let objects = 6;
    let epochs = 4;
    let load = LoadGen::new(LoadGenConfig {
        num_users: users,
        num_objects: objects,
        epochs,
        duplicate_probability: 0.05,
        straggler_fraction: 0.05,
        arrival: ArrivalProcess::Bursty {
            burst_size: 32,
            idle_gap_us: 20_000,
        },
        seed: 99,
        ..LoadGenConfig::default()
    })
    .unwrap();

    let engine = Engine::new(EngineConfig {
        num_users: users,
        num_objects: objects,
        num_shards: 8,
        queue_capacity: 128,
        epoch_deadline_us: load.config().epoch_len_us,
        ..EngineConfig::default()
    })
    .unwrap();
    let report = engine.run(load.stream()).unwrap();
    assert_eq!(report.epochs.len() as u64, epochs);

    let mut reference = StreamingCrh::new(users, Loss::Squared).unwrap();
    for (e, outcome) in report.epochs.iter().enumerate() {
        let truths = reference
            .ingest(&load.epoch_matrix(e as u64).unwrap())
            .unwrap();
        assert_eq!(outcome.truths, truths, "epoch {e} diverged");
    }
    assert_eq!(report.final_weights, reference.weights());

    // The engine's estimates track the known ground truths.
    for outcome in &report.epochs {
        let mae =
            dptd::stats::summary::mae(&outcome.truths, &load.ground_truths(outcome.epoch)).unwrap();
        assert!(mae < 1.0, "epoch {}: truth MAE {mae}", outcome.epoch);
    }
}

#[test]
fn engine_surfaces_ingest_metrics() {
    let load = LoadGen::new(LoadGenConfig {
        num_users: 200,
        num_objects: 4,
        epochs: 2,
        duplicate_probability: 0.2,
        straggler_fraction: 0.2,
        ..LoadGenConfig::default()
    })
    .unwrap();
    let engine = Engine::new(EngineConfig {
        num_users: 200,
        num_objects: 4,
        num_shards: 4,
        queue_capacity: 16, // tiny queues: force backpressure accounting
        epoch_deadline_us: load.config().epoch_len_us,
        ..EngineConfig::default()
    })
    .unwrap();
    let report = engine.run(load.stream()).unwrap();
    let m = &report.metrics;
    assert!(m.duplicates_discarded > 0, "{m:?}");
    assert!(m.late_dropped > 0, "{m:?}");
    assert_eq!(
        m.reports_submitted,
        m.reports_accepted + m.duplicates_discarded + m.late_dropped + m.out_of_order_dropped
    );
    assert!(m.ingest_latency.p99() >= m.ingest_latency.p50());
    assert!(m.throughput_rps() > 0.0);
    assert!(m.max_queue_depth <= 16);
}
