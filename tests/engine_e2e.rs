//! End-to-end: the sharded streaming engine through the umbrella crate's
//! public API, cross-checked against the single-shard streaming reference.

mod common;

use dptd::truth::streaming::StreamingCrh;
use dptd::truth::Loss;

#[test]
fn engine_round_trip_matches_streaming_reference() {
    let users = 300;
    let objects = 6;
    let epochs = 4;
    let load = common::bursty_load(users, objects, epochs, 0.05, 0.05, 99);
    let engine = common::engine_for(&load, 8, 128);

    let report = engine.run(load.stream()).unwrap();
    assert_eq!(report.epochs.len() as u64, epochs);

    let mut reference = StreamingCrh::new(users, Loss::Squared).unwrap();
    for (e, outcome) in report.epochs.iter().enumerate() {
        let truths = reference
            .ingest(&load.epoch_matrix(e as u64).unwrap())
            .unwrap();
        assert_eq!(outcome.truths, truths, "epoch {e} diverged");
    }
    assert_eq!(report.final_weights, reference.weights());

    // The engine's estimates track the known ground truths.
    for outcome in &report.epochs {
        let mae =
            dptd::stats::summary::mae(&outcome.truths, &load.ground_truths(outcome.epoch)).unwrap();
        assert!(mae < 1.0, "epoch {}: truth MAE {mae}", outcome.epoch);
    }
}

#[test]
fn engine_surfaces_ingest_metrics() {
    let load = common::churny_load(200, 4, 2, 0.0, 0.2, 0.2, 42);
    // Tiny queues: force backpressure accounting.
    let engine = common::engine_for(&load, 4, 16);
    let report = engine.run(load.stream()).unwrap();
    let m = &report.metrics;
    assert!(m.duplicates_discarded > 0, "{m:?}");
    assert!(m.late_dropped > 0, "{m:?}");
    assert_eq!(
        m.reports_submitted,
        m.reports_accepted + m.duplicates_discarded + m.late_dropped + m.out_of_order_dropped
    );
    assert!(m.ingest_latency.p99() >= m.ingest_latency.p50());
    assert!(m.throughput_rps() > 0.0);
    assert!(m.max_queue_depth <= 16);
}
