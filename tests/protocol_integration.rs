//! Integration tests for the protocol runtimes driving the full pipeline:
//! rounds over lossy networks, deadlines, and the privacy boundary.

use dptd::prelude::*;
use dptd::protocol::runtime::{run_threaded_round, ThreadedConfig};
use dptd::protocol::sim::{NetworkConfig, RoundConfig, SimHarness};

fn world(users: usize, objects: usize, seed: u64) -> SensingDataset {
    let mut rng = dptd::seeded_rng(seed);
    SyntheticConfig {
        num_users: users,
        num_objects: objects,
        ..Default::default()
    }
    .generate(&mut rng)
    .unwrap()
}

#[test]
fn simulated_round_matches_offline_pipeline_statistically() {
    // A protocol round with a perfect network is the same computation as
    // the offline pipeline: same aggregation on the same kind of
    // perturbed data. Compare MAE-to-truth across several seeds.
    let ds = world(60, 10, 2001);
    let harness = SimHarness::new(Crh::default(), 2.0, NetworkConfig::default()).unwrap();
    let pipeline = PrivatePipeline::new(Crh::default(), 2.0).unwrap();

    let mut protocol_mae = 0.0;
    let mut offline_mae = 0.0;
    let reps = 10;
    for seed in 0..reps {
        let mut rng1 = dptd::seeded_rng(2100 + seed);
        let out = harness
            .run_round(&ds.observations, &RoundConfig::default(), &mut rng1)
            .unwrap();
        protocol_mae += ds.mae_to_truth(&out.truths);

        let mut rng2 = dptd::seeded_rng(2200 + seed);
        let run = pipeline.run(&ds.observations, &mut rng2).unwrap();
        offline_mae += ds.mae_to_truth(&run.perturbed.truths);
    }
    protocol_mae /= reps as f64;
    offline_mae /= reps as f64;
    assert!(
        (protocol_mae - offline_mae).abs() < 0.1,
        "protocol {protocol_mae} vs offline {offline_mae}"
    );
}

#[test]
fn lossy_network_degrades_gracefully() {
    // With 20% message loss the answer quality must stay in the same
    // ballpark — truth discovery only needs coverage, not completeness.
    let ds = world(100, 8, 2002);
    let clean_harness = SimHarness::new(Crh::default(), 5.0, NetworkConfig::default()).unwrap();
    let lossy_harness = SimHarness::new(
        Crh::default(),
        5.0,
        NetworkConfig {
            drop_probability: 0.2,
            ..NetworkConfig::default()
        },
    )
    .unwrap();

    let mut rng = dptd::seeded_rng(2300);
    let clean = clean_harness
        .run_round(&ds.observations, &RoundConfig::default(), &mut rng)
        .unwrap();
    let lossy = lossy_harness
        .run_round(&ds.observations, &RoundConfig::default(), &mut rng)
        .unwrap();

    assert!(lossy.participants.len() < clean.participants.len());
    let clean_mae = ds.mae_to_truth(&clean.truths);
    let lossy_mae = ds.mae_to_truth(&lossy.truths);
    assert!(
        lossy_mae < clean_mae + 0.2,
        "loss degraded too much: {clean_mae} -> {lossy_mae}"
    );
}

#[test]
fn threaded_and_simulated_runtimes_agree() {
    let ds = world(40, 6, 2003);
    let mut rng = dptd::seeded_rng(2400);

    let sim = SimHarness::new(Crh::default(), 1e8, NetworkConfig::default())
        .unwrap()
        .run_round(&ds.observations, &RoundConfig::default(), &mut rng)
        .unwrap();
    let threaded = run_threaded_round(
        Crh::default(),
        1e8,
        &ds.observations,
        &ThreadedConfig::default(),
    )
    .unwrap();

    // At negligible noise both equal the clean aggregate.
    let gap = mae(&sim.truths, &threaded.truths).unwrap();
    assert!(gap < 0.01, "sim vs threaded gap {gap}");
}

#[test]
fn server_never_sees_raw_values_under_noise() {
    // With non-trivial noise, every submitted value differs from the raw
    // measurement (Gaussian noise is continuous — collision probability
    // is zero). This pins the privacy boundary end to end.
    let ds = world(20, 5, 2004);
    let mut rng = dptd::seeded_rng(2500);
    let harness = SimHarness::new(Crh::default(), 1.0, NetworkConfig::default()).unwrap();
    let out = harness
        .run_round(&ds.observations, &RoundConfig::default(), &mut rng)
        .unwrap();
    // Aggregates exist and are finite, but are not any user's raw value.
    for (n, &truth_estimate) in out.truths.iter().enumerate() {
        assert!(truth_estimate.is_finite());
        for (_, raw) in ds.observations.observations_of_object(n) {
            assert_ne!(truth_estimate, raw);
        }
    }
}

#[test]
fn round_with_everything_hostile_still_completes() {
    // Loss + stragglers + duplicates simultaneously.
    let ds = world(150, 12, 2005);
    let harness = SimHarness::new(
        Crh::default(),
        2.0,
        NetworkConfig {
            min_latency_us: 1_000,
            max_latency_us: 200_000,
            drop_probability: 0.15,
        },
    )
    .unwrap();
    let round = RoundConfig {
        deadline_us: 3_000_000,
        max_think_time_us: 500_000,
        straggler_fraction: 0.1,
        duplicate_probability: 0.1,
    };
    let mut rng = dptd::seeded_rng(2600);
    let out = harness
        .run_round(&ds.observations, &round, &mut rng)
        .unwrap();
    assert!(out.participants.len() >= 100);
    assert!(ds.mae_to_truth(&out.truths) < 0.5);
}
