//! Integration test for the categorical extension: randomized response on
//! the user side + weighted voting on the server side — the companion
//! pipeline to the paper's continuous mechanism (its reference [23]).

use dptd::ldp::randomized_response::KRandomizedResponse;
use dptd::truth::categorical::{majority_vote, weighted_vote, CategoricalMatrix};
use dptd::truth::Convergence;

/// Build a world of `users` × `objects` with `k` categories where the
/// first `liars` users always report the wrong answer.
fn private_votes(
    users: usize,
    objects: usize,
    k: usize,
    liars: usize,
    epsilon: f64,
    seed: u64,
) -> (CategoricalMatrix, Vec<usize>) {
    let mut rng = dptd::seeded_rng(seed);
    let truths: Vec<usize> = (0..objects).map(|n| n % k).collect();
    let rr = KRandomizedResponse::new(k, epsilon).unwrap();
    let mut m = CategoricalMatrix::with_dims(users, objects, k).unwrap();
    for s in 0..users {
        for (n, &t) in truths.iter().enumerate() {
            let honest_claim = if s < liars { (t + 1) % k } else { t };
            let reported = rr.perturb(honest_claim, &mut rng).unwrap();
            m.insert(s, n, reported).unwrap();
        }
    }
    (m, truths)
}

fn accuracy(estimates: &[usize], truths: &[usize]) -> f64 {
    let hits = estimates.iter().zip(truths).filter(|(a, b)| a == b).count();
    hits as f64 / truths.len() as f64
}

#[test]
fn private_majority_vote_recovers_truth_at_moderate_epsilon() {
    let (m, truths) = private_votes(60, 40, 3, 0, 1.5, 3001);
    let out = majority_vote(&m).unwrap();
    assert!(accuracy(&out.truths, &truths) > 0.95);
}

#[test]
fn weighted_vote_survives_liars_under_randomized_response() {
    let (m, truths) = private_votes(60, 40, 3, 12, 1.5, 3002);
    let weighted = weighted_vote(&m, &Convergence::default()).unwrap();
    let majority = majority_vote(&m).unwrap();
    let w_acc = accuracy(&weighted.truths, &truths);
    let m_acc = accuracy(&majority.truths, &truths);
    assert!(w_acc >= m_acc, "weighted {w_acc} vs majority {m_acc}");
    assert!(w_acc > 0.9, "weighted accuracy {w_acc}");
    // Liars end up with below-median weight.
    let mut sorted = weighted.weights.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let liars_below = (0..12).filter(|&s| weighted.weights[s] < median).count();
    assert!(
        liars_below >= 10,
        "only {liars_below}/12 liars below median weight"
    );
}

#[test]
fn stronger_privacy_costs_categorical_accuracy() {
    // ε = 0.2 (strong) vs ε = 3 (weak): accuracy must be ordered.
    let (m_strong, truths) = private_votes(40, 60, 4, 0, 0.2, 3003);
    let (m_weak, _) = private_votes(40, 60, 4, 0, 3.0, 3003);
    let strong = accuracy(&majority_vote(&m_strong).unwrap().truths, &truths);
    let weak = accuracy(&majority_vote(&m_weak).unwrap().truths, &truths);
    assert!(weak >= strong, "weak {weak} vs strong {strong}");
    assert!(weak > 0.95);
}

#[test]
fn frequency_debiasing_matches_vote_outcome() {
    // The RR frequency estimator and the majority vote must agree on the
    // plurality category for a single object with many reports.
    let mut rng = dptd::seeded_rng(3004);
    let rr = KRandomizedResponse::new(3, 1.0).unwrap();
    let reports: Vec<usize> = (0..3000)
        .map(|i| {
            let truth = if i % 10 < 7 { 2 } else { 0 };
            rr.perturb(truth, &mut rng).unwrap()
        })
        .collect();
    let freqs = rr.estimate_frequencies(&reports).unwrap();
    let plurality = freqs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(plurality, 2);
    assert!((freqs[2] - 0.7).abs() < 0.1, "freqs {freqs:?}");
}
