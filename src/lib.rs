//! # dptd — Differentially Private Truth Discovery for Crowd Sensing
//!
//! A Rust implementation of *"Towards Differentially Private Truth
//! Discovery for Crowd Sensing Systems"* (Li et al., ICDCS 2020): users
//! perturb their sensory reports with Gaussian noise whose variance they
//! sample privately from `Exp(λ₂)`, and an untrusted server aggregates the
//! perturbed reports with quality-aware truth discovery. Weighted
//! aggregation automatically discounts heavily-perturbed users, so
//! aggregate accuracy survives even large noise while every user holds a
//! local differential privacy guarantee.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`stats`] | distributions, special functions, summaries, GoF tests |
//! | [`ldp`] | LDP mechanisms, sensitivity, accounting, empirical audit |
//! | [`truth`] | CRH, GTM, baselines, categorical and streaming TD |
//! | [`sensing`] | synthetic + indoor-floor-plan simulators, adversaries |
//! | [`core`] | the paper's mechanism (Algorithm 2) + Theorems 4.3/4.8/4.9 |
//! | [`protocol`] | discrete-event and threaded crowd-sensing runtimes |
//! | [`engine`] | sharded streaming aggregation engine for million-user rounds |
//! | [`server`] | multi-campaign network service over a binary TCP wire protocol |
//! | [`cluster`] | multi-node campaigns: partition nodes, two-phase round barrier, WAL replication |
//!
//! # Quickstart
//!
//! ```
//! use dptd::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = dptd::seeded_rng(42);
//!
//! // A world: 150 users of mixed quality observing 30 objects.
//! let dataset = SyntheticConfig::default().generate(&mut rng)?;
//!
//! // The paper's pipeline: perturb per-user, aggregate with CRH.
//! let pipeline = PrivatePipeline::new(Crh::default(), 2.0)?;
//! let run = pipeline.run(&dataset.observations, &mut rng)?;
//!
//! println!(
//!     "noise added: {:.3}, utility loss (MAE): {:.4}",
//!     run.noise.mean_abs_noise,
//!     run.utility_mae()?,
//! );
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub use dptd_cluster as cluster;
pub use dptd_core as core;
pub use dptd_engine as engine;
pub use dptd_ldp as ldp;
pub use dptd_obs as obs;
pub use dptd_protocol as protocol;
pub use dptd_sensing as sensing;
pub use dptd_server as server;
pub use dptd_stats as stats;
pub use dptd_truth as truth;

pub use dptd_stats::seeded_rng;

/// The most common imports, for examples and downstream binaries.
pub mod prelude {
    pub use dptd_core::mechanism::{NoiseStats, PrivatePipeline, PrivateRun};
    pub use dptd_core::report::{RunMetrics, WeightComparison};
    pub use dptd_core::roles::{HyperParameter, PerturbedReport, Server, User};
    pub use dptd_core::theory;
    pub use dptd_core::CoreError;
    pub use dptd_engine::{
        ArrivalProcess, Engine, EngineConfig, EngineMetrics, LoadGen, LoadGenConfig,
    };
    pub use dptd_ldp::{
        FixedGaussianMechanism, LaplaceMechanism, Mechanism, PrivacyLoss,
        RandomizedVarianceGaussian, SensitivityBound,
    };
    pub use dptd_sensing::floorplan::FloorplanConfig;
    pub use dptd_sensing::synthetic::SyntheticConfig;
    pub use dptd_sensing::{Population, SensingDataset};
    pub use dptd_stats::dist::{Continuous, Exponential, Normal};
    pub use dptd_stats::summary::{mae, Summary};
    pub use dptd_truth::baselines::{MeanAggregator, MedianAggregator};
    pub use dptd_truth::crh::Crh;
    pub use dptd_truth::gtm::Gtm;
    pub use dptd_truth::{
        Convergence, Loss, ObservationMatrix, TruthDiscoverer, TruthDiscoveryResult,
    };
}
