//! User populations with heterogeneous quality.
//!
//! The paper's quality model (Assumption 4.1's counterpart for data): each
//! user's error variance `σ_s²` is drawn from `Exp(λ₁)`, so most users are
//! decent and a tail is unreliable — the premise that makes weighted
//! aggregation worthwhile.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dptd_stats::dist::{Continuous, Exponential};

use crate::SensingError;

/// A population of `S` crowd-sensing users, each with a private error
/// variance.
///
/// # Example
///
/// ```
/// use dptd_sensing::Population;
///
/// # fn main() -> Result<(), dptd_sensing::SensingError> {
/// let mut rng = dptd_stats::seeded_rng(1);
/// let pop = Population::sample(150, 2.0, &mut rng)?;
/// assert_eq!(pop.len(), 150);
/// // Mean error variance ≈ 1/λ₁ = 0.5.
/// let mean: f64 = pop.error_variances().iter().sum::<f64>() / 150.0;
/// assert!((mean - 0.5).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    error_variances: Vec<f64>,
    lambda1: f64,
}

impl Population {
    /// Sample a population of `num_users` with `σ_s² ~ Exp(λ₁)`.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidParameter`] if `num_users == 0` or
    /// `λ₁` is not finite and positive.
    pub fn sample<R: Rng + ?Sized>(
        num_users: usize,
        lambda1: f64,
        rng: &mut R,
    ) -> Result<Self, SensingError> {
        if num_users == 0 {
            return Err(SensingError::InvalidParameter {
                name: "num_users",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        let dist = Exponential::new(lambda1).map_err(SensingError::from)?;
        Ok(Self {
            error_variances: dist.sample_n(rng, num_users),
            lambda1,
        })
    }

    /// Build a population from explicit error variances (for tests and the
    /// weight-comparison experiment).
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidParameter`] if the list is empty or
    /// any variance is not finite and positive.
    pub fn from_variances(error_variances: Vec<f64>) -> Result<Self, SensingError> {
        if error_variances.is_empty() {
            return Err(SensingError::InvalidParameter {
                name: "error_variances",
                value: 0.0,
                constraint: "must not be empty",
            });
        }
        for &v in &error_variances {
            if !(v.is_finite() && v > 0.0) {
                return Err(SensingError::InvalidParameter {
                    name: "error_variance",
                    value: v,
                    constraint: "must be finite and > 0",
                });
            }
        }
        Ok(Self {
            error_variances,
            lambda1: f64::NAN,
        })
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.error_variances.len()
    }

    /// Whether the population is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.error_variances.is_empty()
    }

    /// Per-user error variances `σ_s²`.
    pub fn error_variances(&self) -> &[f64] {
        &self.error_variances
    }

    /// The quality rate `λ₁` used to sample this population (NaN when
    /// built from explicit variances).
    pub fn lambda1(&self) -> f64 {
        self.lambda1
    }

    /// Indices of users sorted from most to least reliable (ascending
    /// error variance).
    pub fn reliability_ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by(|&a, &b| {
            self.error_variances[a]
                .partial_cmp(&self.error_variances[b])
                .expect("variances are finite")
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_validates() {
        let mut rng = dptd_stats::seeded_rng(139);
        assert!(Population::sample(0, 1.0, &mut rng).is_err());
        assert!(Population::sample(10, 0.0, &mut rng).is_err());
    }

    #[test]
    fn from_variances_validates() {
        assert!(Population::from_variances(vec![]).is_err());
        assert!(Population::from_variances(vec![1.0, -1.0]).is_err());
        assert!(Population::from_variances(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn variances_positive() {
        let mut rng = dptd_stats::seeded_rng(149);
        let pop = Population::sample(500, 3.0, &mut rng).unwrap();
        assert!(pop.error_variances().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn larger_lambda1_means_better_quality() {
        let mut rng = dptd_stats::seeded_rng(151);
        let low_quality = Population::sample(2000, 0.5, &mut rng).unwrap();
        let high_quality = Population::sample(2000, 5.0, &mut rng).unwrap();
        let mean = |p: &Population| p.error_variances().iter().sum::<f64>() / p.len() as f64;
        assert!(mean(&high_quality) < mean(&low_quality));
    }

    #[test]
    fn ranking_sorts_by_variance() {
        let pop = Population::from_variances(vec![0.5, 0.1, 0.9]).unwrap();
        assert_eq!(pop.reliability_ranking(), vec![1, 0, 2]);
    }
}
