//! Indoor floor-plan construction simulator (§5.2 of the paper).
//!
//! The paper's real crowd-sensing system estimates hallway-segment lengths
//! from smartphone users: *"we obtain the distance each user has traveled
//! on each hallway segment by multiplying user step size by step count.
//! Due to different walking patterns and in-phone sensor quality, the
//! distances obtained by different users on the same segment can be quite
//! different."* The trace data (247 users, 129 segments, collected via an
//! Android app at SUNY Buffalo) was never released, so this module
//! simulates the generating process:
//!
//! * each hallway segment has a ground-truth length (uniform in a
//!   building-realistic range);
//! * each user has a **persistent step-length calibration ratio** (their
//!   app-configured step size over their true stride) — the dominant,
//!   user-specific multiplicative error source;
//! * each walk adds **step-count noise** (miscounted steps, relative) and
//!   additive **sensor jitter**;
//! * users only walk a (configurable) subset of segments — the matrix is
//!   sparse like real traces.
//!
//! A user's reported distance for segment `n` of length `L_n` is
//! `L_n · ratio_s · (1 + count_noise) + jitter`, so user quality is stable
//! across segments (good for weight estimation) while segment difficulty
//! scales with length — the same structure the paper exploits.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dptd_stats::dist::{Continuous, Normal, Uniform};
use dptd_truth::ObservationMatrix;

use crate::{Population, SensingDataset, SensingError};

/// Configuration for the floor-plan walk simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloorplanConfig {
    /// Number of hallway segments (paper: 129).
    pub num_segments: usize,
    /// Number of smartphone users (paper: 247).
    pub num_users: usize,
    /// Shortest segment length in metres.
    pub min_segment_len: f64,
    /// Longest segment length in metres.
    pub max_segment_len: f64,
    /// Standard deviation of the per-user step-length calibration ratio
    /// around 1.0 (persistent multiplicative bias).
    pub stride_bias_std: f64,
    /// Standard deviation of the per-walk relative step-count noise.
    pub count_noise_std: f64,
    /// Standard deviation of additive sensor jitter in metres.
    pub jitter_std: f64,
    /// Probability that a given user walked a given segment.
    pub coverage: f64,
}

impl Default for FloorplanConfig {
    /// The paper's scale: 129 segments, 247 users; hallway segments
    /// 5–40 m; ~60% coverage so the matrix is realistically sparse.
    fn default() -> Self {
        Self {
            num_segments: 129,
            num_users: 247,
            min_segment_len: 5.0,
            max_segment_len: 40.0,
            stride_bias_std: 0.05,
            count_noise_std: 0.03,
            jitter_std: 0.3,
            coverage: 0.6,
        }
    }
}

impl FloorplanConfig {
    /// Simulate the walks and assemble a [`SensingDataset`].
    ///
    /// The effective per-user error variance recorded in the population is
    /// the analytic per-walk variance at the mean segment length, so
    /// downstream weight comparisons (Fig. 7) have a ground-truth quality
    /// reference.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidParameter`] for empty dimensions,
    /// non-positive lengths, a coverage outside `(0, 1]`, or negative noise
    /// scales.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<SensingDataset, SensingError> {
        self.validate()?;
        let length_dist = Uniform::new(self.min_segment_len, self.max_segment_len)?;
        let ground_truths = length_dist.sample_n(rng, self.num_segments);

        // Persistent per-user calibration ratios around 1.
        let ratio_dist = Normal::new(1.0, self.stride_bias_std)?;
        let ratios: Vec<f64> = (0..self.num_users)
            .map(|_| ratio_dist.sample(rng).max(0.5))
            .collect();

        let count_noise = Normal::new(0.0, self.count_noise_std)?;
        let jitter = Normal::new(0.0, self.jitter_std)?;

        let mut observations = ObservationMatrix::with_dims(self.num_users, self.num_segments)?;
        for (s, &ratio) in ratios.iter().enumerate() {
            for (n, &len) in ground_truths.iter().enumerate() {
                if rng.gen::<f64>() > self.coverage {
                    continue;
                }
                let walked = len * ratio * (1.0 + count_noise.sample(rng)) + jitter.sample(rng);
                observations.insert(s, n, walked.max(0.0))?;
            }
        }

        // Guarantee coverage: every segment needs at least one walk, and
        // every user must have walked somewhere. Deterministically assign
        // stragglers (mirrors how a real campaign would re-task users).
        for (n, &len) in ground_truths.iter().enumerate() {
            if observations.observations_of_object(n).next().is_none() {
                let s = n % self.num_users;
                let walked = len * ratios[s] * (1.0 + count_noise.sample(rng)) + jitter.sample(rng);
                observations.insert(s, n, walked.max(0.0))?;
            }
        }
        for (s, &ratio) in ratios.iter().enumerate() {
            if observations.observations_of_user(s).next().is_none() {
                let n = s % self.num_segments;
                let len = ground_truths[n];
                let walked = len * ratio * (1.0 + count_noise.sample(rng)) + jitter.sample(rng);
                if observations.value(s, n).is_none() {
                    observations.insert(s, n, walked.max(0.0))?;
                }
            }
        }

        // Analytic per-user quality at the mean segment length: variance of
        // L·r·(1+c) + j around L for fixed ratio r is
        // L²·((r−1)² + r²·σ_c²) + σ_j² (treating the persistent bias as
        // squared error contribution).
        let mean_len = 0.5 * (self.min_segment_len + self.max_segment_len);
        let variances: Vec<f64> = ratios
            .iter()
            .map(|&r| {
                let bias = (r - 1.0) * mean_len;
                (bias * bias
                    + mean_len * mean_len * r * r * self.count_noise_std * self.count_noise_std
                    + self.jitter_std * self.jitter_std)
                    .max(1e-9)
            })
            .collect();

        Ok(SensingDataset {
            ground_truths,
            population: Population::from_variances(variances)?,
            observations,
        })
    }

    fn validate(&self) -> Result<(), SensingError> {
        if self.num_segments == 0 {
            return Err(SensingError::InvalidParameter {
                name: "num_segments",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if self.num_users == 0 {
            return Err(SensingError::InvalidParameter {
                name: "num_users",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if !(self.min_segment_len > 0.0 && self.max_segment_len > self.min_segment_len) {
            return Err(SensingError::InvalidParameter {
                name: "segment_len",
                value: self.max_segment_len,
                constraint: "need 0 < min_segment_len < max_segment_len",
            });
        }
        if !(self.coverage > 0.0 && self.coverage <= 1.0) {
            return Err(SensingError::InvalidParameter {
                name: "coverage",
                value: self.coverage,
                constraint: "must be in (0, 1]",
            });
        }
        for (name, v) in [
            ("stride_bias_std", self.stride_bias_std),
            ("count_noise_std", self.count_noise_std),
            ("jitter_std", self.jitter_std),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SensingError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be finite and > 0",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_truth::{crh::Crh, TruthDiscoverer};

    #[test]
    fn default_matches_paper_scale() {
        let cfg = FloorplanConfig::default();
        assert_eq!(cfg.num_segments, 129);
        assert_eq!(cfg.num_users, 247);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut rng = dptd_stats::seeded_rng(181);
        for cfg in [
            FloorplanConfig {
                num_segments: 0,
                ..FloorplanConfig::default()
            },
            FloorplanConfig {
                num_users: 0,
                ..FloorplanConfig::default()
            },
            FloorplanConfig {
                min_segment_len: -1.0,
                ..FloorplanConfig::default()
            },
            FloorplanConfig {
                coverage: 0.0,
                ..FloorplanConfig::default()
            },
            FloorplanConfig {
                jitter_std: 0.0,
                ..FloorplanConfig::default()
            },
        ] {
            assert!(cfg.generate(&mut rng).is_err(), "cfg {cfg:?} accepted");
        }
    }

    #[test]
    fn full_coverage_yields_dense_matrix() {
        let mut rng = dptd_stats::seeded_rng(191);
        let cfg = FloorplanConfig {
            num_segments: 10,
            num_users: 5,
            coverage: 1.0,
            ..FloorplanConfig::default()
        };
        let ds = cfg.generate(&mut rng).unwrap();
        assert_eq!(ds.observations.num_observations(), 50);
    }

    #[test]
    fn sparse_matrix_still_covered() {
        let mut rng = dptd_stats::seeded_rng(193);
        let cfg = FloorplanConfig {
            coverage: 0.05,
            ..FloorplanConfig::default()
        };
        let ds = cfg.generate(&mut rng).unwrap();
        assert!(ds.observations.validate_coverage().is_ok());
        // Every user walked at least one segment.
        for s in 0..ds.num_users() {
            assert!(ds.observations.observations_of_user(s).next().is_some());
        }
        // And the matrix is genuinely sparse.
        assert!(
            ds.observations.num_observations() < 247 * 129 / 4,
            "matrix unexpectedly dense: {}",
            ds.observations.num_observations()
        );
    }

    #[test]
    fn distances_are_near_segment_lengths() {
        let mut rng = dptd_stats::seeded_rng(197);
        let ds = FloorplanConfig::default().generate(&mut rng).unwrap();
        for n in 0..ds.num_objects() {
            let truth = ds.ground_truths[n];
            for (_, v) in ds.observations.observations_of_object(n) {
                assert!(
                    (v - truth).abs() < 0.5 * truth + 3.0,
                    "claim {v} wildly off truth {truth}"
                );
            }
        }
    }

    #[test]
    fn crh_reconstructs_floorplan() {
        let mut rng = dptd_stats::seeded_rng(199);
        let ds = FloorplanConfig::default().generate(&mut rng).unwrap();
        let out = Crh::default().discover(&ds.observations).unwrap();
        let mae = ds.mae_to_truth(&out.truths);
        // Segment lengths are 5-40 m; reconstruction should be sub-metre.
        assert!(mae < 1.0, "floorplan MAE {mae}");
    }

    #[test]
    fn calibration_bias_drives_user_quality() {
        let mut rng = dptd_stats::seeded_rng(211);
        let ds = FloorplanConfig {
            coverage: 1.0,
            num_users: 40,
            num_segments: 60,
            ..FloorplanConfig::default()
        }
        .generate(&mut rng)
        .unwrap();
        // The user the population ranks worst must have larger average
        // claim error than the best-ranked user.
        let ranking = ds.population.reliability_ranking();
        let err = |s: usize| {
            ds.observations
                .observations_of_user(s)
                .map(|(n, v)| (v - ds.ground_truths[n]).abs())
                .sum::<f64>()
                / ds.num_objects() as f64
        };
        assert!(err(ranking[0]) < err(ranking[ranking.len() - 1]));
    }
}
