//! Air-quality monitoring scenario (one of the paper's §1 motivating
//! applications, citing Meng et al., SenSys'15).
//!
//! A city grid of monitoring cells with **spatially correlated** ground
//! truth (pollution varies smoothly plus hot spots), sensed by mobile
//! users who each cover a contiguous neighbourhood of cells. This differs
//! from the synthetic world in two ways that stress truth discovery:
//!
//! * coverage is *local* — each user only observes cells near their
//!   route, so the observation matrix is block-sparse; and
//! * per-user error combines a calibration **bias** (cheap sensors read
//!   systematically high/low) with proportional noise.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dptd_stats::dist::{Continuous, Normal, Uniform};
use dptd_truth::ObservationMatrix;

use crate::{Population, SensingDataset, SensingError};

/// Configuration for the air-quality grid world.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AirQualityConfig {
    /// Grid side length; the world has `side × side` cells (objects).
    pub side: usize,
    /// Number of mobile users.
    pub num_users: usize,
    /// Baseline pollution level (e.g. PM2.5 µg/m³).
    pub base_level: f64,
    /// Amplitude of the smooth spatial field.
    pub field_amplitude: f64,
    /// Number of pollution hot spots.
    pub hotspots: usize,
    /// Peak added by each hot spot.
    pub hotspot_peak: f64,
    /// Radius (in cells) a user covers around their route anchor.
    pub coverage_radius: usize,
    /// Standard deviation of the per-user calibration bias.
    pub bias_std: f64,
    /// Relative (proportional) noise per reading.
    pub relative_noise: f64,
}

impl Default for AirQualityConfig {
    /// A 12×12 grid (144 cells), 200 users, PM2.5-like levels.
    fn default() -> Self {
        Self {
            side: 12,
            num_users: 200,
            base_level: 35.0,
            field_amplitude: 15.0,
            hotspots: 3,
            hotspot_peak: 40.0,
            coverage_radius: 3,
            bias_std: 2.0,
            relative_noise: 0.05,
        }
    }
}

impl AirQualityConfig {
    /// Generate the grid world and user readings.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidParameter`] for empty dimensions or
    /// non-positive noise scales.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<SensingDataset, SensingError> {
        self.validate()?;
        let n_cells = self.side * self.side;

        // Smooth field: sum of a few random low-frequency sinusoids.
        let phase = Uniform::new(0.0, std::f64::consts::TAU)?;
        let (px, py) = (phase.sample(rng), phase.sample(rng));
        let mut truths: Vec<f64> = (0..n_cells)
            .map(|i| {
                let (x, y) = (
                    (i % self.side) as f64 / self.side as f64,
                    (i / self.side) as f64 / self.side as f64,
                );
                self.base_level
                    + self.field_amplitude
                        * 0.5
                        * ((std::f64::consts::TAU * x + px).sin()
                            + (std::f64::consts::TAU * y + py).sin())
            })
            .collect();

        // Hot spots: Gaussian bumps at random cells.
        for _ in 0..self.hotspots {
            let cx = rng.gen_range(0..self.side) as f64;
            let cy = rng.gen_range(0..self.side) as f64;
            for (i, t) in truths.iter_mut().enumerate() {
                let dx = (i % self.side) as f64 - cx;
                let dy = (i / self.side) as f64 - cy;
                *t += self.hotspot_peak * (-(dx * dx + dy * dy) / 4.0).exp();
            }
        }

        // Users: anchor cell + coverage disc + calibration bias.
        let bias_dist = Normal::new(0.0, self.bias_std)?;
        let mut observations = ObservationMatrix::with_dims(self.num_users, n_cells)?;
        let mut biases = Vec::with_capacity(self.num_users);
        for s in 0..self.num_users {
            let bias = bias_dist.sample(rng);
            biases.push(bias);
            let ax = rng.gen_range(0..self.side) as i64;
            let ay = rng.gen_range(0..self.side) as i64;
            let r = self.coverage_radius as i64;
            for dy in -r..=r {
                for dx in -r..=r {
                    let (x, y) = (ax + dx, ay + dy);
                    if x < 0 || y < 0 || x >= self.side as i64 || y >= self.side as i64 {
                        continue;
                    }
                    if dx * dx + dy * dy > r * r {
                        continue;
                    }
                    let cell = (y as usize) * self.side + x as usize;
                    let truth = truths[cell];
                    let noise =
                        Normal::new(0.0, (self.relative_noise * truth).max(1e-6))?.sample(rng);
                    let reading = (truth + bias + noise).max(0.0);
                    observations.insert(s, cell, reading)?;
                }
            }
        }

        // Re-task to guarantee coverage of every cell.
        for (cell, &truth) in truths.iter().enumerate() {
            if observations.observations_of_object(cell).next().is_none() {
                let s = cell % self.num_users;
                let noise = Normal::new(0.0, (self.relative_noise * truth).max(1e-6))?.sample(rng);
                observations.insert(s, cell, (truth + biases[s] + noise).max(0.0))?;
            }
        }

        // Effective per-user variance: bias² + (rel·mean level)².
        let mean_level = truths.iter().sum::<f64>() / n_cells as f64;
        let variances: Vec<f64> = biases
            .iter()
            .map(|b| (b * b + (self.relative_noise * mean_level).powi(2)).max(1e-9))
            .collect();

        Ok(SensingDataset {
            ground_truths: truths,
            population: Population::from_variances(variances)?,
            observations,
        })
    }

    fn validate(&self) -> Result<(), SensingError> {
        if self.side == 0 {
            return Err(SensingError::InvalidParameter {
                name: "side",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if self.num_users == 0 {
            return Err(SensingError::InvalidParameter {
                name: "num_users",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        for (name, v) in [
            ("bias_std", self.bias_std),
            ("relative_noise", self.relative_noise),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SensingError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be finite and > 0",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_truth::{crh::Crh, TruthDiscoverer};

    #[test]
    fn validation() {
        let mut rng = dptd_stats::seeded_rng(941);
        for cfg in [
            AirQualityConfig {
                side: 0,
                ..Default::default()
            },
            AirQualityConfig {
                num_users: 0,
                ..Default::default()
            },
            AirQualityConfig {
                bias_std: 0.0,
                ..Default::default()
            },
            AirQualityConfig {
                relative_noise: -1.0,
                ..Default::default()
            },
        ] {
            assert!(cfg.generate(&mut rng).is_err());
        }
    }

    #[test]
    fn grid_world_is_covered_and_positive() {
        let mut rng = dptd_stats::seeded_rng(947);
        let ds = AirQualityConfig::default().generate(&mut rng).unwrap();
        assert_eq!(ds.num_objects(), 144);
        assert!(ds.observations.validate_coverage().is_ok());
        assert!(ds.ground_truths.iter().all(|&t| t > 0.0));
        for n in 0..ds.num_objects() {
            for (_, v) in ds.observations.observations_of_object(n) {
                assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn field_is_spatially_smooth_away_from_hotspots() {
        // Without hot spots, neighbouring cells differ much less than the
        // field amplitude.
        let mut rng = dptd_stats::seeded_rng(953);
        let cfg = AirQualityConfig {
            hotspots: 0,
            ..Default::default()
        };
        let ds = cfg.generate(&mut rng).unwrap();
        let side = cfg.side;
        for y in 0..side {
            for x in 0..side - 1 {
                let a = ds.ground_truths[y * side + x];
                let b = ds.ground_truths[y * side + x + 1];
                assert!(
                    (a - b).abs() < cfg.field_amplitude,
                    "rough field at ({x},{y}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn crh_reconstructs_pollution_map() {
        let mut rng = dptd_stats::seeded_rng(959);
        let ds = AirQualityConfig::default().generate(&mut rng).unwrap();
        let out = Crh::default().discover(&ds.observations).unwrap();
        let mae = ds.mae_to_truth(&out.truths);
        // Levels are ~20-90 µg/m³; the map should be within ~1.
        assert!(mae < 1.5, "air-quality MAE {mae}");
    }

    #[test]
    fn biased_sensors_rank_low() {
        let mut rng = dptd_stats::seeded_rng(967);
        let ds = AirQualityConfig {
            num_users: 50,
            coverage_radius: 6,
            ..Default::default()
        }
        .generate(&mut rng)
        .unwrap();
        let ranking = ds.population.reliability_ranking();
        let err = |s: usize| {
            let obs: Vec<(usize, f64)> = ds.observations.observations_of_user(s).collect();
            obs.iter()
                .map(|&(n, v)| (v - ds.ground_truths[n]).abs())
                .sum::<f64>()
                / obs.len().max(1) as f64
        };
        assert!(err(ranking[0]) < err(ranking[ranking.len() - 1]));
    }
}
