use std::fmt;

/// Error type for the sensing simulators.
#[derive(Debug, Clone, PartialEq)]
pub enum SensingError {
    /// A simulator parameter was outside its domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// The constraint that failed.
        constraint: &'static str,
    },
    /// An underlying statistics error.
    Stats(dptd_stats::StatsError),
    /// An underlying truth-discovery data error.
    Truth(dptd_truth::TruthError),
}

impl fmt::Display for SensingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensingError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            SensingError::Stats(e) => write!(f, "statistics error: {e}"),
            SensingError::Truth(e) => write!(f, "observation matrix error: {e}"),
        }
    }
}

impl std::error::Error for SensingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SensingError::Stats(e) => Some(e),
            SensingError::Truth(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dptd_stats::StatsError> for SensingError {
    fn from(e: dptd_stats::StatsError) -> Self {
        SensingError::Stats(e)
    }
}

impl From<dptd_truth::TruthError> for SensingError {
    fn from(e: dptd_truth::TruthError) -> Self {
        SensingError::Truth(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = SensingError::InvalidParameter {
            name: "lambda1",
            value: -1.0,
            constraint: "must be > 0",
        };
        assert!(e.to_string().contains("lambda1"));
        let e: SensingError = dptd_truth::TruthError::EmptyMatrix.into();
        assert!(e.to_string().contains("matrix"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SensingError>();
    }
}
