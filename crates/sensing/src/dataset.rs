//! The bundle a sensing simulation produces: ground truth, user quality,
//! and the observation matrix.

use serde::{Deserialize, Serialize};

use dptd_truth::ObservationMatrix;

use crate::Population;

/// A generated crowd-sensing dataset.
///
/// `ground_truths[n]` is the true value of object `n`; `observations` holds
/// what each user actually reported (before any privacy perturbation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingDataset {
    /// True value per object.
    pub ground_truths: Vec<f64>,
    /// The user population (quality model) that produced the data.
    pub population: Population,
    /// The user × object observation matrix.
    pub observations: ObservationMatrix,
}

impl SensingDataset {
    /// Number of users `S`.
    pub fn num_users(&self) -> usize {
        self.observations.num_users()
    }

    /// Number of objects `N`.
    pub fn num_objects(&self) -> usize {
        self.observations.num_objects()
    }

    /// Mean absolute error of an estimate vector against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if `estimates` has a different length than the ground truth
    /// (estimates always come from the same matrix).
    pub fn mae_to_truth(&self, estimates: &[f64]) -> f64 {
        dptd_stats::summary::mae(estimates, &self.ground_truths)
            .expect("estimates align with ground truth")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Population;

    #[test]
    fn accessors_and_mae() {
        let observations = ObservationMatrix::from_dense(&[&[1.0, 2.0][..], &[3.0, 4.0]]).unwrap();
        let ds = SensingDataset {
            ground_truths: vec![1.0, 2.0],
            population: Population::from_variances(vec![0.1, 0.2]).unwrap(),
            observations,
        };
        assert_eq!(ds.num_users(), 2);
        assert_eq!(ds.num_objects(), 2);
        assert_eq!(ds.mae_to_truth(&[1.0, 2.0]), 0.0);
        assert_eq!(ds.mae_to_truth(&[2.0, 2.0]), 0.5);
    }
}
