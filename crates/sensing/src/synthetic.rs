//! Synthetic dataset generator (§5.1 of the paper).
//!
//! *"We simulate 150 users with various qualities by setting different
//! σ_s², and generate their provided information for 30 objects based on
//! both the ground truth information and the sampled error."*

use rand::Rng;
use serde::{Deserialize, Serialize};

use dptd_stats::dist::{Continuous, Normal, Uniform};
use dptd_truth::ObservationMatrix;

use crate::{Population, SensingDataset, SensingError};

/// Configuration for the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of users `S` (paper: 150).
    pub num_users: usize,
    /// Number of objects `N` (paper: 30).
    pub num_objects: usize,
    /// Quality rate `λ₁` for `σ_s² ~ Exp(λ₁)`.
    pub lambda1: f64,
    /// Ground truths are drawn uniformly from this range.
    pub truth_low: f64,
    /// Upper edge of the ground-truth range.
    pub truth_high: f64,
}

impl Default for SyntheticConfig {
    /// The paper's §5.1 setting: 150 users, 30 objects, λ₁ = 2, truths in
    /// `[0, 10)`.
    fn default() -> Self {
        Self {
            num_users: 150,
            num_objects: 30,
            lambda1: 2.0,
            truth_low: 0.0,
            truth_high: 10.0,
        }
    }
}

impl SyntheticConfig {
    /// Generate a dataset: truths ~ U[truth_low, truth_high), population
    /// `σ_s² ~ Exp(λ₁)`, observations `x^s_n = truth_n + N(0, σ_s²)`.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidParameter`] for bad dimensions/rates
    /// and propagates distribution construction failures.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<SensingDataset, SensingError> {
        if self.num_objects == 0 {
            return Err(SensingError::InvalidParameter {
                name: "num_objects",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        let truth_dist = Uniform::new(self.truth_low, self.truth_high)?;
        let ground_truths = truth_dist.sample_n(rng, self.num_objects);
        let population = Population::sample(self.num_users, self.lambda1, rng)?;
        let observations = observe(&ground_truths, &population, rng)?;
        Ok(SensingDataset {
            ground_truths,
            population,
            observations,
        })
    }

    /// Generate a dataset with *fixed* ground truths (used by experiments
    /// that sweep a parameter while holding the world constant).
    ///
    /// # Errors
    ///
    /// As for [`generate`](Self::generate); additionally requires
    /// `ground_truths` to be non-empty.
    pub fn generate_with_truths<R: Rng + ?Sized>(
        &self,
        ground_truths: &[f64],
        rng: &mut R,
    ) -> Result<SensingDataset, SensingError> {
        if ground_truths.is_empty() {
            return Err(SensingError::InvalidParameter {
                name: "ground_truths",
                value: 0.0,
                constraint: "must not be empty",
            });
        }
        let population = Population::sample(self.num_users, self.lambda1, rng)?;
        let observations = observe(ground_truths, &population, rng)?;
        Ok(SensingDataset {
            ground_truths: ground_truths.to_vec(),
            population,
            observations,
        })
    }
}

/// Draw the full observation matrix for a population over known truths.
pub(crate) fn observe<R: Rng + ?Sized>(
    ground_truths: &[f64],
    population: &Population,
    rng: &mut R,
) -> Result<ObservationMatrix, SensingError> {
    let mut m = ObservationMatrix::with_dims(population.len(), ground_truths.len())?;
    for (s, &var) in population.error_variances().iter().enumerate() {
        let err = Normal::from_variance(0.0, var)?;
        for (n, &truth) in ground_truths.iter().enumerate() {
            m.insert(s, n, truth + err.sample(rng))?;
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_truth::{crh::Crh, TruthDiscoverer};

    #[test]
    fn default_matches_paper_dimensions() {
        let cfg = SyntheticConfig::default();
        assert_eq!(cfg.num_users, 150);
        assert_eq!(cfg.num_objects, 30);
    }

    #[test]
    fn generates_full_matrix() {
        let mut rng = dptd_stats::seeded_rng(157);
        let ds = SyntheticConfig::default().generate(&mut rng).unwrap();
        assert_eq!(ds.num_users(), 150);
        assert_eq!(ds.num_objects(), 30);
        assert_eq!(ds.observations.num_observations(), 150 * 30);
        assert!(ds.observations.validate_coverage().is_ok());
    }

    #[test]
    fn validates_dimensions() {
        let mut rng = dptd_stats::seeded_rng(163);
        let cfg = SyntheticConfig {
            num_objects: 0,
            ..SyntheticConfig::default()
        };
        assert!(cfg.generate(&mut rng).is_err());
        let cfg = SyntheticConfig {
            num_users: 0,
            ..SyntheticConfig::default()
        };
        assert!(cfg.generate(&mut rng).is_err());
    }

    #[test]
    fn crh_recovers_synthetic_truths() {
        // End-to-end sanity: on clean synthetic data CRH should land close
        // to ground truth (errors have zero mean).
        let mut rng = dptd_stats::seeded_rng(167);
        let ds = SyntheticConfig::default().generate(&mut rng).unwrap();
        let out = Crh::default().discover(&ds.observations).unwrap();
        let mae = ds.mae_to_truth(&out.truths);
        assert!(mae < 0.1, "clean-data MAE {mae}");
    }

    #[test]
    fn fixed_truths_are_respected() {
        let mut rng = dptd_stats::seeded_rng(173);
        let truths = vec![5.0, 7.0, 9.0];
        let ds = SyntheticConfig::default()
            .generate_with_truths(&truths, &mut rng)
            .unwrap();
        assert_eq!(ds.ground_truths, truths);
        assert_eq!(ds.num_objects(), 3);
    }

    #[test]
    fn reliable_users_observe_more_accurately() {
        let mut rng = dptd_stats::seeded_rng(179);
        let ds = SyntheticConfig {
            num_users: 60,
            num_objects: 200,
            ..SyntheticConfig::default()
        }
        .generate(&mut rng)
        .unwrap();
        let ranking = ds.population.reliability_ranking();
        let (best, worst) = (ranking[0], ranking[ranking.len() - 1]);
        let mean_err = |s: usize| {
            ds.observations
                .observations_of_user(s)
                .map(|(n, v)| (v - ds.ground_truths[n]).abs())
                .sum::<f64>()
                / ds.num_objects() as f64
        };
        assert!(mean_err(best) < mean_err(worst));
    }
}
