//! Crowd-sensing world simulators for the `dptd` workspace.
//!
//! The paper evaluates on two datasets, both rebuilt here:
//!
//! * **Synthetic** (§5.1): `S = 150` users of varying quality
//!   (`σ_s² ~ Exp(λ₁)`) observing `N = 30` objects; observations are
//!   `x^s_n = truth_n + N(0, σ_s²)` — [`synthetic`].
//! * **Indoor floor-plan** (§5.2): `247` smartphone users walking `129`
//!   hallway segments, where a user's reported distance is
//!   `step size × step count`. The original Android-app traces are not
//!   public, so [`floorplan`] simulates the walk: a persistent per-user
//!   step-length calibration bias, per-walk step-count noise, and sensor
//!   jitter. The per-user reliability structure (stable across segments,
//!   heterogeneous across users) matches the paper's description of why
//!   "the distances obtained by different users on the same segment can be
//!   quite different".
//!
//! [`adversary`] adds hostile user models (constant spammers, coordinated
//! colluders, drifting sensors) for the robustness ablations, and
//! [`dataset::SensingDataset`] is the common bundle (ground truth + user
//! qualities + observation matrix) the pipeline consumes.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adversary;
pub mod air_quality;
pub mod dataset;
pub mod floorplan;
pub mod population;
pub mod synthetic;

mod error;

pub use dataset::SensingDataset;
pub use error::SensingError;
pub use population::Population;
