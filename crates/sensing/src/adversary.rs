//! Adversarial user models.
//!
//! The paper's motivation (§1) notes users may "submit noisy or fake
//! information due to hardware quality, environment noise, or even the
//! intent to deceive and get rewards". These models corrupt a subset of
//! users in an existing observation matrix so the robustness ablations can
//! measure how weighted aggregation copes.

use rand::Rng;

use dptd_stats::dist::{Continuous, Normal};
use dptd_truth::ObservationMatrix;

use crate::SensingError;

/// An adversarial behaviour applied to selected users of a matrix.
pub trait Adversary {
    /// Overwrite the observed values of `users` in `matrix` (sparsity
    /// pattern is preserved — adversaries answer the tasks they were
    /// assigned, just dishonestly).
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidParameter`] if a user index is out
    /// of range.
    fn corrupt<R: Rng + ?Sized>(
        &self,
        matrix: &mut ObservationMatrix,
        users: &[usize],
        rng: &mut R,
    ) -> Result<(), SensingError>;
}

fn check_users(matrix: &ObservationMatrix, users: &[usize]) -> Result<(), SensingError> {
    for &u in users {
        if u >= matrix.num_users() {
            return Err(SensingError::InvalidParameter {
                name: "user",
                value: u as f64,
                constraint: "user index out of range for matrix",
            });
        }
    }
    Ok(())
}

/// Reports the same constant for every task (a lazy reward farmer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spammer {
    /// The constant value reported everywhere.
    pub value: f64,
}

impl Adversary for Spammer {
    fn corrupt<R: Rng + ?Sized>(
        &self,
        matrix: &mut ObservationMatrix,
        users: &[usize],
        _rng: &mut R,
    ) -> Result<(), SensingError> {
        check_users(matrix, users)?;
        for &s in users {
            let count = matrix.observations_of_user(s).count();
            matrix.replace_user_observations(s, &vec![self.value; count]);
        }
        Ok(())
    }
}

/// A coalition that shifts every claim by the same offset, trying to drag
/// aggregates towards a coordinated target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Colluder {
    /// The shared additive offset.
    pub offset: f64,
}

impl Adversary for Colluder {
    fn corrupt<R: Rng + ?Sized>(
        &self,
        matrix: &mut ObservationMatrix,
        users: &[usize],
        _rng: &mut R,
    ) -> Result<(), SensingError> {
        check_users(matrix, users)?;
        for &s in users {
            let shifted: Vec<f64> = matrix
                .observations_of_user(s)
                .map(|(_, v)| v + self.offset)
                .collect();
            matrix.replace_user_observations(s, &shifted);
        }
        Ok(())
    }
}

/// A failing sensor whose error grows over the task sequence (drift).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Drifter {
    /// Additional error per task index (metres per task, say).
    pub drift_per_task: f64,
    /// Gaussian jitter layered on top of the drift.
    pub jitter_std: f64,
}

impl Adversary for Drifter {
    fn corrupt<R: Rng + ?Sized>(
        &self,
        matrix: &mut ObservationMatrix,
        users: &[usize],
        rng: &mut R,
    ) -> Result<(), SensingError> {
        check_users(matrix, users)?;
        let jitter = if self.jitter_std > 0.0 {
            Some(Normal::new(0.0, self.jitter_std)?)
        } else {
            None
        };
        for &s in users {
            let drifted: Vec<f64> = matrix
                .observations_of_user(s)
                .enumerate()
                .map(|(k, (_, v))| {
                    let j = jitter.as_ref().map_or(0.0, |d| d.sample(rng));
                    v + self.drift_per_task * k as f64 + j
                })
                .collect();
            matrix.replace_user_observations(s, &drifted);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_truth::{crh::Crh, TruthDiscoverer};

    fn matrix() -> ObservationMatrix {
        ObservationMatrix::from_dense(&[&[1.0, 2.0, 3.0][..], &[1.1, 2.1, 3.1], &[0.9, 1.9, 2.9]])
            .unwrap()
    }

    #[test]
    fn spammer_flattens_claims() {
        let mut m = matrix();
        let mut rng = dptd_stats::seeded_rng(223);
        Spammer { value: 42.0 }
            .corrupt(&mut m, &[1], &mut rng)
            .unwrap();
        assert_eq!(m.value(1, 0), Some(42.0));
        assert_eq!(m.value(1, 2), Some(42.0));
        assert_eq!(m.value(0, 0), Some(1.0)); // others untouched
    }

    #[test]
    fn colluder_shifts_claims() {
        let mut m = matrix();
        let mut rng = dptd_stats::seeded_rng(227);
        Colluder { offset: 10.0 }
            .corrupt(&mut m, &[0, 2], &mut rng)
            .unwrap();
        assert_eq!(m.value(0, 0), Some(11.0));
        assert_eq!(m.value(2, 2), Some(12.9));
        assert_eq!(m.value(1, 0), Some(1.1));
    }

    #[test]
    fn drifter_grows_error() {
        let mut m = matrix();
        let mut rng = dptd_stats::seeded_rng(229);
        Drifter {
            drift_per_task: 1.0,
            jitter_std: 1e-9,
        }
        .corrupt(&mut m, &[0], &mut rng)
        .unwrap();
        assert!((m.value(0, 0).unwrap() - 1.0).abs() < 1e-6);
        assert!((m.value(0, 1).unwrap() - 3.0).abs() < 1e-6);
        assert!((m.value(0, 2).unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn adversaries_validate_user_indices() {
        let mut m = matrix();
        let mut rng = dptd_stats::seeded_rng(233);
        assert!(Spammer { value: 0.0 }
            .corrupt(&mut m, &[7], &mut rng)
            .is_err());
        assert!(Colluder { offset: 1.0 }
            .corrupt(&mut m, &[3], &mut rng)
            .is_err());
    }

    #[test]
    fn crh_downweights_spammer() {
        // 8 honest users + 2 spammers: the spammers' weights must fall
        // below every honest weight, and truths must track honest claims.
        let mut rng = dptd_stats::seeded_rng(239);
        let noise = Normal::new(0.0, 0.05).unwrap();
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|_| (0..6).map(|n| n as f64 + noise.sample(&mut rng)).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut m = ObservationMatrix::from_dense(&refs).unwrap();
        Spammer { value: 50.0 }
            .corrupt(&mut m, &[8, 9], &mut rng)
            .unwrap();

        let out = Crh::default().discover(&m).unwrap();
        let honest_min = out.weights[..8]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(out.weights[8] < honest_min);
        assert!(out.weights[9] < honest_min);
        // CRH cannot fully erase a far outlier (the −log weight floors at
        // −ln(share) ≈ 0.69 for a dominant loser) but must beat the
        // unweighted mean by a wide margin.
        for n in 0..6 {
            let crh_err = (out.truths[n] - n as f64).abs();
            let mean_est = m.observations_of_object(n).map(|(_, v)| v).sum::<f64>() / 10.0;
            let mean_err = (mean_est - n as f64).abs();
            assert!(crh_err < 1.5, "object {n} CRH error {crh_err}");
            assert!(
                crh_err < mean_err / 3.0,
                "object {n}: CRH {crh_err} vs mean {mean_err}"
            );
        }
    }
}
