//! Property-based tests for the sensing simulators.

use dptd_sensing::air_quality::AirQualityConfig;
use dptd_sensing::floorplan::FloorplanConfig;
use dptd_sensing::synthetic::SyntheticConfig;
use dptd_sensing::Population;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn synthetic_worlds_always_valid(
        users in 1usize..60,
        objects in 1usize..20,
        lambda1 in 0.1..20.0f64,
        seed in 0u64..1000,
    ) {
        let cfg = SyntheticConfig {
            num_users: users,
            num_objects: objects,
            lambda1,
            ..Default::default()
        };
        let mut rng = dptd_stats::seeded_rng(seed);
        let ds = cfg.generate(&mut rng).unwrap();
        prop_assert_eq!(ds.num_users(), users);
        prop_assert_eq!(ds.num_objects(), objects);
        prop_assert!(ds.observations.validate_coverage().is_ok());
        prop_assert!(ds.population.error_variances().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn floorplan_worlds_always_covered(
        segments in 1usize..40,
        users in 1usize..40,
        coverage in 0.05..1.0f64,
        seed in 0u64..500,
    ) {
        let cfg = FloorplanConfig {
            num_segments: segments,
            num_users: users,
            coverage,
            ..Default::default()
        };
        let mut rng = dptd_stats::seeded_rng(seed);
        let ds = cfg.generate(&mut rng).unwrap();
        prop_assert!(ds.observations.validate_coverage().is_ok());
        // Lengths respect the configured range.
        for &t in &ds.ground_truths {
            prop_assert!(t >= cfg.min_segment_len && t < cfg.max_segment_len);
        }
        // Claims are non-negative distances.
        for n in 0..ds.num_objects() {
            for (_, v) in ds.observations.observations_of_object(n) {
                prop_assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn air_quality_worlds_always_covered(
        side in 2usize..10,
        users in 1usize..50,
        seed in 0u64..500,
    ) {
        let cfg = AirQualityConfig {
            side,
            num_users: users,
            ..Default::default()
        };
        let mut rng = dptd_stats::seeded_rng(seed);
        let ds = cfg.generate(&mut rng).unwrap();
        prop_assert_eq!(ds.num_objects(), side * side);
        prop_assert!(ds.observations.validate_coverage().is_ok());
        prop_assert!(ds.ground_truths.iter().all(|&t| t.is_finite() && t >= 0.0));
    }

    #[test]
    fn population_ranking_is_a_permutation(
        variances in prop::collection::vec(0.01..100.0f64, 1..50),
    ) {
        let n = variances.len();
        let pop = Population::from_variances(variances).unwrap();
        let mut ranking = pop.reliability_ranking();
        prop_assert_eq!(ranking.len(), n);
        ranking.sort_unstable();
        prop_assert_eq!(ranking, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn reliability_ranking_orders_variances(
        variances in prop::collection::vec(0.01..100.0f64, 2..50),
    ) {
        let pop = Population::from_variances(variances.clone()).unwrap();
        let ranking = pop.reliability_ranking();
        for pair in ranking.windows(2) {
            prop_assert!(variances[pair[0]] <= variances[pair[1]]);
        }
    }
}
