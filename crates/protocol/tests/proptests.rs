//! Property-based tests for the protocol runtimes.

use dptd_protocol::sim::{NetworkConfig, RoundConfig, SimHarness};
use dptd_sensing::synthetic::SyntheticConfig;
use dptd_truth::crh::Crh;
use dptd_truth::ObservationMatrix;
use proptest::prelude::*;

fn world(users: usize, objects: usize, seed: u64) -> ObservationMatrix {
    let mut rng = dptd_stats::seeded_rng(seed);
    SyntheticConfig {
        num_users: users,
        num_objects: objects,
        ..Default::default()
    }
    .generate(&mut rng)
    .unwrap()
    .observations
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rounds_are_deterministic_under_seed(
        users in 2usize..25,
        objects in 1usize..6,
        drop in 0.0..0.4f64,
        seed in 0u64..500,
    ) {
        let data = world(users, objects, seed);
        let harness = SimHarness::new(
            Crh::default(),
            2.0,
            NetworkConfig { drop_probability: drop, ..NetworkConfig::default() },
        )
        .unwrap();
        let run = |s: u64| {
            harness.run_round(&data, &RoundConfig::default(), &mut dptd_stats::seeded_rng(s))
        };
        match (run(seed), run(seed)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {} // deterministic failure is fine too
            (a, b) => prop_assert!(false, "nondeterministic outcome: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn message_accounting_is_consistent(
        users in 2usize..30,
        objects in 1usize..5,
        drop in 0.0..0.5f64,
        dup in 0.0..0.5f64,
        seed in 0u64..500,
    ) {
        let data = world(users, objects, seed);
        let harness = SimHarness::new(
            Crh::default(),
            5.0,
            NetworkConfig { drop_probability: drop, ..NetworkConfig::default() },
        )
        .unwrap();
        let round = RoundConfig { duplicate_probability: dup, ..RoundConfig::default() };
        if let Ok(out) = harness.run_round(&data, &round, &mut dptd_stats::seeded_rng(seed)) {
            // Sent ≥ assigns (users) + one submit per surviving client.
            prop_assert!(out.messages_sent >= users);
            prop_assert!(out.messages_dropped <= out.messages_sent);
            // Every user is either a participant or missing, never both.
            let mut seen = vec![false; users];
            for &s in &out.participants {
                prop_assert!(!seen[s], "duplicate participant {s}");
                seen[s] = true;
            }
            for &s in &out.missing {
                prop_assert!(!seen[s], "user {s} both participant and missing");
                seen[s] = true;
            }
            prop_assert!(seen.iter().all(|&b| b), "some user unaccounted for");
            // Reports align with participants.
            prop_assert_eq!(out.reports.len(), out.participants.len());
            for (r, &s) in out.reports.iter().zip(&out.participants) {
                prop_assert_eq!(r.user, s);
            }
        }
    }

    #[test]
    fn truths_stay_in_perturbation_envelope(
        users in 3usize..15,
        objects in 1usize..4,
        seed in 0u64..300,
    ) {
        // With λ₂ huge (noise ~ 0) the round's truths must lie inside the
        // convex hull of the raw claims, slightly widened.
        let data = world(users, objects, seed);
        let harness = SimHarness::new(Crh::default(), 1e9, NetworkConfig::default()).unwrap();
        let out = harness
            .run_round(&data, &RoundConfig::default(), &mut dptd_stats::seeded_rng(seed))
            .unwrap();
        for n in 0..objects {
            let vals: Vec<f64> = data.observations_of_object(n).map(|(_, v)| v).collect();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(out.truths[n] >= lo - 1e-3 && out.truths[n] <= hi + 1e-3);
        }
    }
}
