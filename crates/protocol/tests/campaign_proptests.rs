//! Property tests for the campaign driver's privacy accounting:
//!
//! 1. No user's cumulative `(ε, δ)` ever exceeds the campaign budget —
//!    under arbitrary mixes of on-time, late and duplicate reports, and
//!    even when rounds fail outright because coverage collapses.
//! 2. The refusal boundary is exact: with a budget affording `k` rounds,
//!    a fully-participating population is accepted for exactly
//!    `min(rounds, k)` rounds and refused from round `k + 1` on.

use proptest::prelude::*;
use rand::Rng;

use dptd_core::roles::PerturbedReport;
use dptd_ldp::PrivacyLoss;
use dptd_protocol::campaign::{CampaignConfig, CampaignDriver, SimBackend};
use dptd_protocol::message::StampedReport;
use dptd_truth::Loss;

const DEADLINE_US: u64 = 1_000;

fn stamped(epoch: u64, user: usize, sent_at_us: u64, values: Vec<(usize, f64)>) -> StampedReport {
    StampedReport {
        epoch,
        sent_at_us,
        report: PerturbedReport { user, values },
    }
}

/// One epoch of synthetic traffic: every user submits once; non-anchor
/// users may be late or duplicated according to the seeded RNG.
fn epoch_reports(
    epoch: u64,
    users: usize,
    objects: usize,
    late_p: f64,
    dup_p: f64,
    seed: u64,
) -> Vec<StampedReport> {
    let mut rng = dptd_stats::seeded_rng(seed ^ epoch.wrapping_mul(0x9E37_79B9));
    let mut out = Vec::new();
    for user in 0..users {
        let values: Vec<(usize, f64)> = (0..objects)
            .map(|n| (n, n as f64 + rng.gen::<f64>()))
            .collect();
        // User ids below `objects` anchor the objects: always on time.
        let late = user >= objects && rng.gen::<f64>() < late_p;
        let sent = if late {
            DEADLINE_US + 1 + rng.gen_range(0..50u64)
        } else {
            rng.gen_range(0..=DEADLINE_US)
        };
        out.push(stamped(epoch, user, sent, values.clone()));
        if rng.gen::<f64>() < dup_p {
            out.push(stamped(epoch, user, sent.saturating_add(1), values));
        }
    }
    out.sort_by_key(|r| (r.sent_at_us, r.report.user));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cumulative_spend_never_exceeds_budget(
        users in 2usize..8,
        objects in 1usize..3,
        rounds in 1u64..12,
        affordable in 1u32..6,
        late_p in 0.0..0.6f64,
        dup_p in 0.0..0.6f64,
        seed in 0u64..1000,
    ) {
        let per_round = PrivacyLoss::new(0.4, 0.01).unwrap();
        let budget = per_round.compose_k(affordable);
        let config = CampaignConfig {
            num_objects: objects,
            deadline_us: DEADLINE_US,
            per_round_loss: per_round,
            budget,
        };
        let backend = SimBackend::new(users, Loss::Squared).unwrap();
        let mut driver = CampaignDriver::new(backend, config).unwrap();
        prop_assert_eq!(driver.accountant().affordable_rounds(), affordable);

        for epoch in 0..rounds {
            let reports = epoch_reports(epoch, users, objects, late_p, dup_p, seed);
            // A round may legitimately fail once refusals starve an
            // object; the budget invariant must hold either way.
            let result = driver.run_round(epoch, reports);
            let ledger = driver.accountant();
            for user in 0..users {
                let spent = ledger.spent(user);
                prop_assert!(
                    spent.satisfies(&budget),
                    "user {} overspent: ({}, {}) of ({}, {}) at epoch {}",
                    user, spent.epsilon(), spent.delta(),
                    budget.epsilon(), budget.delta(), epoch
                );
                prop_assert!(ledger.rounds_debited(user) <= affordable);
            }
            if let Ok(round) = &result {
                // Debits equal accepted reports, and the worst spend the
                // round reports matches the ledger.
                prop_assert_eq!(round.max_spent, ledger.max_spent());
            }
        }
    }

    #[test]
    fn refusal_boundary_is_exact(
        users in 2usize..8,
        rounds in 1u64..10,
        affordable in 1u32..5,
        seed in 0u64..1000,
    ) {
        let per_round = PrivacyLoss::new(0.3, 0.02).unwrap();
        let config = CampaignConfig {
            num_objects: 1,
            deadline_us: DEADLINE_US,
            per_round_loss: per_round,
            budget: per_round.compose_k(affordable),
        };
        let backend = SimBackend::new(users, Loss::Squared).unwrap();
        let mut driver = CampaignDriver::new(backend, config).unwrap();

        // Everyone on time, every round: all budgets drain in lockstep.
        for epoch in 0..rounds {
            let reports = epoch_reports(epoch, users, 1, 0.0, 0.0, seed);
            let result = driver.run_round(epoch, reports);
            if epoch < u64::from(affordable) {
                let round = result.unwrap();
                prop_assert_eq!(round.accepted, users);
                prop_assert_eq!(round.refused_users, 0);
            } else {
                // Budget exhausted: every user refuses, the round
                // starves, and nothing further is debited.
                prop_assert!(result.is_err(), "epoch {} should starve", epoch);
            }
        }
        let ledger = driver.accountant();
        let expected = u64::from(affordable).min(rounds) as u32;
        for user in 0..users {
            prop_assert_eq!(ledger.rounds_debited(user), expected);
        }
        prop_assert_eq!(
            ledger.exhausted_count(),
            if rounds >= u64::from(affordable) { users } else { 0 }
        );
    }
}
