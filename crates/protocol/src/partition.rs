//! User partitioning: the report-stream split that lets N nodes run one
//! campaign.
//!
//! A cluster shards a campaign's population across nodes, each node
//! filtering its own users' reports (deadline cut-off, first-wins
//! de-duplication) and the coordinator merging the per-node survivors
//! with one [`StreamingCrh::ingest_sharded`] call (the fixed-shape
//! parallel reduction tree — worker count cannot change a bit of the
//! result). Because every user
//! lives in **exactly one** partition, running the canonical pipeline
//! per-partition and merging is bit-identical to running it globally:
//! the deadline check is per-report, de-duplication is per-user, and the
//! sharded ingest is documented bit-identical to the single-matrix
//! ingest. This module pins that argument in code:
//!
//! * [`PartitionMap`] — a user → node assignment with dense per-node
//!   local ids, so each node can treat its slice as an ordinary
//!   contiguous population.
//! * [`EpochLane`] — one partition's round filter: the exact
//!   deadline-then-dedup order of [`SimBackend`], over local slots. The
//!   cluster node runs one of these per round; so does
//!   [`PartitionedBackend`].
//! * [`PartitionedBackend`] — a [`RoundBackend`] that routes the stream
//!   through per-node lanes and merges with `ingest_sharded`: the
//!   in-process reference for what an N-node cluster must produce,
//!   pinned bit-identical to [`SimBackend`] by the tests below.
//!
//! [`SimBackend`]: crate::campaign::SimBackend

use dptd_core::roles::PerturbedReport;
use dptd_truth::streaming::{ShardClaims, StreamingCrh};
use dptd_truth::Loss;

use crate::campaign::{RoundBackend, RoundInput, RoundOutput};
use crate::dedup::DedupFilter;
use crate::message::StampedReport;
use crate::ProtocolError;

/// A fixed assignment of a campaign population to `num_nodes`
/// partitions, with dense local ids per partition.
///
/// Global user `u` lives on node [`node_of(u)`](PartitionMap::node_of)
/// as local user [`local_of(u)`](PartitionMap::local_of); the inverse is
/// [`global_of`](PartitionMap::global_of). Local ids are assigned in
/// ascending global order, so each node's population is a sorted slice
/// of the global one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    assignment: Vec<usize>,
    local_of: Vec<usize>,
    locals: Vec<Vec<usize>>,
}

impl PartitionMap {
    /// Build a map from `assignment[user] = node`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] for an empty
    /// population, zero nodes, or an assignment naming a node outside
    /// `0..num_nodes`.
    pub fn new(assignment: Vec<usize>, num_nodes: usize) -> Result<Self, ProtocolError> {
        if num_nodes == 0 {
            return Err(ProtocolError::InvalidParameter {
                name: "num_nodes",
                value: 0.0,
                constraint: "a cluster needs at least one node",
            });
        }
        if assignment.is_empty() {
            return Err(ProtocolError::InvalidParameter {
                name: "assignment",
                value: 0.0,
                constraint: "a partition map needs at least one user",
            });
        }
        let mut locals = vec![Vec::new(); num_nodes];
        let mut local_of = Vec::with_capacity(assignment.len());
        for (user, &node) in assignment.iter().enumerate() {
            if node >= num_nodes {
                return Err(ProtocolError::InvalidParameter {
                    name: "assignment",
                    value: node as f64,
                    constraint: "every user must be assigned a node inside the cluster",
                });
            }
            local_of.push(locals[node].len());
            locals[node].push(user);
        }
        Ok(Self {
            assignment,
            local_of,
            locals,
        })
    }

    /// Population size.
    pub fn num_users(&self) -> usize {
        self.assignment.len()
    }

    /// Number of partitions (some may be empty).
    pub fn num_nodes(&self) -> usize {
        self.locals.len()
    }

    /// The node owning global user `user`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is outside the population.
    pub fn node_of(&self, user: usize) -> usize {
        self.assignment[user]
    }

    /// The dense local id of global user `user` on its owning node.
    ///
    /// # Panics
    ///
    /// Panics if `user` is outside the population.
    pub fn local_of(&self, user: usize) -> usize {
        self.local_of[user]
    }

    /// The global id of `node`'s local user `local`.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `local` is out of range.
    pub fn global_of(&self, node: usize, local: usize) -> usize {
        self.locals[node][local]
    }

    /// `node`'s users as ascending global ids.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn locals(&self, node: usize) -> &[usize] {
        &self.locals[node]
    }

    /// `node`'s population size.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn population(&self, node: usize) -> usize {
        self.locals[node].len()
    }
}

/// One partition's filter for one round: the canonical server pipeline
/// over dense local slots, in the exact order of
/// [`SimBackend`](crate::campaign::SimBackend) — the deadline cut-off
/// runs **before** de-duplication, so a late duplicate counts as late,
/// not as a duplicate.
///
/// Both [`PartitionedBackend`] and the cluster node's in-memory round
/// buffer drain through this type, which is what makes "filter remotely,
/// merge centrally" bit-identical to filtering globally.
#[derive(Debug, Clone)]
pub struct EpochLane {
    deadline_us: u64,
    dedup: DedupFilter,
    late_dropped: u64,
}

/// What one [`EpochLane`] kept after its round drained.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneResult {
    /// Surviving `(local slot, report)` pairs, ascending by slot.
    pub claims: Vec<(usize, PerturbedReport)>,
    /// Duplicate submissions discarded (first-wins).
    pub duplicates_discarded: u64,
    /// Reports dropped for missing the deadline.
    pub late_dropped: u64,
}

impl EpochLane {
    /// A lane over `local_users` dense slots with the round's deadline.
    pub fn new(local_users: usize, deadline_us: u64) -> Self {
        Self {
            deadline_us,
            dedup: DedupFilter::new(local_users),
            late_dropped: 0,
        }
    }

    /// Offer one report under its dense local `slot`, in stream order.
    ///
    /// The caller has already validated epoch and ownership; the lane
    /// only applies the deadline and first-wins de-duplication.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the lane's population.
    pub fn offer(&mut self, slot: usize, stamped: StampedReport) {
        if stamped.sent_at_us > self.deadline_us {
            self.late_dropped += 1;
            return;
        }
        self.dedup.accept(slot, stamped.report);
    }

    /// Number of slots currently holding an accepted report.
    pub fn accepted(&self) -> usize {
        self.dedup.len()
    }

    /// The lane's survivors and counts **so far**, without consuming it
    /// — a cluster node answers each `CloseRoundPrepare` with this, so
    /// a re-driven barrier (after more submissions, or a coordinator
    /// restart) sees the cumulative stream's result.
    pub fn snapshot(&self) -> LaneResult {
        self.clone().finish()
    }

    /// Drain the lane into its slot-ordered survivors and drop counts.
    pub fn finish(self) -> LaneResult {
        LaneResult {
            duplicates_discarded: self.dedup.duplicates_discarded() as u64,
            claims: self.dedup.into_slot_ordered(),
            late_dropped: self.late_dropped,
        }
    }
}

/// A [`RoundBackend`] that executes each round the way an N-node
/// cluster does: validate the stream in order, route each report to its
/// owner's [`EpochLane`], then merge the per-node survivors with one
/// [`StreamingCrh::ingest_sharded`] call over **global** ids.
///
/// For any [`PartitionMap`] over the same population this produces
/// truths, weights and drop counts bit-identical to
/// [`SimBackend`](crate::campaign::SimBackend) on the same stream —
/// pinned by this module's proptest — so a cluster that drains its
/// node lanes faithfully inherits the single-node semantics.
#[derive(Debug, Clone)]
pub struct PartitionedBackend {
    partition: PartitionMap,
    streaming: StreamingCrh,
}

impl PartitionedBackend {
    /// A backend over `partition`'s population with fresh weights.
    ///
    /// # Errors
    ///
    /// Propagates estimator construction failures.
    pub fn new(partition: PartitionMap, loss: Loss) -> Result<Self, ProtocolError> {
        let streaming = StreamingCrh::new(partition.num_users(), loss)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;
        Ok(Self {
            partition,
            streaming,
        })
    }

    /// The partition this backend routes by.
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// The backing streaming estimator.
    pub fn streaming(&self) -> &StreamingCrh {
        &self.streaming
    }
}

impl RoundBackend for PartitionedBackend {
    fn name(&self) -> &'static str {
        "partitioned"
    }

    fn num_users(&self) -> usize {
        self.partition.num_users()
    }

    fn run_round(&mut self, input: RoundInput) -> Result<RoundOutput, ProtocolError> {
        let num_users = self.partition.num_users();
        let mut lanes: Vec<EpochLane> = (0..self.partition.num_nodes())
            .map(|node| EpochLane::new(self.partition.population(node), input.deadline_us))
            .collect();
        // Validation mirrors `SimBackend` exactly — same checks, same
        // order, same errors — so a malformed stream fails identically
        // on either backend.
        for stamped in input.reports {
            if stamped.epoch != input.epoch {
                return Err(ProtocolError::InvalidParameter {
                    name: "report.epoch",
                    value: stamped.epoch as f64,
                    constraint: "every report in a campaign round must carry the round's epoch",
                });
            }
            let user = stamped.report.user;
            if user >= num_users {
                return Err(ProtocolError::InvalidParameter {
                    name: "report.user",
                    value: user as f64,
                    constraint: "must be inside the campaign population",
                });
            }
            lanes[self.partition.node_of(user)].offer(self.partition.local_of(user), stamped);
        }

        let mut duplicates_discarded = 0u64;
        let mut late_dropped = 0u64;
        let mut accepted_users = Vec::new();
        let mut shards = Vec::with_capacity(lanes.len());
        for (node, lane) in lanes.into_iter().enumerate() {
            let result = lane.finish();
            duplicates_discarded += result.duplicates_discarded;
            late_dropped += result.late_dropped;
            let mut shard = ShardClaims::new();
            for (slot, report) in result.claims {
                let user = self.partition.global_of(node, slot);
                accepted_users.push(user);
                shard.push(user, report.values);
            }
            shards.push(shard);
        }
        accepted_users.sort_unstable();

        let truths = self
            .streaming
            .ingest_sharded(input.num_objects, shards)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;

        Ok(RoundOutput {
            truths,
            weights: self.streaming.weights().to_vec(),
            accepted_users,
            duplicates_discarded,
            late_dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, CampaignDriver, SimBackend};
    use dptd_ldp::PrivacyLoss;
    use proptest::prelude::*;

    fn stamped(user: usize, epoch: u64, sent_at_us: u64, value: f64) -> StampedReport {
        StampedReport {
            epoch,
            sent_at_us,
            report: PerturbedReport {
                user,
                values: vec![(0, value), (1, value + 1.0)],
            },
        }
    }

    #[test]
    fn partition_map_round_trips_every_user() {
        let map = PartitionMap::new(vec![2, 0, 1, 0, 2, 2], 3).unwrap();
        assert_eq!(map.num_users(), 6);
        assert_eq!(map.num_nodes(), 3);
        assert_eq!(map.locals(0), &[1, 3]);
        assert_eq!(map.locals(1), &[2]);
        assert_eq!(map.locals(2), &[0, 4, 5]);
        for user in 0..map.num_users() {
            let (node, local) = (map.node_of(user), map.local_of(user));
            assert_eq!(map.global_of(node, local), user);
        }
        assert_eq!(map.population(1), 1);
    }

    #[test]
    fn partition_map_rejects_malformed_assignments() {
        assert!(PartitionMap::new(vec![0, 1], 0).is_err());
        assert!(PartitionMap::new(Vec::new(), 2).is_err());
        assert!(PartitionMap::new(vec![0, 2], 2).is_err());
    }

    #[test]
    fn lane_applies_deadline_before_dedup() {
        let mut lane = EpochLane::new(2, 100);
        lane.offer(0, stamped(0, 0, 50, 1.0)); // accepted
        lane.offer(0, stamped(0, 0, 150, 2.0)); // late duplicate → late
        lane.offer(0, stamped(0, 0, 60, 3.0)); // on-time duplicate → dup
        lane.offer(1, stamped(1, 0, 70, 4.0)); // accepted
        assert_eq!(lane.accepted(), 2);
        let result = lane.finish();
        assert_eq!(result.late_dropped, 1);
        assert_eq!(result.duplicates_discarded, 1);
        let slots: Vec<usize> = result.claims.iter().map(|&(s, _)| s).collect();
        assert_eq!(slots, vec![0, 1]);
        // First-wins: the value from the first on-time report survived.
        assert_eq!(result.claims[0].1.values[0], (0, 1.0));
    }

    #[test]
    fn partitioned_backend_rejects_what_sim_rejects() {
        let map = PartitionMap::new(vec![0, 1, 0], 2).unwrap();
        let mut backend = PartitionedBackend::new(map, Loss::Squared).unwrap();
        let bad_epoch = RoundInput {
            epoch: 3,
            num_objects: 2,
            deadline_us: 100,
            reports: vec![stamped(0, 4, 10, 1.0)],
        };
        assert!(matches!(
            backend.run_round(bad_epoch),
            Err(ProtocolError::InvalidParameter {
                name: "report.epoch",
                ..
            })
        ));
        let bad_user = RoundInput {
            epoch: 0,
            num_objects: 2,
            deadline_us: 100,
            reports: vec![stamped(7, 0, 10, 1.0)],
        };
        assert!(matches!(
            backend.run_round(bad_user),
            Err(ProtocolError::InvalidParameter {
                name: "report.user",
                ..
            })
        ));
    }

    /// A deterministic messy stream: duplicates, lates, and a value per
    /// (user, epoch) so first-wins ordering matters.
    fn messy_round(num_users: usize, epoch: u64) -> Vec<StampedReport> {
        let mut reports = Vec::new();
        for user in 0..num_users {
            let jitter = ((user as u64 * 37 + epoch * 11) % 90) + 1;
            reports.push(stamped(user, epoch, jitter, user as f64 + epoch as f64));
            if user % 3 == 0 {
                // A later duplicate that must lose first-wins.
                reports.push(stamped(user, epoch, jitter + 1, -99.0));
            }
            if user % 4 == 1 {
                // A late report (deadline is 100 in these tests).
                reports.push(stamped(user, epoch, 150, -77.0));
            }
        }
        reports
    }

    fn driver_config(rounds_affordable: u32) -> CampaignConfig {
        let per_round = PrivacyLoss::new(0.5, 0.0).unwrap();
        let budget = PrivacyLoss::new(0.5 * f64::from(rounds_affordable), 0.0).unwrap();
        CampaignConfig {
            num_objects: 2,
            deadline_us: 100,
            per_round_loss: per_round,
            budget,
        }
    }

    /// The acceptance argument, pinned: a partitioned campaign (here
    /// 3 nodes, interleaved assignment) is bit-identical to the
    /// single-node reference — truths, weights, counts, and per-user
    /// debit ledgers — including through a budget-refused final round.
    #[test]
    fn partitioned_campaign_is_bit_identical_to_sim() {
        let num_users = 10;
        let assignment: Vec<usize> = (0..num_users).map(|u| u % 3).collect();
        let map = PartitionMap::new(assignment, 3).unwrap();
        let config = driver_config(2);
        let mut sim =
            CampaignDriver::new(SimBackend::new(num_users, Loss::Squared).unwrap(), config)
                .unwrap();
        let mut part =
            CampaignDriver::new(PartitionedBackend::new(map, Loss::Squared).unwrap(), config)
                .unwrap();
        for epoch in 0..2u64 {
            let stream = messy_round(num_users, epoch);
            let a = sim.run_round(epoch, stream.clone()).unwrap();
            let b = part.run_round(epoch, stream).unwrap();
            assert_eq!(a, b, "round {epoch} diverged");
            assert_eq!(
                a.weights.iter().map(|w| w.to_bits()).collect::<Vec<u64>>(),
                b.weights.iter().map(|w| w.to_bits()).collect::<Vec<u64>>(),
                "weights are not bit-identical in round {epoch}"
            );
        }
        // The budget affords exactly two rounds: round 2 must refuse on
        // both backends identically.
        assert!(sim.run_round(2, messy_round(num_users, 2)).is_err());
        assert!(part.run_round(2, messy_round(num_users, 2)).is_err());
        assert_eq!(
            sim.accountant().debits_by_user(),
            part.accountant().debits_by_user()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// For any assignment over 1–4 nodes and any report stream
        /// (duplicates, lates, arbitrary interleaving), the partitioned
        /// backend matches the single-node reference bit for bit.
        #[test]
        fn any_partitioning_matches_sim(
            num_nodes in 1usize..=4,
            assignment in prop::collection::vec(0usize..4, 4..20),
            stream in prop::collection::vec(
                (0usize..20, 0u64..140, -5.0f64..5.0),
                0..60,
            ),
        ) {
            let num_users = assignment.len();
            let assignment: Vec<usize> =
                assignment.iter().map(|&n| n % num_nodes).collect();
            let map = PartitionMap::new(assignment, num_nodes).unwrap();
            let mut sim = SimBackend::new(num_users, Loss::Squared).unwrap();
            let mut part = PartitionedBackend::new(map, Loss::Squared).unwrap();
            let reports: Vec<StampedReport> = stream
                .into_iter()
                .map(|(user, sent_at_us, value)| {
                    stamped(user % num_users, 0, sent_at_us, value)
                })
                .collect();
            let input = RoundInput {
                epoch: 0,
                num_objects: 2,
                deadline_us: 100,
                reports,
            };
            let a = sim.run_round(input.clone());
            let b = part.run_round(input);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a, &b);
                    let bits = |ws: &[f64]| {
                        ws.iter().map(|w| w.to_bits()).collect::<Vec<u64>>()
                    };
                    prop_assert_eq!(bits(&a.weights), bits(&b.weights));
                    prop_assert_eq!(bits(&a.truths), bits(&b.truths));
                }
                // Degenerate rounds (e.g. an uncovered object) must fail
                // on both backends alike.
                (Err(_), Err(_)) => {}
                (a, b) => panic!("backends diverged: sim={a:?} partitioned={b:?}"),
            }
        }
    }
}
