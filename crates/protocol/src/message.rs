//! The wire protocol between server and users.
//!
//! Note what is *absent*: there is no message variant carrying raw
//! (unperturbed) values. Perturbation happens inside the client before a
//! [`Message::Submit`] is ever constructed, so an adversary observing the
//! transport — or the server itself — only ever sees perturbed data.

use serde::{Deserialize, Serialize};

use dptd_core::roles::{HyperParameter, PerturbedReport, TaskAssignment};

/// Address of a protocol participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// The aggregation server.
    Server,
    /// User `s`.
    User(usize),
}

/// Protocol messages (all serde-serialisable; the simulator and the
/// threaded runtime use the same enum).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Server → user: task list plus the public noise hyper-parameter
    /// (steps 1+3 of Algorithm 2).
    Assign {
        /// The micro-tasks the user should perform.
        tasks: TaskAssignment,
        /// The public `λ₂`.
        hyper: HyperParameter,
        /// Submission deadline in simulated microseconds since round
        /// start; reports arriving later are ignored.
        deadline_us: u64,
    },
    /// User → server: the perturbed report (step 5 of Algorithm 2).
    Submit(PerturbedReport),
    /// Server → all: final aggregated results (step 7).
    RoundResult {
        /// Estimated truths per object.
        truths: Vec<f64>,
    },
}

/// A perturbed report stamped with its **epoch** (which wave of objects
/// it belongs to) and its **virtual send time** within that epoch.
///
/// This is the unit of ingestion for the `dptd-engine` streaming
/// aggregator: the epoch routes the report to the right aggregation
/// batch, and the send time lets the server apply the same deadline
/// cut-off the discrete-event simulator applies (`sent_at_us` past the
/// epoch deadline ⇒ the report is dropped as late).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StampedReport {
    /// Which epoch (object wave) the report answers.
    pub epoch: u64,
    /// Virtual microseconds since the epoch's round started.
    pub sent_at_us: u64,
    /// The perturbed payload (never raw values; see the module docs).
    pub report: PerturbedReport,
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Delivery time in simulated microseconds.
    pub deliver_at_us: u64,
    /// Payload.
    pub payload: Message,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_are_distinct() {
        assert_ne!(NodeId::Server, NodeId::User(0));
        assert_ne!(NodeId::User(0), NodeId::User(1));
    }

    #[test]
    fn messages_are_serde() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<Message>();
        assert_serde::<Envelope>();
        assert_serde::<NodeId>();
    }

    #[test]
    fn no_raw_data_variant_exists() {
        // Compile-time documentation: constructing a Submit requires a
        // PerturbedReport — the type name itself enforces the trust
        // boundary. (This test exists to keep the invariant visible; if a
        // raw-data variant is ever added it should be deliberate.)
        let m = Message::Submit(PerturbedReport {
            user: 0,
            values: vec![(0, 1.0)],
        });
        match m {
            Message::Assign { .. } | Message::Submit(_) | Message::RoundResult { .. } => {}
        }
    }
}
