//! A capped, scoped worker pool.
//!
//! The original threaded runtime spawned **one OS thread per user**, which
//! exhausts OS threads long before the million-user populations the
//! ROADMAP targets. This pool caps concurrency at a fixed worker count and
//! statically partitions work across the workers; both the threaded
//! runtime ([`crate::runtime`]) and the sharded aggregation engine
//! (`dptd-engine`) run on it.
//!
//! Scoped threads keep the API borrow-friendly: closures may capture
//! references to stack data of the caller.

use std::num::NonZeroUsize;
use std::thread;

/// A fixed-size worker pool. Cheap to copy; threads are spawned per call
/// and joined before the call returns (scoped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl Default for WorkerPool {
    /// One worker per available hardware thread (at least one).
    fn default() -> Self {
        let workers = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self { workers }
    }
}

impl WorkerPool {
    /// A pool of exactly `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// The number of worker threads this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(index)` for every `index in 0..items`, using at most
    /// `self.workers()` OS threads (contiguous static chunking). Blocks
    /// until every index has been processed.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker after all workers have been
    /// joined.
    pub fn for_each_index<F>(&self, items: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if items == 0 {
            return;
        }
        let threads = self.workers.min(items);
        let f = &f;
        thread::scope(|scope| {
            for (lo, hi) in balanced_ranges(items, threads) {
                scope.spawn(move || {
                    for i in lo..hi {
                        f(i);
                    }
                });
            }
        });
    }

    /// Spawn `min(self.workers(), partitions)` long-running workers, each
    /// handed its contiguous slice of partition ids, and block until all
    /// return. Unlike [`WorkerPool::for_each_index`], each worker sees its
    /// whole assignment at once — the shape a queue-drain loop needs (one
    /// worker interleaving several shard queues).
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker after all workers have been
    /// joined.
    pub fn run_partitioned<F>(&self, partitions: usize, f: F)
    where
        F: Fn(&[usize]) + Sync,
    {
        if partitions == 0 {
            return;
        }
        let threads = self.workers.min(partitions);
        let f = &f;
        thread::scope(|scope| {
            for (lo, hi) in balanced_ranges(partitions, threads) {
                let ids: Vec<usize> = (lo..hi).collect();
                scope.spawn(move || f(&ids));
            }
        });
    }
}

/// Split `0..items` into exactly `threads` contiguous ranges whose sizes
/// differ by at most one — ceil-based chunking would leave trailing
/// workers with nothing whenever `items` is slightly above a multiple of
/// `threads` (e.g. 6 items over 4 workers as 2/2/2/0).
fn balanced_ranges(items: usize, threads: usize) -> impl Iterator<Item = (usize, usize)> {
    debug_assert!(threads >= 1 && threads <= items);
    let base = items / threads;
    let extra = items % threads;
    let mut lo = 0;
    (0..threads).map(move |w| {
        let len = base + usize::from(w < extra);
        let range = (lo, lo + len);
        lo += len;
        range
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        WorkerPool::new(7).for_each_index(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn caps_concurrency() {
        // With 2 workers, at most 2 closures run at once.
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        WorkerPool::new(2).for_each_index(64, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn handles_more_items_than_workers_and_vice_versa() {
        for (workers, items) in [(1, 5), (8, 3), (4, 4), (3, 1000)] {
            let count = AtomicUsize::new(0);
            WorkerPool::new(workers).for_each_index(items, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), items);
        }
    }

    #[test]
    fn empty_work_is_a_noop() {
        WorkerPool::new(4).for_each_index(0, |_| panic!("must not run"));
        WorkerPool::new(4).run_partitioned(0, |_| panic!("must not run"));
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let seen = Mutex::new(Vec::new());
        WorkerPool::new(3).run_partitioned(10, |ids| {
            seen.lock().unwrap().extend_from_slice(ids);
        });
        let mut all = seen.into_inner().unwrap();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn every_worker_gets_a_nonempty_balanced_slice() {
        // 6 partitions over 4 workers must be 2/2/1/1, never 2/2/2/0.
        for (workers, partitions) in [(4usize, 6usize), (3, 10), (8, 9), (5, 5)] {
            let sizes = Mutex::new(Vec::new());
            WorkerPool::new(workers).run_partitioned(partitions, |ids| {
                sizes.lock().unwrap().push(ids.len());
            });
            let sizes = sizes.into_inner().unwrap();
            assert_eq!(sizes.len(), workers.min(partitions));
            assert!(
                sizes.iter().all(|&s| s > 0),
                "{workers}w/{partitions}p: {sizes:?}"
            );
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(
                max - min <= 1,
                "{workers}w/{partitions}p unbalanced: {sizes:?}"
            );
        }
    }
}
