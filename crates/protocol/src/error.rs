use std::fmt;

/// Error type for the protocol runtimes.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// A runtime parameter was outside its domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// The constraint that failed.
        constraint: &'static str,
    },
    /// The round deadline passed without enough coverage to aggregate
    /// (every object needs at least one surviving report).
    InsufficientCoverage {
        /// The first object with no report.
        object: usize,
        /// How many reports did arrive.
        reports_received: usize,
    },
    /// A worker thread panicked or disconnected in the threaded runtime.
    WorkerFailed {
        /// Index of the failed user thread.
        user: usize,
    },
    /// A campaign round backend failed outside the protocol's own error
    /// domain (e.g. the streaming engine's ingestion layer).
    Backend {
        /// Which backend failed (`"sim"`, `"engine"`, …).
        backend: &'static str,
        /// Human-readable failure description.
        message: String,
    },
    /// An error from the core pipeline.
    Core(dptd_core::CoreError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            ProtocolError::InsufficientCoverage {
                object,
                reports_received,
            } => write!(
                f,
                "object {object} received no reports before the deadline ({reports_received} total reports arrived)"
            ),
            ProtocolError::WorkerFailed { user } => {
                write!(f, "user thread {user} failed or disconnected")
            }
            ProtocolError::Backend { backend, message } => {
                write!(f, "{backend} backend failed: {message}")
            }
            ProtocolError::Core(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dptd_core::CoreError> for ProtocolError {
    fn from(e: dptd_core::CoreError) -> Self {
        ProtocolError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ProtocolError::InsufficientCoverage {
            object: 3,
            reports_received: 7,
        };
        assert!(e.to_string().contains('3'));
        let e = ProtocolError::WorkerFailed { user: 5 };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
