//! Crowd-sensing protocol runtime.
//!
//! The paper's §2 system model is one untrusted server and `S`
//! non-coordinating mobile users; §3.2 claims the mechanism *"ensures fast
//! processing … and there are no communication costs due to the
//! non-collaborative mechanism"*. This crate makes that deployment story
//! concrete with two interchangeable runtimes over the same protocol:
//!
//! * [`sim`] — a deterministic **discrete-event simulator** with a
//!   latency/message-loss network model: reproducible rounds, fault
//!   injection, and exact message accounting. Used by the robustness
//!   experiments.
//! * [`runtime`] — a **multi-threaded runtime** on crossbeam channels: a
//!   capped [`pool::WorkerPool`] drives the users, a collector thread
//!   gathers for the server under a real wall-clock deadline. Used to
//!   demonstrate the single round-trip / no-coordination property under
//!   actual concurrency.
//!
//! Shared infrastructure grew out of these runtimes and is reused by the
//! `dptd-engine` streaming aggregator: [`pool`] (capped scoped worker
//! pool), [`dedup`] (first-wins duplicate filtering) and
//! [`message::StampedReport`] (an epoch/arrival-time-stamped report).
//!
//! Multi-round campaigns live in [`campaign`]: a backend-abstracted
//! [`campaign::CampaignDriver`] executes each round through a pluggable
//! [`campaign::RoundBackend`] (the in-process [`campaign::SimBackend`]
//! here, or the sharded `dptd-engine` backend) while [`budget`] enforces
//! per-user privacy budgets — exhausted users refuse, and dropped/late
//! reports debit nothing.
//!
//! Both drive the same [`dptd_core::roles`] types: the user-side
//! perturbation happens inside the client, so raw values never cross the
//! transport — the trust boundary is visible in the message enum
//! ([`message::Message`] has no constructor carrying raw data).
//!
//! # Example: one simulated round
//!
//! ```
//! use dptd_protocol::sim::{NetworkConfig, RoundConfig, SimHarness};
//! use dptd_truth::crh::Crh;
//!
//! # fn main() -> Result<(), dptd_protocol::ProtocolError> {
//! let mut rng = dptd_stats::seeded_rng(11);
//! let data = dptd_sensing::synthetic::SyntheticConfig {
//!     num_users: 20,
//!     num_objects: 5,
//!     ..Default::default()
//! }
//! .generate(&mut rng)
//! .map_err(dptd_core::CoreError::from)?;
//!
//! let harness = SimHarness::new(Crh::default(), 2.0, NetworkConfig::default())?;
//! let outcome = harness.run_round(&data.observations, &RoundConfig::default(), &mut rng)?;
//! assert_eq!(outcome.truths.len(), 5);
//! assert!(outcome.participants.len() <= 20);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod budget;
pub mod campaign;
pub mod dedup;
pub mod message;
pub mod partition;
pub mod pool;
pub mod runtime;
pub mod sim;

mod error;

pub use dedup::DedupFilter;
pub use error::ProtocolError;
pub use pool::WorkerPool;
