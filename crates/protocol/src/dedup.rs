//! First-wins report de-duplication.
//!
//! Both the discrete-event simulator and the streaming engine must cope
//! with duplicate submissions (retries, at-least-once transports): the
//! server keeps the **first** report per user and counts the rest. This
//! module lifts that policy out of `sim.rs` into a reusable filter so every
//! runtime shares identical semantics.
//!
//! The filter is indexed by a caller-chosen *slot*: the simulator uses the
//! global user id, while each engine shard uses a dense local index for its
//! own sub-population (keeping per-shard memory proportional to the shard,
//! not the population).

use dptd_core::roles::PerturbedReport;

/// First-wins de-duplication over a fixed number of slots.
#[derive(Debug, Clone, PartialEq)]
pub struct DedupFilter {
    received: Vec<Option<PerturbedReport>>,
    arrival_order: Vec<usize>,
    duplicates: usize,
}

impl DedupFilter {
    /// A filter with `slots` empty slots.
    pub fn new(slots: usize) -> Self {
        Self {
            received: vec![None; slots],
            arrival_order: Vec::new(),
            duplicates: 0,
        }
    }

    /// Offer a report for `slot`. Returns `true` if it was accepted (first
    /// arrival) and `false` if it was discarded as a duplicate.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn accept(&mut self, slot: usize, report: PerturbedReport) -> bool {
        assert!(slot < self.received.len(), "dedup slot {slot} out of range");
        if self.received[slot].is_some() {
            self.duplicates += 1;
            return false;
        }
        self.arrival_order.push(slot);
        self.received[slot] = Some(report);
        true
    }

    /// Number of duplicates discarded so far.
    pub fn duplicates_discarded(&self) -> usize {
        self.duplicates
    }

    /// Number of accepted reports.
    pub fn len(&self) -> usize {
        self.arrival_order.len()
    }

    /// Whether no report has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.arrival_order.is_empty()
    }

    /// Slots that received a report, in arrival order.
    pub fn participants(&self) -> &[usize] {
        &self.arrival_order
    }

    /// Slots that never received a report, in ascending order.
    pub fn missing(&self) -> Vec<usize> {
        self.received
            .iter()
            .enumerate()
            .filter_map(|(s, r)| r.is_none().then_some(s))
            .collect()
    }

    /// The accepted report in `slot`, if any.
    pub fn get(&self, slot: usize) -> Option<&PerturbedReport> {
        self.received.get(slot).and_then(Option::as_ref)
    }

    /// Consume the filter, yielding the accepted reports in arrival order.
    pub fn into_reports(self) -> Vec<PerturbedReport> {
        let mut received = self.received;
        self.arrival_order
            .iter()
            .map(|&s| received[s].take().expect("arrival order implies stored"))
            .collect()
    }

    /// Consume the filter, yielding `(slot, report)` pairs in **ascending
    /// slot order** — the canonical layout the cross-shard merge of the
    /// aggregation engine requires.
    pub fn into_slot_ordered(self) -> Vec<(usize, PerturbedReport)> {
        self.received
            .into_iter()
            .enumerate()
            .filter_map(|(s, r)| r.map(|r| (s, r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(user: usize, v: f64) -> PerturbedReport {
        PerturbedReport {
            user,
            values: vec![(0, v)],
        }
    }

    #[test]
    fn first_wins_and_duplicates_count() {
        let mut d = DedupFilter::new(3);
        assert!(d.accept(1, report(1, 10.0)));
        assert!(!d.accept(1, report(1, 99.0)));
        assert!(d.accept(0, report(0, 5.0)));
        assert_eq!(d.duplicates_discarded(), 1);
        assert_eq!(d.len(), 2);
        assert_eq!(d.participants(), &[1, 0]);
        assert_eq!(d.missing(), vec![2]);
        // The first value survived.
        assert_eq!(d.get(1).unwrap().values[0].1, 10.0);
    }

    #[test]
    fn arrival_order_is_preserved() {
        let mut d = DedupFilter::new(4);
        for slot in [2, 0, 3] {
            d.accept(slot, report(slot, slot as f64));
        }
        let reports = d.into_reports();
        assert_eq!(
            reports.iter().map(|r| r.user).collect::<Vec<_>>(),
            vec![2, 0, 3]
        );
    }

    #[test]
    fn slot_ordered_view_is_canonical() {
        let mut d = DedupFilter::new(5);
        for slot in [4, 1, 3] {
            d.accept(slot, report(slot, 0.0));
        }
        let slots: Vec<usize> = d.into_slot_ordered().into_iter().map(|(s, _)| s).collect();
        assert_eq!(slots, vec![1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        DedupFilter::new(1).accept(1, report(1, 0.0));
    }
}
