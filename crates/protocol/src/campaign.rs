//! Multi-round sensing campaigns.
//!
//! Real crowd-sensing deployments run in waves: each round brings new
//! micro-tasks (new hallway segments, new grid cells) to the same user
//! population. A campaign chains [`SimHarness`] rounds, feeds the
//! surviving perturbed reports into a server-side
//! [`StreamingCrh`] estimator — so
//! user weights sharpen across rounds — and composes each user's privacy
//! cost with [`PrivacyLoss`] basic composition.

use rand::Rng;

use dptd_ldp::PrivacyLoss;
use dptd_truth::crh::Crh;
use dptd_truth::streaming::StreamingCrh;
use dptd_truth::{Loss, ObservationMatrix};

use crate::sim::{NetworkConfig, RoundConfig, RoundOutcome, SimHarness};
use crate::ProtocolError;

/// Outcome of one campaign round.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRound {
    /// The per-round protocol outcome (participants, drops, …).
    pub outcome: RoundOutcome,
    /// The streaming estimator's truths for this round's objects.
    pub streaming_truths: Vec<f64>,
    /// Worst-case cumulative privacy loss for a user who participated in
    /// every round so far (basic composition of the per-round loss).
    pub cumulative_privacy: PrivacyLoss,
}

/// A multi-round crowd-sensing campaign over a fixed user population.
///
/// # Example
///
/// ```
/// use dptd_ldp::PrivacyLoss;
/// use dptd_protocol::campaign::Campaign;
/// use dptd_protocol::sim::{NetworkConfig, RoundConfig};
///
/// # fn main() -> Result<(), dptd_protocol::ProtocolError> {
/// let mut rng = dptd_stats::seeded_rng(13);
/// let per_round = PrivacyLoss::new(1.0, 0.2).map_err(dptd_core::CoreError::from)?;
/// let mut campaign = Campaign::new(
///     30,
///     2.0,
///     NetworkConfig::default(),
///     RoundConfig::default(),
///     per_round,
/// )?;
/// let batch = dptd_sensing::synthetic::SyntheticConfig {
///     num_users: 30,
///     num_objects: 4,
///     ..Default::default()
/// }
/// .generate(&mut rng)
/// .map_err(dptd_core::CoreError::from)?;
/// let round = campaign.run_round(&batch.observations, &mut rng)?;
/// assert_eq!(round.streaming_truths.len(), 4);
/// assert!((round.cumulative_privacy.epsilon() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Campaign {
    harness: SimHarness<Crh>,
    round_config: RoundConfig,
    streaming: StreamingCrh,
    num_users: usize,
    per_round_loss: PrivacyLoss,
    rounds_run: u32,
}

impl Campaign {
    /// Create a campaign for `num_users` participants.
    ///
    /// `per_round_loss` is the `(ε, δ)` each round consumes for a
    /// participating user (obtained from Theorem 4.8 for the chosen
    /// `λ₂`).
    ///
    /// # Errors
    ///
    /// Propagates harness/estimator parameter validation.
    pub fn new(
        num_users: usize,
        lambda2: f64,
        network: NetworkConfig,
        round_config: RoundConfig,
        per_round_loss: PrivacyLoss,
    ) -> Result<Self, ProtocolError> {
        let harness = SimHarness::new(Crh::default(), lambda2, network)?;
        let streaming = StreamingCrh::new(num_users, Loss::Squared)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;
        Ok(Self {
            harness,
            round_config,
            streaming,
            num_users,
            per_round_loss,
            rounds_run: 0,
        })
    }

    /// Number of rounds completed.
    pub fn rounds_run(&self) -> u32 {
        self.rounds_run
    }

    /// The streaming estimator's current per-user weights.
    pub fn weights(&self) -> &[f64] {
        self.streaming.weights()
    }

    /// Run one round over a fresh batch of objects.
    ///
    /// `raw_batch` holds the users' ground measurements for this round's
    /// (new) objects; rows must match the campaign population.
    ///
    /// # Errors
    ///
    /// Propagates protocol failures. The streaming estimator additionally
    /// requires every batch object to be covered by a *surviving* report.
    pub fn run_round<R: Rng + ?Sized>(
        &mut self,
        raw_batch: &ObservationMatrix,
        rng: &mut R,
    ) -> Result<CampaignRound, ProtocolError> {
        if raw_batch.num_users() != self.num_users {
            return Err(ProtocolError::InvalidParameter {
                name: "raw_batch.num_users",
                value: raw_batch.num_users() as f64,
                constraint: "must match the campaign population",
            });
        }
        let outcome = self.harness.run_round(raw_batch, &self.round_config, rng)?;

        // Rebuild the surviving perturbed matrix with one row per
        // population member (absent users contribute nothing this round).
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.num_users];
        for report in &outcome.reports {
            rows[report.user] = report.values.clone();
        }
        let survived = ObservationMatrix::from_sparse_rows(raw_batch.num_objects(), &rows)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;

        let streaming_truths = self
            .streaming
            .ingest(&survived)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;

        self.rounds_run += 1;
        Ok(CampaignRound {
            outcome,
            streaming_truths,
            cumulative_privacy: self.per_round_loss.compose_k(self.rounds_run),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_sensing::synthetic::SyntheticConfig;

    fn batch(users: usize, objects: usize, seed: u64) -> dptd_sensing::SensingDataset {
        let mut rng = dptd_stats::seeded_rng(seed);
        SyntheticConfig {
            num_users: users,
            num_objects: objects,
            ..Default::default()
        }
        .generate(&mut rng)
        .unwrap()
    }

    fn new_campaign(users: usize) -> Campaign {
        Campaign::new(
            users,
            5.0,
            NetworkConfig::default(),
            RoundConfig::default(),
            PrivacyLoss::new(0.5, 0.1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_population_mismatch() {
        let mut campaign = new_campaign(10);
        let wrong = batch(11, 3, 971);
        let mut rng = dptd_stats::seeded_rng(977);
        assert!(campaign.run_round(&wrong.observations, &mut rng).is_err());
    }

    #[test]
    fn privacy_composes_across_rounds() {
        let mut campaign = new_campaign(25);
        let mut rng = dptd_stats::seeded_rng(983);
        for round in 1..=3u32 {
            let b = batch(25, 4, 1000 + round as u64);
            let out = campaign.run_round(&b.observations, &mut rng).unwrap();
            assert!((out.cumulative_privacy.epsilon() - 0.5 * round as f64).abs() < 1e-12);
            assert!((out.cumulative_privacy.delta() - 0.1 * round as f64).abs() < 1e-12);
        }
        assert_eq!(campaign.rounds_run(), 3);
    }

    #[test]
    fn streaming_truths_track_batches() {
        let mut campaign = new_campaign(40);
        let mut rng = dptd_stats::seeded_rng(991);
        for round in 0..4 {
            let b = batch(40, 6, 2000 + round);
            let out = campaign.run_round(&b.observations, &mut rng).unwrap();
            let err = dptd_stats::summary::mae(&out.streaming_truths, &b.ground_truths).unwrap();
            assert!(err < 0.5, "round {round} streaming err {err}");
            // The protocol's own per-round aggregate should agree with the
            // streaming estimate to within the noise scale.
            let gap = dptd_stats::summary::mae(&out.streaming_truths, &out.outcome.truths).unwrap();
            assert!(gap < 0.5, "round {round} streaming vs round gap {gap}");
        }
    }

    #[test]
    fn weights_available_after_rounds() {
        let mut campaign = new_campaign(15);
        let mut rng = dptd_stats::seeded_rng(997);
        let b = batch(15, 5, 3000);
        campaign.run_round(&b.observations, &mut rng).unwrap();
        assert_eq!(campaign.weights().len(), 15);
        assert!(campaign.weights().iter().all(|w| w.is_finite()));
    }
}
