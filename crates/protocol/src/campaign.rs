//! Multi-round sensing campaigns.
//!
//! Real crowd-sensing deployments run in waves: each round brings new
//! micro-tasks (new hallway segments, new grid cells) to the same user
//! population. Two layers live here:
//!
//! * [`Campaign`] — the original harness-coupled loop: chains
//!   [`SimHarness`] rounds, feeds the surviving perturbed reports into a
//!   server-side [`StreamingCrh`] estimator, and composes a worst-case
//!   privacy loss with [`PrivacyLoss`] basic composition.
//! * [`CampaignDriver`] — the backend-abstracted loop: each round is a
//!   stream of [`StampedReport`]s executed by a pluggable
//!   [`RoundBackend`] (the in-process [`SimBackend`] here, or the sharded
//!   `dptd-engine` backend), with **per-user** budget accounting through
//!   [`BudgetAccountant`]: a user whose next debit would overshoot the
//!   campaign budget refuses to submit, and dropped/late reports debit
//!   nothing.
//!
//! Both backends apply the identical server pipeline — deadline cut-off,
//! first-wins de-duplication, one [`StreamingCrh`] ingest per round — so
//! a fixed report stream produces **bit-identical** truths and weights on
//! either, which is what lets the scalable path replace the simulator
//! under test.

use rand::Rng;

use dptd_ldp::PrivacyLoss;
use dptd_truth::crh::Crh;
use dptd_truth::streaming::StreamingCrh;
use dptd_truth::{Loss, ObservationMatrix};

use crate::budget::BudgetAccountant;
use crate::dedup::DedupFilter;
use crate::message::StampedReport;
use crate::sim::{NetworkConfig, RoundConfig, RoundOutcome, SimHarness};
use crate::ProtocolError;

/// Outcome of one campaign round.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRound {
    /// The per-round protocol outcome (participants, drops, …).
    pub outcome: RoundOutcome,
    /// The streaming estimator's truths for this round's objects.
    pub streaming_truths: Vec<f64>,
    /// Worst-case cumulative privacy loss for a user who participated in
    /// every round so far (basic composition of the per-round loss).
    pub cumulative_privacy: PrivacyLoss,
}

/// A multi-round crowd-sensing campaign over a fixed user population.
///
/// # Example
///
/// ```
/// use dptd_ldp::PrivacyLoss;
/// use dptd_protocol::campaign::Campaign;
/// use dptd_protocol::sim::{NetworkConfig, RoundConfig};
///
/// # fn main() -> Result<(), dptd_protocol::ProtocolError> {
/// let mut rng = dptd_stats::seeded_rng(13);
/// let per_round = PrivacyLoss::new(1.0, 0.2).map_err(dptd_core::CoreError::from)?;
/// let mut campaign = Campaign::new(
///     30,
///     2.0,
///     NetworkConfig::default(),
///     RoundConfig::default(),
///     per_round,
/// )?;
/// let batch = dptd_sensing::synthetic::SyntheticConfig {
///     num_users: 30,
///     num_objects: 4,
///     ..Default::default()
/// }
/// .generate(&mut rng)
/// .map_err(dptd_core::CoreError::from)?;
/// let round = campaign.run_round(&batch.observations, &mut rng)?;
/// assert_eq!(round.streaming_truths.len(), 4);
/// assert!((round.cumulative_privacy.epsilon() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Campaign {
    harness: SimHarness<Crh>,
    round_config: RoundConfig,
    streaming: StreamingCrh,
    num_users: usize,
    per_round_loss: PrivacyLoss,
    rounds_run: u32,
}

impl Campaign {
    /// Create a campaign for `num_users` participants.
    ///
    /// `per_round_loss` is the `(ε, δ)` each round consumes for a
    /// participating user (obtained from Theorem 4.8 for the chosen
    /// `λ₂`).
    ///
    /// # Errors
    ///
    /// Propagates harness/estimator parameter validation.
    pub fn new(
        num_users: usize,
        lambda2: f64,
        network: NetworkConfig,
        round_config: RoundConfig,
        per_round_loss: PrivacyLoss,
    ) -> Result<Self, ProtocolError> {
        let harness = SimHarness::new(Crh::default(), lambda2, network)?;
        let streaming = StreamingCrh::new(num_users, Loss::Squared)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;
        Ok(Self {
            harness,
            round_config,
            streaming,
            num_users,
            per_round_loss,
            rounds_run: 0,
        })
    }

    /// Number of rounds completed.
    pub fn rounds_run(&self) -> u32 {
        self.rounds_run
    }

    /// The streaming estimator's current per-user weights.
    pub fn weights(&self) -> &[f64] {
        self.streaming.weights()
    }

    /// Run one round over a fresh batch of objects.
    ///
    /// `raw_batch` holds the users' ground measurements for this round's
    /// (new) objects; rows must match the campaign population.
    ///
    /// # Errors
    ///
    /// Propagates protocol failures. The streaming estimator additionally
    /// requires every batch object to be covered by a *surviving* report.
    pub fn run_round<R: Rng + ?Sized>(
        &mut self,
        raw_batch: &ObservationMatrix,
        rng: &mut R,
    ) -> Result<CampaignRound, ProtocolError> {
        if raw_batch.num_users() != self.num_users {
            return Err(ProtocolError::InvalidParameter {
                name: "raw_batch.num_users",
                value: raw_batch.num_users() as f64,
                constraint: "must match the campaign population",
            });
        }
        let outcome = self.harness.run_round(raw_batch, &self.round_config, rng)?;

        // Rebuild the surviving perturbed matrix with one row per
        // population member (absent users contribute nothing this round).
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.num_users];
        for report in &outcome.reports {
            rows[report.user] = report.values.clone();
        }
        let survived = ObservationMatrix::from_sparse_rows(raw_batch.num_objects(), &rows)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;

        let streaming_truths = self
            .streaming
            .ingest(&survived)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;

        self.rounds_run += 1;
        Ok(CampaignRound {
            outcome,
            streaming_truths,
            cumulative_privacy: self.per_round_loss.compose_k(self.rounds_run),
        })
    }
}

/// One round's input to a [`RoundBackend`]: the perturbed, time-stamped
/// reports of everyone who chose to submit, in stream (delivery) order.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundInput {
    /// The epoch id stamped on this round's reports.
    pub epoch: u64,
    /// Objects this round's micro-tasks cover.
    pub num_objects: usize,
    /// Deadline in virtual µs; reports stamped later are dropped as late.
    pub deadline_us: u64,
    /// The round's report stream. Backends process it in order: the
    /// first on-time report per user wins, exactly as the streaming
    /// engine's shard queues would see it.
    pub reports: Vec<StampedReport>,
}

/// What a [`RoundBackend`] produced for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutput {
    /// Estimated truths for this round's objects.
    pub truths: Vec<f64>,
    /// Full-population weights after ingesting the round.
    pub weights: Vec<f64>,
    /// Users whose report was aggregated, ascending.
    pub accepted_users: Vec<usize>,
    /// Duplicate submissions discarded (first-wins).
    pub duplicates_discarded: u64,
    /// Reports dropped for missing the deadline.
    pub late_dropped: u64,
}

/// A round-execution strategy for [`CampaignDriver`].
///
/// Implementations must apply the canonical server pipeline — deadline
/// cut-off, first-wins de-duplication in stream order, then exactly one
/// [`StreamingCrh`] ingest over the surviving reports — so that any two
/// backends fed the same stream produce bit-identical truths and
/// weights. The in-process reference is [`SimBackend`]; the scalable
/// implementation is `dptd_engine::EngineBackend`.
pub trait RoundBackend {
    /// A short human-readable backend name (`"sim"`, `"engine"`, …).
    fn name(&self) -> &'static str;

    /// The fixed population size this backend aggregates over.
    fn num_users(&self) -> usize;

    /// Execute one round over `input.reports`.
    ///
    /// # Errors
    ///
    /// Implementations fail when the surviving reports cannot cover every
    /// object, and may fail on malformed input (user ids outside the
    /// population, mismatched sizing).
    fn run_round(&mut self, input: RoundInput) -> Result<RoundOutput, ProtocolError>;
}

/// The in-process reference backend: the discrete-event simulator's
/// server path (deadline, first-wins dedup, streaming ingest) driven
/// directly by the stamped stream, single-threaded.
#[derive(Debug, Clone)]
pub struct SimBackend {
    streaming: StreamingCrh,
}

impl SimBackend {
    /// A backend over a fixed population with fresh (uniform) weights.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty population.
    pub fn new(num_users: usize, loss: Loss) -> Result<Self, ProtocolError> {
        let streaming = StreamingCrh::new(num_users, loss)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;
        Ok(Self { streaming })
    }

    /// The backing streaming estimator.
    pub fn streaming(&self) -> &StreamingCrh {
        &self.streaming
    }
}

impl RoundBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn num_users(&self) -> usize {
        self.streaming.num_users()
    }

    fn run_round(&mut self, input: RoundInput) -> Result<RoundOutput, ProtocolError> {
        let num_users = self.streaming.num_users();
        let mut dedup = DedupFilter::new(num_users);
        let mut late_dropped = 0u64;
        for stamped in input.reports {
            if stamped.epoch != input.epoch {
                return Err(ProtocolError::InvalidParameter {
                    name: "report.epoch",
                    value: stamped.epoch as f64,
                    constraint: "every report in a campaign round must carry the round's epoch",
                });
            }
            let user = stamped.report.user;
            if user >= num_users {
                return Err(ProtocolError::InvalidParameter {
                    name: "report.user",
                    value: user as f64,
                    constraint: "must be inside the campaign population",
                });
            }
            // Deadline before dedup, mirroring the engine's shard path: a
            // late duplicate counts as late, not as a duplicate.
            if stamped.sent_at_us > input.deadline_us {
                late_dropped += 1;
                continue;
            }
            dedup.accept(user, stamped.report);
        }
        let duplicates_discarded = dedup.duplicates_discarded() as u64;

        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); num_users];
        let mut accepted_users = Vec::with_capacity(dedup.len());
        for (user, report) in dedup.into_slot_ordered() {
            accepted_users.push(user);
            rows[user] = report.values;
        }
        let batch = ObservationMatrix::from_sparse_rows(input.num_objects, &rows)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;
        let truths = self
            .streaming
            .ingest(&batch)
            .map_err(|e| ProtocolError::Core(dptd_core::CoreError::Truth(e)))?;

        Ok(RoundOutput {
            truths,
            weights: self.streaming.weights().to_vec(),
            accepted_users,
            duplicates_discarded,
            late_dropped,
        })
    }
}

/// Sizing and privacy policy for a [`CampaignDriver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Objects per round.
    pub num_objects: usize,
    /// Per-round submission deadline (virtual µs).
    pub deadline_us: u64,
    /// The `(ε, δ)` one aggregated report costs its user.
    pub per_round_loss: PrivacyLoss,
    /// The campaign-wide `(ε, δ)` ceiling per user.
    pub budget: PrivacyLoss,
}

/// What one driven round reported.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverRound {
    /// The round's epoch id.
    pub epoch: u64,
    /// Estimated truths for the round's objects.
    pub truths: Vec<f64>,
    /// Full-population weights after the round.
    pub weights: Vec<f64>,
    /// Reports aggregated this round.
    pub accepted: usize,
    /// Users that refused this round because their budget was exhausted
    /// (their reports never reached the backend).
    pub refused_users: usize,
    /// Duplicates the backend discarded.
    pub duplicates_discarded: u64,
    /// Reports the backend dropped as late.
    pub late_dropped: u64,
    /// Worst cumulative privacy loss across the population after the
    /// round's debits.
    pub max_spent: PrivacyLoss,
}

/// Drives a multi-round campaign through a pluggable [`RoundBackend`],
/// enforcing per-user privacy budgets.
///
/// Per round: users whose budget cannot afford another submission are
/// filtered out *before* the backend runs (they refuse, so not even a
/// perturbed report leaves the device); the backend aggregates the rest;
/// and only users whose report was actually **accepted** are debited —
/// late, duplicate-discarded and churned-out reports debit nothing.
///
/// # Example
///
/// ```
/// use dptd_core::roles::PerturbedReport;
/// use dptd_ldp::PrivacyLoss;
/// use dptd_protocol::campaign::{CampaignConfig, CampaignDriver, SimBackend};
/// use dptd_protocol::message::StampedReport;
/// use dptd_truth::Loss;
///
/// # fn main() -> Result<(), dptd_protocol::ProtocolError> {
/// let per_round = PrivacyLoss::new(0.5, 0.0).map_err(dptd_core::CoreError::from)?;
/// let budget = PrivacyLoss::new(1.0, 0.0).map_err(dptd_core::CoreError::from)?;
/// let config = CampaignConfig {
///     num_objects: 1,
///     deadline_us: 1_000,
///     per_round_loss: per_round,
///     budget,
/// };
/// let mut driver = CampaignDriver::new(SimBackend::new(2, Loss::Squared)?, config)?;
/// let reports = |epoch| {
///     (0..2)
///         .map(|user| StampedReport {
///             epoch,
///             sent_at_us: 10,
///             report: PerturbedReport { user, values: vec![(0, user as f64)] },
///         })
///         .collect::<Vec<_>>()
/// };
/// let round = driver.run_round(0, reports(0))?;
/// assert_eq!(round.accepted, 2);
/// // A 1.0 budget in 0.5 steps affords exactly two rounds.
/// driver.run_round(1, reports(1))?;
/// assert!(driver.run_round(2, reports(2)).is_err()); // everyone refuses
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CampaignDriver<B> {
    backend: B,
    config: CampaignConfig,
    accountant: BudgetAccountant,
    rounds_run: u32,
}

impl<B: RoundBackend> CampaignDriver<B> {
    /// Wrap `backend` with budget accounting under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] for zero objects or a
    /// budget that cannot afford a single round.
    pub fn new(backend: B, config: CampaignConfig) -> Result<Self, ProtocolError> {
        if config.num_objects == 0 {
            return Err(ProtocolError::InvalidParameter {
                name: "num_objects",
                value: 0.0,
                constraint: "must be positive",
            });
        }
        if config.deadline_us == 0 {
            return Err(ProtocolError::InvalidParameter {
                name: "deadline_us",
                value: 0.0,
                constraint: "must be positive",
            });
        }
        let accountant =
            BudgetAccountant::new(backend.num_users(), config.per_round_loss, config.budget)?;
        Ok(Self {
            backend,
            config,
            accountant,
            rounds_run: 0,
        })
    }

    /// Resume a campaign from recovered mid-campaign state: a backend
    /// already carrying the replayed estimator, the per-user debit ledger
    /// the write-ahead log restored, and the number of rounds the crashed
    /// run completed (so round indices continue where they stopped).
    ///
    /// # Errors
    ///
    /// Everything [`CampaignDriver::new`] rejects, plus
    /// [`ProtocolError::InvalidParameter`] when the ledger snapshot does
    /// not match the backend population or overshoots the budget.
    pub fn resume(
        backend: B,
        config: CampaignConfig,
        rounds_debited: Vec<u32>,
        rounds_run: u32,
    ) -> Result<Self, ProtocolError> {
        if rounds_debited.len() != backend.num_users() {
            return Err(ProtocolError::InvalidParameter {
                name: "rounds_debited",
                value: rounds_debited.len() as f64,
                constraint: "ledger snapshot must cover the backend population",
            });
        }
        let mut driver = Self::new(backend, config)?;
        driver.accountant =
            BudgetAccountant::resume(config.per_round_loss, config.budget, rounds_debited)?;
        driver.rounds_run = rounds_run;
        Ok(driver)
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The wrapped backend, mutably — for maintenance operations between
    /// rounds (e.g. flushing a durable backend's log on orderly
    /// shutdown), never for running rounds directly.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Consume the driver, returning the backend (e.g. to read engine
    /// metrics after the campaign).
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// The privacy ledger.
    pub fn accountant(&self) -> &BudgetAccountant {
        &self.accountant
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Rounds completed.
    pub fn rounds_run(&self) -> u32 {
        self.rounds_run
    }

    /// Run one round over `reports` (stream order, as delivered).
    ///
    /// # Errors
    ///
    /// Propagates backend failures — including the round where so many
    /// users' budgets are exhausted that some object loses coverage.
    pub fn run_round(
        &mut self,
        epoch: u64,
        reports: Vec<StampedReport>,
    ) -> Result<DriverRound, ProtocolError> {
        // Refusal: exhausted users withhold every copy of their report.
        let mut refused = vec![false; self.accountant.num_users()];
        let mut affordable = Vec::with_capacity(reports.len());
        for stamped in reports {
            let user = stamped.report.user;
            if user < refused.len() && !self.accountant.can_spend(user) {
                refused[user] = true;
                continue;
            }
            affordable.push(stamped);
        }
        let refused_users = refused.iter().filter(|&&r| r).count();

        let out = self.backend.run_round(RoundInput {
            epoch,
            num_objects: self.config.num_objects,
            deadline_us: self.config.deadline_us,
            reports: affordable,
        })?;

        // Debit only what the server consumed.
        for &user in &out.accepted_users {
            self.accountant.debit(user);
        }
        self.rounds_run += 1;

        Ok(DriverRound {
            epoch,
            truths: out.truths,
            weights: out.weights,
            accepted: out.accepted_users.len(),
            refused_users,
            duplicates_discarded: out.duplicates_discarded,
            late_dropped: out.late_dropped,
            max_spent: self.accountant.max_spent(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_sensing::synthetic::SyntheticConfig;

    fn batch(users: usize, objects: usize, seed: u64) -> dptd_sensing::SensingDataset {
        let mut rng = dptd_stats::seeded_rng(seed);
        SyntheticConfig {
            num_users: users,
            num_objects: objects,
            ..Default::default()
        }
        .generate(&mut rng)
        .unwrap()
    }

    fn new_campaign(users: usize) -> Campaign {
        Campaign::new(
            users,
            5.0,
            NetworkConfig::default(),
            RoundConfig::default(),
            PrivacyLoss::new(0.5, 0.1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_population_mismatch() {
        let mut campaign = new_campaign(10);
        let wrong = batch(11, 3, 971);
        let mut rng = dptd_stats::seeded_rng(977);
        assert!(campaign.run_round(&wrong.observations, &mut rng).is_err());
    }

    #[test]
    fn privacy_composes_across_rounds() {
        let mut campaign = new_campaign(25);
        let mut rng = dptd_stats::seeded_rng(983);
        for round in 1..=3u32 {
            let b = batch(25, 4, 1000 + round as u64);
            let out = campaign.run_round(&b.observations, &mut rng).unwrap();
            assert!((out.cumulative_privacy.epsilon() - 0.5 * round as f64).abs() < 1e-12);
            assert!((out.cumulative_privacy.delta() - 0.1 * round as f64).abs() < 1e-12);
        }
        assert_eq!(campaign.rounds_run(), 3);
    }

    #[test]
    fn streaming_truths_track_batches() {
        let mut campaign = new_campaign(40);
        let mut rng = dptd_stats::seeded_rng(991);
        for round in 0..4 {
            let b = batch(40, 6, 2000 + round);
            let out = campaign.run_round(&b.observations, &mut rng).unwrap();
            let err = dptd_stats::summary::mae(&out.streaming_truths, &b.ground_truths).unwrap();
            assert!(err < 0.5, "round {round} streaming err {err}");
            // The protocol's own per-round aggregate should agree with the
            // streaming estimate to within the noise scale.
            let gap = dptd_stats::summary::mae(&out.streaming_truths, &out.outcome.truths).unwrap();
            assert!(gap < 0.5, "round {round} streaming vs round gap {gap}");
        }
    }

    #[test]
    fn weights_available_after_rounds() {
        let mut campaign = new_campaign(15);
        let mut rng = dptd_stats::seeded_rng(997);
        let b = batch(15, 5, 3000);
        campaign.run_round(&b.observations, &mut rng).unwrap();
        assert_eq!(campaign.weights().len(), 15);
        assert!(campaign.weights().iter().all(|w| w.is_finite()));
    }

    use dptd_core::roles::PerturbedReport;

    fn stamped(epoch: u64, user: usize, sent_at_us: u64, v: f64) -> StampedReport {
        StampedReport {
            epoch,
            sent_at_us,
            report: PerturbedReport {
                user,
                values: vec![(0, v)],
            },
        }
    }

    #[test]
    fn sim_backend_applies_deadline_then_dedup() {
        let mut backend = SimBackend::new(3, Loss::Squared).unwrap();
        let out = backend
            .run_round(RoundInput {
                epoch: 0,
                num_objects: 1,
                deadline_us: 100,
                reports: vec![
                    stamped(0, 0, 50, 1.0),
                    stamped(0, 0, 60, 9.0),  // duplicate: first wins
                    stamped(0, 1, 101, 2.0), // late
                    stamped(0, 1, 100, 2.0), // exactly at deadline: on time
                    stamped(0, 2, 10, 3.0),
                ],
            })
            .unwrap();
        assert_eq!(out.accepted_users, vec![0, 1, 2]);
        assert_eq!(out.duplicates_discarded, 1);
        assert_eq!(out.late_dropped, 1);
        assert!(out.truths[0] > 1.0 && out.truths[0] < 3.0);
        assert_eq!(out.weights.len(), 3);
    }

    #[test]
    fn sim_backend_rejects_mixed_epoch_stream() {
        let mut backend = SimBackend::new(2, Loss::Squared).unwrap();
        let err = backend
            .run_round(RoundInput {
                epoch: 3,
                num_objects: 1,
                deadline_us: 100,
                reports: vec![stamped(3, 0, 10, 1.0), stamped(2, 1, 11, 2.0)],
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::InvalidParameter { .. }));
    }

    #[test]
    fn sim_backend_rejects_out_of_population_user() {
        let mut backend = SimBackend::new(2, Loss::Squared).unwrap();
        let err = backend
            .run_round(RoundInput {
                epoch: 0,
                num_objects: 1,
                deadline_us: 100,
                reports: vec![stamped(0, 7, 10, 1.0)],
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::InvalidParameter { .. }));
    }

    fn driver_config(per_round: (f64, f64), budget: (f64, f64)) -> CampaignConfig {
        CampaignConfig {
            num_objects: 1,
            deadline_us: 1_000,
            per_round_loss: PrivacyLoss::new(per_round.0, per_round.1).unwrap(),
            budget: PrivacyLoss::new(budget.0, budget.1).unwrap(),
        }
    }

    #[test]
    fn driver_debits_only_accepted_reports() {
        let config = driver_config((0.5, 0.0), (1.0, 0.0));
        let mut driver =
            CampaignDriver::new(SimBackend::new(3, Loss::Squared).unwrap(), config).unwrap();
        // User 1 is late, user 2 sends a duplicate: only accepted reports
        // debit, and the duplicate debits once.
        let round = driver
            .run_round(
                0,
                vec![
                    stamped(0, 0, 10, 1.0),
                    stamped(0, 1, 2_000, 9.0), // late: no debit
                    stamped(0, 2, 20, 2.0),
                    stamped(0, 2, 30, 2.0), // duplicate: single debit
                ],
            )
            .unwrap();
        assert_eq!(round.accepted, 2);
        assert_eq!(round.late_dropped, 1);
        assert_eq!(round.duplicates_discarded, 1);
        let ledger = driver.accountant();
        assert_eq!(ledger.rounds_debited(0), 1);
        assert_eq!(ledger.rounds_debited(1), 0);
        assert_eq!(ledger.rounds_debited(2), 1);
        assert!((round.max_spent.epsilon() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn driver_refuses_exhausted_users() {
        let config = driver_config((1.0, 0.0), (1.0, 0.0)); // one round each
        let mut driver =
            CampaignDriver::new(SimBackend::new(2, Loss::Squared).unwrap(), config).unwrap();
        let r0 = driver
            .run_round(0, vec![stamped(0, 0, 1, 1.0), stamped(0, 1, 2, 2.0)])
            .unwrap();
        assert_eq!(r0.accepted, 2);
        assert_eq!(r0.refused_users, 0);
        // Both users exhausted: their reports are withheld, the round
        // starves and errors, and nothing further is debited.
        let err = driver
            .run_round(1, vec![stamped(1, 0, 1, 1.0), stamped(1, 1, 2, 2.0)])
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Core(_)), "{err:?}");
        assert_eq!(driver.accountant().rounds_debited(0), 1);
        assert_eq!(driver.accountant().exhausted_count(), 2);
    }

    #[test]
    fn driver_resume_restores_ledger_and_round_count() {
        let config = driver_config((0.5, 0.0), (1.0, 0.0));
        let mut original =
            CampaignDriver::new(SimBackend::new(2, Loss::Squared).unwrap(), config).unwrap();
        original
            .run_round(0, vec![stamped(0, 0, 1, 1.0), stamped(0, 1, 2, 2.0)])
            .unwrap();

        let resumed = CampaignDriver::resume(
            SimBackend::new(2, Loss::Squared).unwrap(),
            config,
            original.accountant().debits_by_user().to_vec(),
            original.rounds_run(),
        )
        .unwrap();
        assert_eq!(resumed.accountant(), original.accountant());
        assert_eq!(resumed.rounds_run(), 1);

        // A snapshot sized for a different population is rejected.
        let err = CampaignDriver::resume(
            SimBackend::new(2, Loss::Squared).unwrap(),
            config,
            vec![0; 5],
            1,
        );
        assert!(err.is_err());
    }

    #[test]
    fn driver_validates_config() {
        let bad_objects = CampaignConfig {
            num_objects: 0,
            ..driver_config((0.5, 0.0), (1.0, 0.0))
        };
        assert!(
            CampaignDriver::new(SimBackend::new(2, Loss::Squared).unwrap(), bad_objects).is_err()
        );
        let bad_deadline = CampaignConfig {
            deadline_us: 0,
            ..driver_config((0.5, 0.0), (1.0, 0.0))
        };
        assert!(
            CampaignDriver::new(SimBackend::new(2, Loss::Squared).unwrap(), bad_deadline).is_err()
        );
    }
}
