//! Deterministic discrete-event simulation of the crowd-sensing round.
//!
//! Events are delivered in `(time, sequence)` order from a binary heap, so
//! a fixed RNG seed reproduces the round exactly — message for message.
//! The network model injects per-message latency and loss; the round model
//! adds straggler users and duplicate submissions, which the server must
//! handle (deadline cut-off and de-duplication respectively).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use rand::Rng;

use dptd_core::roles::{HyperParameter, PerturbedReport, Server, TaskAssignment, User};
use dptd_truth::{ObservationMatrix, TruthDiscoverer};

use crate::dedup::DedupFilter;
use crate::message::{Envelope, Message, NodeId};
use crate::ProtocolError;

/// Network latency/loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Minimum one-way latency in microseconds.
    pub min_latency_us: u64,
    /// Maximum one-way latency in microseconds.
    pub max_latency_us: u64,
    /// Probability that any single message is silently dropped.
    pub drop_probability: f64,
}

impl Default for NetworkConfig {
    /// 5–50 ms latency, no loss.
    fn default() -> Self {
        Self {
            min_latency_us: 5_000,
            max_latency_us: 50_000,
            drop_probability: 0.0,
        }
    }
}

impl NetworkConfig {
    fn validate(&self) -> Result<(), ProtocolError> {
        if self.max_latency_us < self.min_latency_us {
            return Err(ProtocolError::InvalidParameter {
                name: "max_latency_us",
                value: self.max_latency_us as f64,
                constraint: "must be >= min_latency_us",
            });
        }
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(ProtocolError::InvalidParameter {
                name: "drop_probability",
                value: self.drop_probability,
                constraint: "must be in [0, 1]",
            });
        }
        Ok(())
    }

    fn sample_latency<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.max_latency_us == self.min_latency_us {
            self.min_latency_us
        } else {
            rng.gen_range(self.min_latency_us..=self.max_latency_us)
        }
    }

    fn delivers<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.drop_probability == 0.0 || rng.gen::<f64>() >= self.drop_probability
    }
}

/// Per-round behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundConfig {
    /// Submission deadline (µs after round start). Reports arriving later
    /// are discarded by the server.
    pub deadline_us: u64,
    /// Per-user processing time to complete the micro-tasks, sampled
    /// uniformly up to this bound (µs).
    pub max_think_time_us: u64,
    /// Fraction of users that are stragglers (their think time is
    /// multiplied by 10; with a tight deadline they miss it).
    pub straggler_fraction: f64,
    /// Probability a user sends its report twice (duplicate delivery; the
    /// server must de-duplicate).
    pub duplicate_probability: f64,
}

impl Default for RoundConfig {
    /// 5 s deadline, ≤200 ms think time, no stragglers or duplicates.
    fn default() -> Self {
        Self {
            deadline_us: 5_000_000,
            max_think_time_us: 200_000,
            straggler_fraction: 0.0,
            duplicate_probability: 0.0,
        }
    }
}

impl RoundConfig {
    fn validate(&self) -> Result<(), ProtocolError> {
        for (name, v) in [
            ("straggler_fraction", self.straggler_fraction),
            ("duplicate_probability", self.duplicate_probability),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ProtocolError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be in [0, 1]",
                });
            }
        }
        if self.deadline_us == 0 {
            return Err(ProtocolError::InvalidParameter {
                name: "deadline_us",
                value: 0.0,
                constraint: "must be positive",
            });
        }
        Ok(())
    }
}

/// What happened in one simulated round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Aggregated truths (one per object).
    pub truths: Vec<f64>,
    /// Per-participant weights, aligned with `participants`.
    pub weights: Vec<f64>,
    /// The surviving perturbed reports, in arrival order — what the
    /// server actually aggregated (consumed by multi-round campaigns).
    pub reports: Vec<PerturbedReport>,
    /// User ids whose reports were aggregated, in arrival order.
    pub participants: Vec<usize>,
    /// User ids whose reports never arrived (dropped or late).
    pub missing: Vec<usize>,
    /// Simulated time at which the server finished aggregation (µs).
    pub finished_at_us: u64,
    /// Total messages the network carried (including drops).
    pub messages_sent: usize,
    /// Messages lost to the network model.
    pub messages_dropped: usize,
    /// Duplicate submissions the server discarded.
    pub duplicates_discarded: usize,
}

/// A scheduled delivery, ordered by `(time, sequence)` so the event loop
/// is deterministic. The envelope payload does not participate in the
/// ordering (it contains floats).
#[derive(Debug, Clone)]
struct QueuedEvent {
    at: u64,
    seq: u64,
    env: Envelope,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event harness: one server, `S` simulated users.
#[derive(Debug, Clone)]
pub struct SimHarness<A> {
    algorithm: A,
    lambda2: f64,
    network: NetworkConfig,
}

impl<A: TruthDiscoverer + Clone> SimHarness<A> {
    /// Create a harness with the given aggregation algorithm, noise
    /// hyper-parameter, and network model.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] for an invalid network
    /// model or non-positive `λ₂`.
    pub fn new(algorithm: A, lambda2: f64, network: NetworkConfig) -> Result<Self, ProtocolError> {
        network.validate()?;
        if !(lambda2.is_finite() && lambda2 > 0.0) {
            return Err(ProtocolError::InvalidParameter {
                name: "lambda2",
                value: lambda2,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self {
            algorithm,
            lambda2,
            network,
        })
    }

    /// Run one full round over the users' raw observations.
    ///
    /// Row `s` of `raw_data` holds user `s`'s ground measurements; the
    /// simulated client perturbs them (Algorithm 2 steps 2–5) before
    /// transmission.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InsufficientCoverage`] if, after drops and
    /// deadline cut-off, some object has no surviving report, and
    /// propagates aggregation errors.
    pub fn run_round<R: Rng + ?Sized>(
        &self,
        raw_data: &ObservationMatrix,
        round: &RoundConfig,
        rng: &mut R,
    ) -> Result<RoundOutcome, ProtocolError> {
        round.validate()?;
        let num_users = raw_data.num_users();
        let server = Server::new(self.algorithm.clone(), self.lambda2, raw_data.num_objects())?;
        let hyper: HyperParameter = server.announce();

        let mut queue: BinaryHeap<Reverse<QueuedEvent>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut messages_sent = 0usize;
        let mut messages_dropped = 0usize;

        let push = |queue: &mut BinaryHeap<Reverse<QueuedEvent>>, env: Envelope, seq: &mut u64| {
            *seq += 1;
            queue.push(Reverse(QueuedEvent {
                at: env.deliver_at_us,
                seq: *seq,
                env,
            }));
        };

        // t = 0: server broadcasts assignments.
        for s in 0..num_users {
            messages_sent += 1;
            if !self.network.delivers(rng) {
                messages_dropped += 1;
                continue;
            }
            let latency = self.network.sample_latency(rng);
            let tasks = TaskAssignment {
                objects: raw_data.observations_of_user(s).map(|(n, _)| n).collect(),
            };
            push(
                &mut queue,
                Envelope {
                    from: NodeId::Server,
                    to: NodeId::User(s),
                    deliver_at_us: latency,
                    payload: Message::Assign {
                        tasks,
                        hyper,
                        deadline_us: round.deadline_us,
                    },
                },
                &mut seq,
            );
        }

        // Event loop. De-duplication is first-wins, shared with the
        // streaming engine through [`crate::dedup::DedupFilter`].
        let mut dedup = DedupFilter::new(num_users);
        let mut clock = 0u64;

        while let Some(Reverse(QueuedEvent { at, env, .. })) = queue.pop() {
            clock = clock.max(at);
            match (env.to, env.payload) {
                (
                    NodeId::User(s),
                    Message::Assign {
                        tasks,
                        hyper,
                        deadline_us,
                    },
                ) => {
                    // The client performs its micro-tasks, perturbs
                    // locally, and replies.
                    let mut think = if round.max_think_time_us == 0 {
                        0
                    } else {
                        rng.gen_range(0..=round.max_think_time_us)
                    };
                    if (s as f64) < round.straggler_fraction * num_users as f64 {
                        think = think.saturating_mul(10);
                    }
                    let measurements: Vec<(usize, f64)> = tasks
                        .objects
                        .iter()
                        .map(|&n| (n, raw_data.value(s, n).expect("assigned => observed")))
                        .collect();
                    let report = User::new(s).respond(&measurements, hyper, rng)?;
                    let send_count = if rng.gen::<f64>() < round.duplicate_probability {
                        2
                    } else {
                        1
                    };
                    for _ in 0..send_count {
                        messages_sent += 1;
                        if !self.network.delivers(rng) {
                            messages_dropped += 1;
                            continue;
                        }
                        let latency = self.network.sample_latency(rng);
                        push(
                            &mut queue,
                            Envelope {
                                from: NodeId::User(s),
                                to: NodeId::Server,
                                deliver_at_us: at + think + latency,
                                payload: Message::Submit(report.clone()),
                            },
                            &mut seq,
                        );
                    }
                    let _ = deadline_us;
                }
                (NodeId::Server, Message::Submit(report)) => {
                    if at > round.deadline_us {
                        continue; // late: discarded
                    }
                    let slot = report.user;
                    dedup.accept(slot, report);
                }
                _ => {}
            }
        }

        let arrival_order = dedup.participants().to_vec();
        let missing = dedup.missing();
        let duplicates_discarded = dedup.duplicates_discarded();
        let reports = dedup.into_reports();

        // Coverage check before aggregation so the caller gets a protocol
        // level error (which object starved) rather than a matrix error.
        let mut covered = vec![false; raw_data.num_objects()];
        for r in &reports {
            for &(n, _) in &r.values {
                covered[n] = true;
            }
        }
        if let Some(object) = covered.iter().position(|&c| !c) {
            return Err(ProtocolError::InsufficientCoverage {
                object,
                reports_received: reports.len(),
            });
        }

        let result = server.aggregate(&reports)?;
        Ok(RoundOutcome {
            truths: result.truths,
            weights: result.weights,
            reports,
            participants: arrival_order,
            missing,
            finished_at_us: clock.max(round.deadline_us),
            messages_sent,
            messages_dropped,
            duplicates_discarded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_truth::crh::Crh;

    fn raw_data(users: usize, objects: usize) -> ObservationMatrix {
        let mut rng = dptd_stats::seeded_rng(401);
        dptd_sensing::synthetic::SyntheticConfig {
            num_users: users,
            num_objects: objects,
            ..Default::default()
        }
        .generate(&mut rng)
        .unwrap()
        .observations
    }

    #[test]
    fn config_validation() {
        let bad_net = NetworkConfig {
            min_latency_us: 10,
            max_latency_us: 5,
            drop_probability: 0.0,
        };
        assert!(SimHarness::new(Crh::default(), 1.0, bad_net).is_err());
        assert!(SimHarness::new(Crh::default(), 0.0, NetworkConfig::default()).is_err());

        let h = SimHarness::new(Crh::default(), 1.0, NetworkConfig::default()).unwrap();
        let bad_round = RoundConfig {
            deadline_us: 0,
            ..RoundConfig::default()
        };
        let mut rng = dptd_stats::seeded_rng(409);
        assert!(h.run_round(&raw_data(3, 2), &bad_round, &mut rng).is_err());
    }

    #[test]
    fn lossless_round_collects_everyone() {
        let h = SimHarness::new(Crh::default(), 100.0, NetworkConfig::default()).unwrap();
        let mut rng = dptd_stats::seeded_rng(419);
        let data = raw_data(15, 4);
        let out = h
            .run_round(&data, &RoundConfig::default(), &mut rng)
            .unwrap();
        assert_eq!(out.participants.len(), 15);
        assert!(out.missing.is_empty());
        assert_eq!(out.truths.len(), 4);
        assert_eq!(out.messages_dropped, 0);
        // 15 assigns + 15 submits.
        assert_eq!(out.messages_sent, 30);
    }

    #[test]
    fn determinism_under_seed() {
        let h = SimHarness::new(Crh::default(), 2.0, NetworkConfig::default()).unwrap();
        let data = raw_data(10, 3);
        let a = h
            .run_round(
                &data,
                &RoundConfig::default(),
                &mut dptd_stats::seeded_rng(421),
            )
            .unwrap();
        let b = h
            .run_round(
                &data,
                &RoundConfig::default(),
                &mut dptd_stats::seeded_rng(421),
            )
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn drops_shrink_participation_but_round_succeeds() {
        let net = NetworkConfig {
            drop_probability: 0.3,
            ..NetworkConfig::default()
        };
        let h = SimHarness::new(Crh::default(), 100.0, net).unwrap();
        let mut rng = dptd_stats::seeded_rng(431);
        let data = raw_data(60, 5);
        let out = h
            .run_round(&data, &RoundConfig::default(), &mut rng)
            .unwrap();
        assert!(out.messages_dropped > 0);
        assert!(!out.missing.is_empty());
        assert!(out.participants.len() < 60);
        assert_eq!(out.truths.len(), 5);
    }

    #[test]
    fn stragglers_miss_tight_deadline() {
        let round = RoundConfig {
            // An honest user's worst case is assign latency (≤50ms) + think
            // (≤200ms) + submit latency (≤50ms) = 300ms, so with a 320ms
            // deadline only 10x-think stragglers can miss.
            deadline_us: 320_000,
            straggler_fraction: 0.2,
            ..RoundConfig::default()
        };
        let h = SimHarness::new(Crh::default(), 100.0, NetworkConfig::default()).unwrap();
        let mut rng = dptd_stats::seeded_rng(433);
        let data = raw_data(50, 4);
        let out = h.run_round(&data, &round, &mut rng).unwrap();
        assert!(
            !out.missing.is_empty(),
            "some stragglers should miss the deadline"
        );
        // Stragglers are users 0..10 by construction.
        assert!(out.missing.iter().all(|&s| s < 10));
    }

    #[test]
    fn duplicates_are_discarded() {
        let round = RoundConfig {
            duplicate_probability: 1.0,
            ..RoundConfig::default()
        };
        let h = SimHarness::new(Crh::default(), 100.0, NetworkConfig::default()).unwrap();
        let mut rng = dptd_stats::seeded_rng(439);
        let data = raw_data(8, 3);
        let out = h.run_round(&data, &round, &mut rng).unwrap();
        assert_eq!(out.participants.len(), 8);
        assert_eq!(out.duplicates_discarded, 8);
    }

    #[test]
    fn total_loss_reports_starved_object() {
        let net = NetworkConfig {
            drop_probability: 1.0,
            ..NetworkConfig::default()
        };
        let h = SimHarness::new(Crh::default(), 1.0, net).unwrap();
        let mut rng = dptd_stats::seeded_rng(443);
        let err = h
            .run_round(&raw_data(5, 2), &RoundConfig::default(), &mut rng)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::InsufficientCoverage { .. }));
    }

    #[test]
    fn aggregated_truths_track_raw_aggregates_under_small_noise() {
        let h = SimHarness::new(Crh::default(), 1e7, NetworkConfig::default()).unwrap();
        let mut rng = dptd_stats::seeded_rng(449);
        let data = raw_data(25, 6);
        let out = h
            .run_round(&data, &RoundConfig::default(), &mut rng)
            .unwrap();
        let direct = Crh::default().discover(&data).unwrap();
        let gap = dptd_stats::summary::mae(&out.truths, &direct.truths).unwrap();
        assert!(gap < 0.01, "protocol vs direct gap {gap}");
    }
}
