//! Multi-threaded protocol runtime on crossbeam channels.
//!
//! One OS thread per user, all submitting concurrently through an
//! unbounded channel to a collecting server with a wall-clock deadline.
//! This demonstrates the paper's deployment claim under real concurrency:
//! users never synchronise with each other (no barriers, no shared state
//! beyond the submission channel) and the whole round is a single
//! broadcast + gather.

use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};

use dptd_core::roles::{HyperParameter, PerturbedReport, Server, User};
use dptd_truth::{ObservationMatrix, TruthDiscoverer};

use crate::ProtocolError;

/// Configuration for the threaded round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadedConfig {
    /// Wall-clock deadline for collecting reports.
    pub deadline: Duration,
    /// Upper bound on the artificial per-user work delay (simulating
    /// sensing time); each user sleeps a uniformly-random slice of this.
    pub max_work_delay: Duration,
    /// RNG seed; each user derives an independent stream from it.
    pub seed: u64,
}

impl Default for ThreadedConfig {
    /// 2 s deadline, ≤5 ms simulated work, seed 0.
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(2),
            max_work_delay: Duration::from_millis(5),
            seed: 0,
        }
    }
}

/// Outcome of a threaded round.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedOutcome {
    /// Aggregated truths.
    pub truths: Vec<f64>,
    /// Number of reports that arrived before the deadline.
    pub reports_collected: usize,
    /// Wall-clock time from broadcast to aggregation completion.
    pub elapsed: Duration,
}

/// Run one round with a real thread per user.
///
/// Row `s` of `raw_data` is user `s`'s raw measurements; each user thread
/// perturbs locally (Algorithm 2) and submits through a channel. The
/// server aggregates whatever arrived by the deadline.
///
/// # Errors
///
/// Returns [`ProtocolError::InsufficientCoverage`] if the surviving
/// reports do not cover every object, [`ProtocolError::WorkerFailed`] if a
/// user thread dies, and propagates aggregation errors.
///
/// # Example
///
/// ```
/// use dptd_protocol::runtime::{run_threaded_round, ThreadedConfig};
/// use dptd_truth::crh::Crh;
///
/// # fn main() -> Result<(), dptd_protocol::ProtocolError> {
/// let mut rng = dptd_stats::seeded_rng(3);
/// let data = dptd_sensing::synthetic::SyntheticConfig {
///     num_users: 8,
///     num_objects: 3,
///     ..Default::default()
/// }
/// .generate(&mut rng)
/// .map_err(dptd_core::CoreError::from)?;
///
/// let out = run_threaded_round(
///     Crh::default(),
///     5.0,
///     &data.observations,
///     &ThreadedConfig::default(),
/// )?;
/// assert_eq!(out.truths.len(), 3);
/// assert_eq!(out.reports_collected, 8);
/// # Ok(())
/// # }
/// ```
pub fn run_threaded_round<A>(
    algorithm: A,
    lambda2: f64,
    raw_data: &ObservationMatrix,
    config: &ThreadedConfig,
) -> Result<ThreadedOutcome, ProtocolError>
where
    A: TruthDiscoverer + Send + Clone + 'static,
{
    let num_users = raw_data.num_users();
    let server = Server::new(algorithm, lambda2, raw_data.num_objects())?;
    let hyper: HyperParameter = server.announce();

    let (tx, rx) = unbounded::<PerturbedReport>();
    let started = Instant::now();

    // Shared audit log of user-side failures (none expected; a user thread
    // that fails to build its report records its id here).
    let failures: Mutex<Vec<usize>> = Mutex::new(Vec::new());

    let collected: Vec<PerturbedReport> = thread::scope(|scope| {
        for s in 0..num_users {
            let tx = tx.clone();
            let failures = &failures;
            let measurements: Vec<(usize, f64)> = raw_data.observations_of_user(s).collect();
            let max_delay = config.max_work_delay;
            let seed = config.seed;
            scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                if !max_delay.is_zero() {
                    let nanos = rng.gen_range(0..max_delay.as_nanos().max(1)) as u64;
                    thread::sleep(Duration::from_nanos(nanos));
                }
                match User::new(s).respond(&measurements, hyper, &mut rng) {
                    Ok(report) => {
                        // A closed channel means the deadline passed; the
                        // report is simply late, not an error.
                        let _ = tx.send(report);
                    }
                    Err(_) => failures.lock().push(s),
                }
            });
        }
        drop(tx);

        // Collect until deadline or all senders done.
        let mut reports = Vec::with_capacity(num_users);
        let deadline = started + config.deadline;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(r) => reports.push(r),
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => break,
            }
        }
        reports
    });

    if let Some(&user) = failures.lock().first() {
        return Err(ProtocolError::WorkerFailed { user });
    }

    // Coverage check (same contract as the simulator).
    let mut covered = vec![false; raw_data.num_objects()];
    for r in &collected {
        for &(n, _) in &r.values {
            covered[n] = true;
        }
    }
    if let Some(object) = covered.iter().position(|&c| !c) {
        return Err(ProtocolError::InsufficientCoverage {
            object,
            reports_received: collected.len(),
        });
    }

    let result = server.aggregate(&collected)?;
    Ok(ThreadedOutcome {
        truths: result.truths,
        reports_collected: collected.len(),
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_truth::crh::Crh;

    fn raw_data(users: usize, objects: usize) -> ObservationMatrix {
        let mut rng = dptd_stats::seeded_rng(457);
        dptd_sensing::synthetic::SyntheticConfig {
            num_users: users,
            num_objects: objects,
            ..Default::default()
        }
        .generate(&mut rng)
        .unwrap()
        .observations
    }

    #[test]
    fn collects_all_users_under_generous_deadline() {
        let out = run_threaded_round(
            Crh::default(),
            10.0,
            &raw_data(16, 4),
            &ThreadedConfig::default(),
        )
        .unwrap();
        assert_eq!(out.reports_collected, 16);
        assert_eq!(out.truths.len(), 4);
    }

    #[test]
    fn tiny_deadline_starves_coverage() {
        let cfg = ThreadedConfig {
            deadline: Duration::from_nanos(1),
            max_work_delay: Duration::from_millis(50),
            seed: 1,
        };
        let err = run_threaded_round(Crh::default(), 1.0, &raw_data(6, 2), &cfg).unwrap_err();
        assert!(matches!(err, ProtocolError::InsufficientCoverage { .. }));
    }

    #[test]
    fn threaded_matches_direct_under_small_noise() {
        let data = raw_data(20, 5);
        let out = run_threaded_round(
            Crh::default(),
            1e7,
            &data,
            &ThreadedConfig {
                max_work_delay: Duration::ZERO,
                ..ThreadedConfig::default()
            },
        )
        .unwrap();
        let direct = Crh::default().discover(&data).unwrap();
        let gap = dptd_stats::summary::mae(&out.truths, &direct.truths).unwrap();
        assert!(gap < 0.01, "threaded vs direct gap {gap}");
    }

    #[test]
    fn concurrent_rounds_are_independent() {
        // Two rounds on different data in parallel threads — no shared
        // mutable state, results uncorrupted.
        let d1 = raw_data(10, 3);
        let d2 = raw_data(12, 4);
        let (r1, r2) = thread::scope(|s| {
            let h1 = s.spawn(|| {
                run_threaded_round(Crh::default(), 5.0, &d1, &ThreadedConfig::default())
            });
            let h2 = s.spawn(|| {
                run_threaded_round(Crh::default(), 5.0, &d2, &ThreadedConfig::default())
            });
            (h1.join().unwrap(), h2.join().unwrap())
        });
        assert_eq!(r1.unwrap().truths.len(), 3);
        assert_eq!(r2.unwrap().truths.len(), 4);
    }
}
