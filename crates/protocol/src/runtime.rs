//! Multi-threaded protocol runtime on crossbeam channels.
//!
//! Users submit concurrently through an unbounded channel to a collecting
//! server with a wall-clock deadline. Submission runs on a **capped
//! [`WorkerPool`]** (by default one worker per hardware thread) rather
//! than one OS thread per user, so a million-user round no longer
//! exhausts OS threads; each worker drives a contiguous block of users,
//! and every user still derives an independent RNG stream, so reports are
//! identical to the thread-per-user original. This demonstrates the
//! paper's deployment claim under real concurrency: users never
//! synchronise with each other (no barriers, no shared state beyond the
//! submission channel) and the whole round is a single broadcast + gather.

use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};

use dptd_core::roles::{HyperParameter, PerturbedReport, Server, User};
use dptd_truth::{ObservationMatrix, TruthDiscoverer};

use crate::pool::WorkerPool;
use crate::ProtocolError;

/// Configuration for the threaded round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadedConfig {
    /// Wall-clock deadline for collecting reports.
    pub deadline: Duration,
    /// Upper bound on the artificial per-user work delay (simulating
    /// sensing time); each user's submission is scheduled a
    /// uniformly-random slice of this after round start. Delays overlap
    /// across users (as on real devices), so a round's wall time stays
    /// ~`max_work_delay` regardless of population or worker count.
    pub max_work_delay: Duration,
    /// RNG seed; each user derives an independent stream from it.
    pub seed: u64,
    /// Submission worker threads; `0` means one per hardware thread.
    pub workers: usize,
}

impl Default for ThreadedConfig {
    /// 2 s deadline, ≤5 ms simulated work, seed 0, hardware-sized pool.
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(2),
            max_work_delay: Duration::from_millis(5),
            seed: 0,
            workers: 0,
        }
    }
}

/// Outcome of a threaded round.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedOutcome {
    /// Aggregated truths.
    pub truths: Vec<f64>,
    /// Number of reports that arrived before the deadline.
    pub reports_collected: usize,
    /// Wall-clock time from broadcast to aggregation completion.
    pub elapsed: Duration,
}

/// Run one round over a capped worker pool.
///
/// Row `s` of `raw_data` is user `s`'s raw measurements; each simulated
/// user perturbs locally (Algorithm 2) and submits through a channel. The
/// server aggregates whatever arrived by the deadline.
///
/// # Errors
///
/// Returns [`ProtocolError::InsufficientCoverage`] if the surviving
/// reports do not cover every object, [`ProtocolError::WorkerFailed`] if a
/// user thread dies, and propagates aggregation errors.
///
/// # Example
///
/// ```
/// use dptd_protocol::runtime::{run_threaded_round, ThreadedConfig};
/// use dptd_truth::crh::Crh;
///
/// # fn main() -> Result<(), dptd_protocol::ProtocolError> {
/// let mut rng = dptd_stats::seeded_rng(3);
/// let data = dptd_sensing::synthetic::SyntheticConfig {
///     num_users: 8,
///     num_objects: 3,
///     ..Default::default()
/// }
/// .generate(&mut rng)
/// .map_err(dptd_core::CoreError::from)?;
///
/// let out = run_threaded_round(
///     Crh::default(),
///     5.0,
///     &data.observations,
///     &ThreadedConfig::default(),
/// )?;
/// assert_eq!(out.truths.len(), 3);
/// assert_eq!(out.reports_collected, 8);
/// # Ok(())
/// # }
/// ```
pub fn run_threaded_round<A>(
    algorithm: A,
    lambda2: f64,
    raw_data: &ObservationMatrix,
    config: &ThreadedConfig,
) -> Result<ThreadedOutcome, ProtocolError>
where
    A: TruthDiscoverer + Send + Clone + 'static,
{
    let num_users = raw_data.num_users();
    let server = Server::new(algorithm, lambda2, raw_data.num_objects())?;
    let hyper: HyperParameter = server.announce();

    let (tx, rx) = unbounded::<PerturbedReport>();
    let started = Instant::now();

    // Shared audit log of user-side failures (none expected; a user task
    // that fails to build its report records its id here).
    let failures: Mutex<Vec<usize>> = Mutex::new(Vec::new());

    let pool = if config.workers == 0 {
        WorkerPool::default()
    } else {
        WorkerPool::new(config.workers)
    };

    let collected: Vec<PerturbedReport> = thread::scope(|scope| {
        // Collector runs beside the pool; it stops at the deadline or when
        // every submission worker has finished and dropped the sender.
        let deadline = started + config.deadline;
        let collector = scope.spawn(move || {
            let mut reports = Vec::with_capacity(num_users);
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(r) => reports.push(r),
                    Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => break,
                }
            }
            reports
        });

        {
            // Move `tx` into this block so it drops (disconnecting the
            // collector) as soon as every user has been driven.
            let tx = tx;
            let failures = &failures;
            let max_delay = config.max_work_delay;
            let seed = config.seed;
            pool.for_each_index(num_users, |s| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                if !max_delay.is_zero() {
                    // The delay models device-side sensing time, which
                    // overlaps across real users. Anchoring the target to
                    // the round start (rather than sleeping serially per
                    // user) keeps a worker's total sleep bounded by
                    // max_delay however many users it drives, so a capped
                    // pool reproduces the thread-per-user wall-clock
                    // behaviour.
                    let nanos = rng.gen_range(0..max_delay.as_nanos().max(1)) as u64;
                    let target = started + Duration::from_nanos(nanos);
                    let now = Instant::now();
                    if target > now {
                        thread::sleep(target - now);
                    }
                }
                let measurements: Vec<(usize, f64)> = raw_data.observations_of_user(s).collect();
                match User::new(s).respond(&measurements, hyper, &mut rng) {
                    Ok(report) => {
                        // A closed channel means the deadline passed; the
                        // report is simply late, not an error.
                        let _ = tx.send(report);
                    }
                    Err(_) => failures.lock().push(s),
                }
            });
        }

        collector.join().expect("collector thread panicked")
    });

    if let Some(&user) = failures.lock().first() {
        return Err(ProtocolError::WorkerFailed { user });
    }

    // Coverage check (same contract as the simulator).
    let mut covered = vec![false; raw_data.num_objects()];
    for r in &collected {
        for &(n, _) in &r.values {
            covered[n] = true;
        }
    }
    if let Some(object) = covered.iter().position(|&c| !c) {
        return Err(ProtocolError::InsufficientCoverage {
            object,
            reports_received: collected.len(),
        });
    }

    let result = server.aggregate(&collected)?;
    Ok(ThreadedOutcome {
        truths: result.truths,
        reports_collected: collected.len(),
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_truth::crh::Crh;

    fn raw_data(users: usize, objects: usize) -> ObservationMatrix {
        let mut rng = dptd_stats::seeded_rng(457);
        dptd_sensing::synthetic::SyntheticConfig {
            num_users: users,
            num_objects: objects,
            ..Default::default()
        }
        .generate(&mut rng)
        .unwrap()
        .observations
    }

    #[test]
    fn collects_all_users_under_generous_deadline() {
        let out = run_threaded_round(
            Crh::default(),
            10.0,
            &raw_data(16, 4),
            &ThreadedConfig::default(),
        )
        .unwrap();
        assert_eq!(out.reports_collected, 16);
        assert_eq!(out.truths.len(), 4);
    }

    #[test]
    fn tiny_deadline_starves_coverage() {
        let cfg = ThreadedConfig {
            deadline: Duration::from_nanos(1),
            max_work_delay: Duration::from_millis(50),
            seed: 1,
            ..ThreadedConfig::default()
        };
        let err = run_threaded_round(Crh::default(), 1.0, &raw_data(6, 2), &cfg).unwrap_err();
        assert!(matches!(err, ProtocolError::InsufficientCoverage { .. }));
    }

    #[test]
    fn threaded_matches_direct_under_small_noise() {
        let data = raw_data(20, 5);
        let out = run_threaded_round(
            Crh::default(),
            1e7,
            &data,
            &ThreadedConfig {
                max_work_delay: Duration::ZERO,
                ..ThreadedConfig::default()
            },
        )
        .unwrap();
        let direct = Crh::default().discover(&data).unwrap();
        let gap = dptd_stats::summary::mae(&out.truths, &direct.truths).unwrap();
        assert!(gap < 0.01, "threaded vs direct gap {gap}");
    }

    #[test]
    fn large_population_runs_on_capped_pool() {
        // 2000 users used to mean 2000 OS threads; the pool caps this at
        // the configured worker count while still collecting everyone.
        let out = run_threaded_round(
            Crh::default(),
            10.0,
            &raw_data(2000, 3),
            &ThreadedConfig {
                max_work_delay: Duration::ZERO,
                deadline: Duration::from_secs(30),
                workers: 4,
                ..ThreadedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.reports_collected, 2000);
        assert_eq!(out.truths.len(), 3);
    }

    #[test]
    fn explicit_worker_counts_reproduce_reports() {
        // The per-user RNG stream is independent of the pool shape, so
        // different worker counts aggregate the same report multiset.
        let data = raw_data(40, 4);
        let run = |workers| {
            run_threaded_round(
                Crh::default(),
                5.0,
                &data,
                &ThreadedConfig {
                    max_work_delay: Duration::ZERO,
                    workers,
                    ..ThreadedConfig::default()
                },
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(8);
        // Arrival order (and so the matrix row order) depends on thread
        // interleaving, which perturbs floating-point summation order;
        // the aggregates agree to well below any meaningful tolerance.
        let gap = dptd_stats::summary::mae(&a.truths, &b.truths).unwrap();
        assert!(gap < 1e-9, "worker-count-dependent truths: gap {gap}");
        assert_eq!(a.reports_collected, b.reports_collected);
    }

    #[test]
    fn concurrent_rounds_are_independent() {
        // Two rounds on different data in parallel threads — no shared
        // mutable state, results uncorrupted.
        let d1 = raw_data(10, 3);
        let d2 = raw_data(12, 4);
        let (r1, r2) = thread::scope(|s| {
            let h1 = s
                .spawn(|| run_threaded_round(Crh::default(), 5.0, &d1, &ThreadedConfig::default()));
            let h2 = s
                .spawn(|| run_threaded_round(Crh::default(), 5.0, &d2, &ThreadedConfig::default()));
            (h1.join().unwrap(), h2.join().unwrap())
        });
        assert_eq!(r1.unwrap().truths.len(), 3);
        assert_eq!(r2.unwrap().truths.len(), 4);
    }
}
