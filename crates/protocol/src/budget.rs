//! Per-user privacy budget accounting for multi-round campaigns.
//!
//! The paper's guarantee is per *report*: each perturbed submission costs
//! its user one `(ε, δ)` under Theorem 4.8, and multi-round participation
//! composes by basic composition. A campaign therefore needs a ledger:
//! every user starts with the same campaign budget, each **aggregated**
//! report debits one per-round loss, and a user whose next debit would
//! overshoot the budget refuses to participate further.
//!
//! Crucially, only reports the server actually aggregated are debited.
//! A report that was dropped as late, discarded as a duplicate of an
//! already-accepted one, or withheld by churn debits nothing: the ledger
//! tracks what entered the *aggregate*, and basic composition over the
//! accepted rounds is what the campaign reports as cumulative loss. This
//! is deliberately the aggregation-centric model — a stricter deployment
//! that distrusts even the transport would debit at transmission time
//! (every perturbed report leaving the device, accepted or not); with
//! the load generator's identical retransmissions the two models differ
//! only for late reports.

use dptd_ldp::PrivacyLoss;

use crate::ProtocolError;

/// Ledger of per-user privacy spend over a fixed population.
///
/// # Example
///
/// ```
/// use dptd_ldp::PrivacyLoss;
/// use dptd_protocol::budget::BudgetAccountant;
///
/// # fn main() -> Result<(), dptd_protocol::ProtocolError> {
/// let per_round = PrivacyLoss::new(0.5, 0.1).map_err(dptd_core::CoreError::from)?;
/// let budget = PrivacyLoss::new(1.0, 0.2).map_err(dptd_core::CoreError::from)?;
/// let mut ledger = BudgetAccountant::new(3, per_round, budget)?;
/// assert_eq!(ledger.affordable_rounds(), 2);
/// ledger.debit(0);
/// ledger.debit(0);
/// assert!(!ledger.can_spend(0)); // exhausted after two rounds
/// assert!(ledger.can_spend(1)); // untouched users keep their budget
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetAccountant {
    per_round: PrivacyLoss,
    budget: PrivacyLoss,
    rounds_debited: Vec<u32>,
}

impl BudgetAccountant {
    /// A fresh ledger: `num_users` users, each allowed to spend up to
    /// `budget` in steps of `per_round`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidParameter`] for an empty population
    /// or a budget that cannot afford even one round.
    pub fn new(
        num_users: usize,
        per_round: PrivacyLoss,
        budget: PrivacyLoss,
    ) -> Result<Self, ProtocolError> {
        if num_users == 0 {
            return Err(ProtocolError::InvalidParameter {
                name: "num_users",
                value: 0.0,
                constraint: "must be positive",
            });
        }
        if !per_round.satisfies(&budget) {
            return Err(ProtocolError::InvalidParameter {
                name: "budget",
                value: budget.epsilon(),
                constraint: "must afford at least one per-round loss",
            });
        }
        Ok(Self {
            per_round,
            budget,
            rounds_debited: vec![0; num_users],
        })
    }

    /// Rebuild a ledger from a persisted per-user debit snapshot — the
    /// write-ahead-log recovery path. The restored ledger is exactly the
    /// one that would result from replaying every recorded debit through
    /// [`BudgetAccountant::debit`].
    ///
    /// # Errors
    ///
    /// Everything [`BudgetAccountant::new`] rejects, plus
    /// [`ProtocolError::InvalidParameter`] if any user's recorded spend
    /// already overshoots the budget — a ledger the live accounting could
    /// never have produced, so the snapshot is corrupt, not resumable.
    pub fn resume(
        per_round: PrivacyLoss,
        budget: PrivacyLoss,
        rounds_debited: Vec<u32>,
    ) -> Result<Self, ProtocolError> {
        let mut ledger = Self::new(rounds_debited.len(), per_round, budget)?;
        for &debits in &rounds_debited {
            if !per_round.compose_k(debits).satisfies(&budget) {
                return Err(ProtocolError::InvalidParameter {
                    name: "rounds_debited",
                    value: debits as f64,
                    constraint: "a restored user spend must stay within the budget",
                });
            }
        }
        ledger.rounds_debited = rounds_debited;
        Ok(ledger)
    }

    /// The population size.
    pub fn num_users(&self) -> usize {
        self.rounds_debited.len()
    }

    /// The per-round `(ε, δ)` debit.
    pub fn per_round(&self) -> PrivacyLoss {
        self.per_round
    }

    /// The campaign-wide `(ε, δ)` ceiling.
    pub fn budget(&self) -> PrivacyLoss {
        self.budget
    }

    /// Rounds debited to `user` so far.
    ///
    /// # Panics
    ///
    /// Panics if `user` is outside the population.
    pub fn rounds_debited(&self, user: usize) -> u32 {
        self.rounds_debited[user]
    }

    /// `user`'s cumulative privacy loss (basic composition of its debits).
    ///
    /// # Panics
    ///
    /// Panics if `user` is outside the population.
    pub fn spent(&self, user: usize) -> PrivacyLoss {
        self.per_round.compose_k(self.rounds_debited[user])
    }

    /// Whether `user` can afford one more round without overshooting the
    /// budget. An exhausted user must refuse to submit.
    ///
    /// # Panics
    ///
    /// Panics if `user` is outside the population.
    pub fn can_spend(&self, user: usize) -> bool {
        self.per_round
            .compose_k(self.rounds_debited[user] + 1)
            .satisfies(&self.budget)
    }

    /// Debit one per-round loss to `user` (its report was aggregated).
    ///
    /// # Panics
    ///
    /// Panics if `user` is outside the population, or if the debit would
    /// push the user past the budget — callers must gate participation on
    /// [`BudgetAccountant::can_spend`] *before* letting a report reach the
    /// server, so an overshooting debit is an accounting bug, not a data
    /// condition.
    pub fn debit(&mut self, user: usize) {
        assert!(
            self.can_spend(user),
            "privacy accounting bug: user {user} debited past its budget"
        );
        self.rounds_debited[user] += 1;
    }

    /// How many rounds a fresh user can afford under this budget.
    /// `u32::MAX` means unbounded (a per-round loss no coordinate of
    /// which ever exhausts the budget — e.g. `ε = 0` with `δ` capped by a
    /// budget δ of 1).
    pub fn affordable_rounds(&self) -> u32 {
        // Closed-form candidate per coordinate, then a local fix-up
        // against the authoritative `can_spend` predicate so float slop
        // in the division can never disagree with round-by-round
        // accounting. δ composition saturates at 1.0, so a budget δ of
        // 1.0 never constrains.
        let coordinate = |per: f64, budget: f64, saturates: bool| -> u32 {
            if per <= 0.0 || saturates {
                u32::MAX
            } else {
                ((budget / per).floor().max(0.0)).min(f64::from(u32::MAX)) as u32
            }
        };
        let by_eps = coordinate(self.per_round.epsilon(), self.budget.epsilon(), false);
        let by_delta = coordinate(
            self.per_round.delta(),
            self.budget.delta(),
            self.budget.delta() >= 1.0,
        );
        let mut k = by_eps.min(by_delta);
        while k > 0 && !self.per_round.compose_k(k).satisfies(&self.budget) {
            k -= 1;
        }
        while k < u32::MAX && self.per_round.compose_k(k + 1).satisfies(&self.budget) {
            k += 1;
        }
        k
    }

    /// The serializable ledger snapshot: per-user debit counts in user
    /// order. Together with [`BudgetAccountant::per_round`] this is the
    /// ledger's whole state — what the engine's write-ahead log persists
    /// and [`BudgetAccountant::resume`] restores.
    pub fn debits_by_user(&self) -> &[u32] {
        &self.rounds_debited
    }

    /// Per-user cumulative privacy losses, in user order (basic
    /// composition of each user's debits).
    pub fn spent_by_user(&self) -> Vec<PrivacyLoss> {
        self.rounds_debited
            .iter()
            .map(|&k| self.per_round.compose_k(k))
            .collect()
    }

    /// The worst cumulative loss across the population.
    pub fn max_spent(&self) -> PrivacyLoss {
        let worst = self.rounds_debited.iter().copied().max().unwrap_or(0);
        self.per_round.compose_k(worst)
    }

    /// Number of users that can no longer afford a round.
    pub fn exhausted_count(&self) -> usize {
        (0..self.num_users())
            .filter(|&u| !self.can_spend(u))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss(eps: f64, delta: f64) -> PrivacyLoss {
        PrivacyLoss::new(eps, delta).unwrap()
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(BudgetAccountant::new(0, loss(0.1, 0.0), loss(1.0, 0.1)).is_err());
        // Budget below one round.
        assert!(BudgetAccountant::new(2, loss(1.0, 0.0), loss(0.5, 0.1)).is_err());
        assert!(BudgetAccountant::new(2, loss(0.1, 0.2), loss(1.0, 0.1)).is_err());
    }

    #[test]
    fn debits_accumulate_per_user() {
        let mut a = BudgetAccountant::new(2, loss(0.5, 0.05), loss(2.0, 0.2)).unwrap();
        assert_eq!(a.affordable_rounds(), 4);
        for _ in 0..3 {
            a.debit(0);
        }
        assert_eq!(a.rounds_debited(0), 3);
        assert_eq!(a.rounds_debited(1), 0);
        assert!((a.spent(0).epsilon() - 1.5).abs() < 1e-12);
        assert!(a.can_spend(0));
        a.debit(0);
        assert!(!a.can_spend(0));
        assert!(a.can_spend(1));
        assert_eq!(a.exhausted_count(), 1);
        assert!((a.max_spent().epsilon() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "privacy accounting bug")]
    fn overshooting_debit_panics() {
        let mut a = BudgetAccountant::new(1, loss(1.0, 0.0), loss(1.0, 0.0)).unwrap();
        a.debit(0);
        a.debit(0);
    }

    #[test]
    fn resume_restores_the_exact_ledger() {
        let mut live = BudgetAccountant::new(3, loss(0.5, 0.0), loss(2.0, 0.0)).unwrap();
        live.debit(0);
        live.debit(0);
        live.debit(2);
        let restored = BudgetAccountant::resume(
            live.per_round(),
            live.budget(),
            live.debits_by_user().to_vec(),
        )
        .unwrap();
        assert_eq!(restored, live);
        assert_eq!(restored.debits_by_user(), &[2, 0, 1]);
        let spent = restored.spent_by_user();
        assert!((spent[0].epsilon() - 1.0).abs() < 1e-12);
        assert!((spent[1].epsilon() - 0.0).abs() < 1e-12);
        assert!((spent[2].epsilon() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resume_rejects_an_overshooting_snapshot() {
        // 5 debits of ε=0.5 against a 2.0 budget could never have been
        // accounted live; the snapshot is corrupt.
        let err = BudgetAccountant::resume(loss(0.5, 0.0), loss(2.0, 0.0), vec![5, 0]);
        assert!(err.is_err());
        // An exactly-exhausted user is fine (the live path allows it).
        let ok = BudgetAccountant::resume(loss(0.5, 0.0), loss(2.0, 0.0), vec![4, 0]).unwrap();
        assert!(!ok.can_spend(0));
        assert!(ok.can_spend(1));
    }

    #[test]
    fn zero_loss_affords_unbounded_rounds() {
        let a = BudgetAccountant::new(1, loss(0.0, 0.0), loss(1.0, 0.1)).unwrap();
        assert_eq!(a.affordable_rounds(), u32::MAX);
    }

    #[test]
    fn saturated_delta_budget_never_constrains() {
        // δ composition caps at 1.0, so a budget δ of 1.0 with ε = 0 per
        // round is unbounded — and must resolve instantly, not by
        // counting to u32::MAX.
        let a = BudgetAccountant::new(1, loss(0.0, 0.02), loss(1.0, 1.0)).unwrap();
        assert_eq!(a.affordable_rounds(), u32::MAX);
        assert!(a.can_spend(0));
    }

    #[test]
    fn delta_coordinate_can_be_the_binding_one() {
        let a = BudgetAccountant::new(1, loss(0.0, 0.25), loss(1.0, 0.5)).unwrap();
        assert_eq!(a.affordable_rounds(), 2);
    }

    #[test]
    fn tiny_per_round_loss_resolves_quickly_and_consistently() {
        let a = BudgetAccountant::new(1, loss(1e-9, 0.0), loss(1.0, 0.5)).unwrap();
        let k = a.affordable_rounds();
        assert!(k >= 999_999_990, "{k}");
        // The closed form agrees with the round-by-round predicate.
        assert!(a.per_round().compose_k(k).satisfies(&a.budget()));
        assert!(!a.per_round().compose_k(k + 1).satisfies(&a.budget()));
    }
}
