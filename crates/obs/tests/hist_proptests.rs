//! Property tests for the observability primitives:
//!
//! 1. The log-linear histogram's bucket geometry is a total, monotone,
//!    self-consistent partition of `u64`: every value lands in-range,
//!    inside the `[floor(i), floor(i+1))` window its index claims, and
//!    larger values never map to smaller buckets.
//! 2. The lock-free `AtomicHistogram` and `Counter` absorb concurrent
//!    writers (1–8 threads) without losing or corrupting anything: the
//!    merged result is bit-identical to a single-threaded `Histogram`
//!    fed the same values.

use std::sync::Arc;

use proptest::prelude::*;

use dptd_obs::hist::{bucket_floor, bucket_index};
use dptd_obs::{AtomicHistogram, Counter, Histogram, NUM_BUCKETS};

/// Values spread across the histogram's whole dynamic range: the linear
/// region, every binary octave, and the saturating top.
fn latency_ns() -> impl Strategy<Value = u64> {
    (0u32..66, 0u64..u64::MAX).prop_map(|(class, raw)| match class {
        64 => raw % 4_096, // linear region
        65 => u64::MAX,    // saturating top
        shift => {
            // Inside the octave [2^shift, 2^(shift+1)).
            let lo = 1u64 << shift;
            lo + raw % lo.max(1)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bucket_geometry_is_total_monotone_and_self_consistent(v in latency_ns()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
        prop_assert!(bucket_floor(i) <= v,
            "floor({i}) = {} exceeds its member {v}", bucket_floor(i));
        if i + 1 < NUM_BUCKETS {
            prop_assert!(v < bucket_floor(i + 1),
                "{v} in bucket {i} but >= next floor {}", bucket_floor(i + 1));
        }
        // A floor is its own bucket's first member.
        prop_assert_eq!(bucket_index(bucket_floor(i)), i);
        // Monotone: one past the floor can never fall back a bucket.
        prop_assert!(bucket_index(v.saturating_add(1)) >= i);
    }
}

proptest! {
    // Each case spawns real threads; keep the count civil.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_writers_lose_nothing(
        // Bounded below ~13 days so a few hundred observations cannot
        // overflow the atomic u64 running total (the dense reference
        // accumulates in u128 and saturates; wrap-vs-saturate past
        // u64::MAX is not the property under test).
        values in prop::collection::vec(0u64..1 << 40, 1..400),
        writers in 1usize..=8,
    ) {
        // Single-threaded reference: one Histogram fed everything.
        let mut reference = Histogram::new();
        for &v in &values {
            reference.record_ns(v);
        }

        // Concurrent run: `writers` threads share the atomic histogram
        // and counter, each recording a disjoint interleaved slice.
        let hist = Arc::new(AtomicHistogram::new());
        let count = Counter::new();
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let hist = Arc::clone(&hist);
                let count = count.clone();
                let slice: Vec<u64> = values
                    .iter()
                    .copied()
                    .skip(w)
                    .step_by(writers)
                    .collect();
                std::thread::spawn(move || {
                    for v in slice {
                        hist.record_ns(v);
                        count.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }

        prop_assert_eq!(count.get(), values.len() as u64);
        prop_assert_eq!(hist.count(), values.len() as u64);
        let merged = hist.snapshot();
        let expected = reference.snapshot();
        prop_assert_eq!(merged, expected,
            "concurrent merge diverged from the single-threaded reference");
    }
}
