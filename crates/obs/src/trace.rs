//! Low-overhead event tracing: fixed-capacity per-thread ring buffers
//! of timestamped structured events.
//!
//! Each event is `(timestamp ns, kind, code, arg)` — a span begin/end
//! or an instant, a small [`codes`] constant naming the site, and one
//! `u64` argument (an epoch, a report count, …). Recording is a few
//! relaxed atomic stores into a pre-allocated thread-local ring: no
//! locks, no allocation, and while tracing is disabled every site costs
//! exactly one relaxed load. Rings register themselves in a global list
//! on first use, so [`dump_chrome_json`] can render every thread's
//! recent history as chrome://tracing-compatible JSON (open it at
//! `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Dumps are meant to be taken quiescent (after a run, or from a
//! diagnostics command); a dump raced with live recorders may catch a
//! torn slot, which shows up as one bogus event, never a crash.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Event codes: which instrumented site produced an event. Codes are
/// stable across runs (they appear in trace dumps and the README).
pub mod codes {
    /// A whole engine run for one epoch batch (span).
    pub const ROUND: u32 = 1;
    /// Router: hashing reports to shard queues (span, per run).
    pub const ROUTE: u32 = 2;
    /// Shard workers: dedup/deadline filtering (span, per run).
    pub const FILTER: u32 = 3;
    /// The canonical cross-shard merge (span, per epoch).
    pub const MERGE: u32 = 4;
    /// Durable WAL append of a committed round (span).
    pub const COMMIT: u32 = 5;
    /// A submission batch entering a campaign queue (instant; arg =
    /// reports in the batch).
    pub const SUBMIT: u32 = 6;
    /// A batch refused at the bounded queue (instant; arg = queue cap).
    pub const QUEUE_FULL: u32 = 7;
    /// A report batch dequeued into the engine (instant; arg = count).
    pub const DEQUEUE: u32 = 8;
    /// A cluster barrier prepare phase (span; arg = epoch).
    pub const BARRIER_PREPARE: u32 = 9;
    /// A cluster barrier commit phase (span; arg = epoch).
    pub const BARRIER_COMMIT: u32 = 10;

    /// The human-readable name of a code (for dumps and docs).
    pub fn name(code: u32) -> &'static str {
        match code {
            ROUND => "round",
            ROUTE => "route",
            FILTER => "filter",
            MERGE => "merge",
            COMMIT => "commit",
            SUBMIT => "submit",
            QUEUE_FULL => "queue_full",
            DEQUEUE => "dequeue",
            BARRIER_PREPARE => "barrier.prepare",
            BARRIER_COMMIT => "barrier.commit",
            _ => "unknown",
        }
    }
}

/// Events each thread's ring retains (older events are overwritten).
pub const RING_CAPACITY: usize = 4096;

const KIND_BEGIN: u64 = 0;
const KIND_END: u64 = 1;
const KIND_INSTANT: u64 = 2;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn tracing on or off globally. Off is the default; while off,
/// every instrumented site costs one relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[derive(Debug)]
struct Slot {
    /// Timestamp in ns since the process trace epoch.
    ts_ns: AtomicU64,
    /// `kind << 32 | code`.
    kind_code: AtomicU64,
    arg: AtomicU64,
}

#[derive(Debug)]
struct Ring {
    /// Stable per-ring id (one per recording thread), used as the
    /// `tid` in chrome dumps.
    tid: u64,
    /// Total events ever written; the ring holds the last
    /// `RING_CAPACITY` of them.
    head: AtomicUsize,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64) -> Self {
        Self {
            tid,
            head: AtomicUsize::new(0),
            slots: (0..RING_CAPACITY)
                .map(|_| Slot {
                    ts_ns: AtomicU64::new(0),
                    kind_code: AtomicU64::new(0),
                    arg: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    fn push(&self, kind: u64, code: u32, arg: u64) {
        // Relaxed everywhere: each ring has exactly one writer (its
        // thread); dumps are quiescent reads.
        let i = self.head.fetch_add(1, Ordering::Relaxed) % RING_CAPACITY;
        let slot = &self.slots[i];
        slot.ts_ns.store(now_ns(), Ordering::Relaxed);
        slot.kind_code
            .store((kind << 32) | code as u64, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: Arc<Ring> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let ring = Arc::new(Ring::new(NEXT_TID.fetch_add(1, Ordering::Relaxed)));
        rings()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&ring));
        ring
    };
}

#[inline]
fn push(kind: u64, code: u32, arg: u64) {
    LOCAL_RING.with(|ring| ring.push(kind, code, arg));
}

/// Record an instant event (if tracing is enabled).
#[inline]
pub fn instant(code: u32, arg: u64) {
    if enabled() {
        push(KIND_INSTANT, code, arg);
    }
}

/// An RAII span: records a begin event on construction and the matching
/// end event on drop. When tracing is disabled, both are one relaxed
/// load and nothing else.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in"]
pub struct TraceScope {
    code: u32,
    armed: bool,
}

impl TraceScope {
    /// Open a span for `code` with argument `arg`.
    #[inline]
    pub fn begin(code: u32, arg: u64) -> Self {
        let armed = enabled();
        if armed {
            push(KIND_BEGIN, code, arg);
        }
        Self { code, armed }
    }
}

impl Drop for TraceScope {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            push(KIND_END, self.code, 0);
        }
    }
}

/// Reset every registered ring (drops retained events; rings stay
/// registered). Used by tests and by `dptd trace` between runs.
pub fn reset() {
    let rings = rings().lock().unwrap_or_else(PoisonError::into_inner);
    for ring in rings.iter() {
        ring.head.store(0, Ordering::Relaxed);
    }
}

/// One decoded trace event (for programmatic inspection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Ring (thread) id.
    pub tid: u64,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// `'B'` (span begin), `'E'` (span end) or `'i'` (instant).
    pub phase: char,
    /// The [`codes`] constant for the site.
    pub code: u32,
    /// The event's argument.
    pub arg: u64,
}

/// Decode every registered ring's retained events, oldest first per
/// ring, then sorted by timestamp across rings.
pub fn collect() -> Vec<TraceEvent> {
    let rings: Vec<Arc<Ring>> = rings()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut events = Vec::new();
    for ring in rings {
        let written = ring.head.load(Ordering::Relaxed);
        let retained = written.min(RING_CAPACITY);
        let start = written - retained;
        for n in start..written {
            let slot = &ring.slots[n % RING_CAPACITY];
            let kind_code = slot.kind_code.load(Ordering::Relaxed);
            let phase = match kind_code >> 32 {
                KIND_BEGIN => 'B',
                KIND_END => 'E',
                _ => 'i',
            };
            events.push(TraceEvent {
                tid: ring.tid,
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                phase,
                code: (kind_code & u32::MAX as u64) as u32,
                arg: slot.arg.load(Ordering::Relaxed),
            });
        }
    }
    events.sort_by_key(|e| (e.ts_ns, e.tid));
    events
}

/// Render every registered ring as chrome://tracing JSON (an array of
/// event objects). Timestamps are microseconds with nanosecond
/// fraction, as the format expects.
pub fn dump_chrome_json() -> String {
    let events = collect();
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = e.ts_ns as f64 / 1e3;
        // Unmatched 'E' events (begin overwritten by ring wrap) are
        // tolerated by the viewers; emit everything we retained.
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{},\
             \"args\":{{\"v\":{}}}{}}}",
            codes::name(e.code),
            e.phase,
            e.tid,
            e.arg,
            if e.phase == 'i' { ",\"s\":\"t\"" } else { "" },
        ));
    }
    out.push_str("\n]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global, so exercise everything from one
    // test (the test harness runs tests concurrently).
    #[test]
    fn spans_and_instants_round_trip_through_the_dump() {
        reset();
        set_enabled(true);
        {
            let _round = TraceScope::begin(codes::ROUND, 7);
            instant(codes::SUBMIT, 128);
            let _merge = TraceScope::begin(codes::MERGE, 7);
        }
        set_enabled(false);
        // Disabled sites record nothing.
        instant(codes::SUBMIT, 999);
        let _quiet = TraceScope::begin(codes::ROUND, 8);

        let events: Vec<TraceEvent> = collect()
            .into_iter()
            .filter(|e| e.ts_ns > 0 || e.code != 0)
            .collect();
        let this_ring: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.code == codes::ROUND || e.code == codes::MERGE || e.arg == 128)
            .collect();
        assert_eq!(
            this_ring.len(),
            5,
            "B round, i submit, B merge, E merge, E round"
        );
        assert_eq!(this_ring[0].phase, 'B');
        assert_eq!(this_ring[0].arg, 7);
        assert_eq!(this_ring[1].phase, 'i');
        assert_eq!(this_ring[1].arg, 128);
        // Spans nest: merge closes before round.
        assert_eq!(this_ring[3].code, codes::MERGE);
        assert_eq!(this_ring[3].phase, 'E');
        assert_eq!(this_ring[4].code, codes::ROUND);
        assert_eq!(this_ring[4].phase, 'E');
        assert!(
            !events.iter().any(|e| e.arg == 999),
            "disabled instant leaked"
        );

        let json = dump_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"name\":\"merge\""), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"s\":\"t\""), "{json}");

        // The ring wraps rather than growing.
        set_enabled(true);
        for i in 0..(RING_CAPACITY + 10) as u64 {
            instant(codes::DEQUEUE, i);
        }
        set_enabled(false);
        let retained = collect()
            .into_iter()
            .filter(|e| e.code == codes::DEQUEUE)
            .count();
        assert!(retained <= RING_CAPACITY, "ring must not grow: {retained}");
        reset();
        assert!(
            collect().iter().all(|e| e.ts_ns == 0 && e.code == 0) || collect().is_empty(),
            "reset clears retained events"
        );
    }
}
