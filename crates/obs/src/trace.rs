//! Low-overhead event tracing: fixed-capacity per-thread ring buffers
//! of timestamped structured events, with Dapper-style causal context.
//!
//! Each event is `(timestamp ns, kind, code, arg)` — a span begin/end
//! or an instant, a small [`codes`] constant naming the site, and one
//! `u64` argument (an epoch, a report count, …) — plus an optional
//! [`SpanContext`]: a `u64` trace id shared by every span of one
//! logical operation and a deterministic span id linking children to
//! parents, across threads **and across processes** (the wire protocol
//! carries contexts on submit and barrier frames). Recording is a few
//! relaxed atomic stores into a pre-allocated thread-local ring: no
//! locks, no allocation, and while tracing is disabled every site costs
//! exactly one relaxed load. Rings register themselves in a global list
//! on first use, so [`dump_chrome_json`] can render every thread's
//! recent history as chrome://tracing-compatible JSON (open it at
//! `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Span ids are **deterministic**: a child's id is an FNV-1a mix of
//! `(trace id, parent span id, code, arg)`, so two runs of the same
//! round produce bit-identical dumps — what lets the cluster-trace e2e
//! golden-compare merged timelines.
//!
//! Dumps are meant to be taken quiescent (after a run, or from a
//! diagnostics command); a dump raced with live recorders may catch a
//! torn slot, which shows up as one bogus event, never a crash.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Event codes: which instrumented site produced an event. Codes are
/// stable across runs (they appear in trace dumps and the README).
pub mod codes {
    /// A whole engine run for one epoch batch (span).
    pub const ROUND: u32 = 1;
    /// Router: hashing reports to shard queues (span, per run).
    pub const ROUTE: u32 = 2;
    /// Shard workers: dedup/deadline filtering (span, per run).
    pub const FILTER: u32 = 3;
    /// The canonical cross-shard merge (span, per epoch).
    pub const MERGE: u32 = 4;
    /// Durable WAL append of a committed round (span).
    pub const COMMIT: u32 = 5;
    /// A submission batch entering a campaign queue (instant; arg =
    /// reports in the batch).
    pub const SUBMIT: u32 = 6;
    /// A batch refused at the bounded queue (instant; arg = queue cap).
    pub const QUEUE_FULL: u32 = 7;
    /// A report batch dequeued into the engine (instant; arg = count).
    pub const DEQUEUE: u32 = 8;
    /// A cluster barrier prepare phase (span; arg = epoch).
    pub const BARRIER_PREPARE: u32 = 9;
    /// A cluster barrier commit phase (span; arg = epoch).
    pub const BARRIER_COMMIT: u32 = 10;
    /// A node draining its staged lane under a barrier prepare (span;
    /// arg = epoch).
    pub const NODE_DRAIN: u32 = 11;
    /// A node durably committing its slice of a merged round (span;
    /// arg = epoch).
    pub const NODE_COMMIT: u32 = 12;
    /// Ring-wrap marker synthesized into dumps (instant; arg = events
    /// the ring overwrote). Never recorded by an instrumented site.
    pub const TRUNCATED: u32 = 13;

    /// The human-readable name of a code (for dumps and docs).
    pub fn name(code: u32) -> &'static str {
        match code {
            ROUND => "round",
            ROUTE => "route",
            FILTER => "filter",
            MERGE => "merge",
            COMMIT => "commit",
            SUBMIT => "submit",
            QUEUE_FULL => "queue_full",
            DEQUEUE => "dequeue",
            BARRIER_PREPARE => "barrier.prepare",
            BARRIER_COMMIT => "barrier.commit",
            NODE_DRAIN => "node.drain",
            NODE_COMMIT => "node.commit",
            TRUNCATED => "truncated",
            _ => "unknown",
        }
    }
}

/// Events each thread's ring retains (older events are overwritten).
pub const RING_CAPACITY: usize = 4096;

const KIND_BEGIN: u64 = 0;
const KIND_END: u64 = 1;
const KIND_INSTANT: u64 = 2;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn tracing on or off globally. Off is the default; while off,
/// every instrumented site costs one relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process trace epoch: the `Instant` all ring timestamps count
/// from, paired with the wall clock captured at the same moment (ns
/// since the Unix epoch) so dumps from different processes can be
/// aligned on one timeline.
fn epoch() -> &'static (Instant, u64) {
    static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();
    EPOCH.get_or_init(|| {
        let wall = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        (Instant::now(), wall)
    })
}

/// Wall-clock nanoseconds (since the Unix epoch) at the moment this
/// process's trace epoch was captured. `ts_ns + wall_anchor_ns()` puts
/// an event on the shared wall timeline — the basis for merging trace
/// dumps from several processes into one clock-aligned view.
pub fn wall_anchor_ns() -> u64 {
    epoch().1
}

#[inline]
fn now_ns() -> u64 {
    u64::try_from(epoch().0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// FNV-1a over a sequence of little-endian `u64`s — the deterministic
/// mix behind trace and span ids.
fn fnv1a_u64s(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for b in part.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Causal trace context: which trace an event belongs to and which span
/// produced it. `trace_id == 0` means "no context" (the plain,
/// unpropagated tracing mode); real ids are never zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Identifies one logical operation (e.g. one cluster round) across
    /// every process it touches. Zero = no context.
    pub trace_id: u64,
    /// The span that is current under this context — children derive
    /// their own ids from it and record it as their parent.
    pub span_id: u64,
}

impl SpanContext {
    /// Derive a deterministic root context for a named operation (e.g.
    /// `("campaign-id", epoch)` for one cluster round). The same inputs
    /// always yield the same ids, so traced runs stay reproducible.
    pub fn root(name: &str, seq: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let trace_id = nonzero(fnv1a_u64s(&[h, seq]));
        let span_id = nonzero(fnv1a_u64s(&[trace_id, seq, 1]));
        Self { trace_id, span_id }
    }

    /// The deterministic child span id a [`TraceScope`] for `code` with
    /// argument `arg` gets under this context.
    pub fn child_span_id(&self, code: u32, arg: u64) -> u64 {
        nonzero(fnv1a_u64s(&[
            self.trace_id,
            self.span_id,
            u64::from(code),
            arg,
        ]))
    }
}

fn nonzero(id: u64) -> u64 {
    if id == 0 {
        1
    } else {
        id
    }
}

thread_local! {
    /// The ambient span context: what [`TraceScope`]s and wire clients
    /// on this thread inherit as their parent.
    static CURRENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
}

/// The thread's ambient span context, if any — what a child span or an
/// outgoing wire frame should use as its parent.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(Cell::get)
}

/// Install `ctx` as the thread's ambient context until the returned
/// guard drops (which restores whatever was ambient before). This is
/// how a server thread adopts the context a wire frame carried, and how
/// engine stages re-enter the caller's context on spawned threads.
pub fn enter(ctx: SpanContext) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    ContextGuard { prev }
}

/// RAII guard from [`enter`]: restores the previous ambient context on
/// drop.
#[derive(Debug)]
#[must_use = "dropping the guard immediately undoes enter()"]
pub struct ContextGuard {
    prev: Option<SpanContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[derive(Debug)]
struct Slot {
    /// Timestamp in ns since the process trace epoch.
    ts_ns: AtomicU64,
    /// `kind << 32 | code`.
    kind_code: AtomicU64,
    arg: AtomicU64,
    /// The event's trace id (0 = no context).
    trace_id: AtomicU64,
    /// The span this event belongs to (0 for contextless events and
    /// instants, which hang off their parent instead).
    span_id: AtomicU64,
    /// The parent span (0 = root or no context).
    parent_span: AtomicU64,
}

#[derive(Debug)]
struct Ring {
    /// Stable per-ring id (one per recording thread), used as the
    /// `tid` in chrome dumps.
    tid: u64,
    /// Total events ever written; the ring holds the last
    /// `RING_CAPACITY` of them.
    head: AtomicUsize,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64) -> Self {
        Self {
            tid,
            head: AtomicUsize::new(0),
            slots: (0..RING_CAPACITY)
                .map(|_| Slot {
                    ts_ns: AtomicU64::new(0),
                    kind_code: AtomicU64::new(0),
                    arg: AtomicU64::new(0),
                    trace_id: AtomicU64::new(0),
                    span_id: AtomicU64::new(0),
                    parent_span: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    fn push(&self, kind: u64, code: u32, arg: u64, ctx: [u64; 3]) {
        // Relaxed everywhere: each ring has exactly one writer (its
        // thread); dumps are quiescent reads.
        let i = self.head.fetch_add(1, Ordering::Relaxed) % RING_CAPACITY;
        let slot = &self.slots[i];
        slot.ts_ns.store(now_ns(), Ordering::Relaxed);
        slot.kind_code
            .store((kind << 32) | u64::from(code), Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.trace_id.store(ctx[0], Ordering::Relaxed);
        slot.span_id.store(ctx[1], Ordering::Relaxed);
        slot.parent_span.store(ctx[2], Ordering::Relaxed);
    }

    /// Events this ring has overwritten (its wrap is silent at record
    /// time; dumps report it).
    fn dropped(&self) -> u64 {
        self.head
            .load(Ordering::Relaxed)
            .saturating_sub(RING_CAPACITY) as u64
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: Arc<Ring> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let ring = Arc::new(Ring::new(NEXT_TID.fetch_add(1, Ordering::Relaxed)));
        rings()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&ring));
        ring
    };
}

#[inline]
fn push(kind: u64, code: u32, arg: u64, ctx: [u64; 3]) {
    LOCAL_RING.with(|ring| ring.push(kind, code, arg, ctx));
}

/// Record an instant event (if tracing is enabled). Under an ambient
/// context the instant hangs off the current span (its `parent_span`),
/// so a submit instant on a server thread links to the batch's trace.
#[inline]
pub fn instant(code: u32, arg: u64) {
    if enabled() {
        let ctx = match current() {
            Some(c) => [c.trace_id, 0, c.span_id],
            None => [0, 0, 0],
        };
        push(KIND_INSTANT, code, arg, ctx);
    }
}

/// An RAII span: records a begin event on construction and the matching
/// end event on drop. When tracing is disabled, both are one relaxed
/// load and nothing else.
///
/// Under an ambient [`SpanContext`] (installed by [`enter`], a parent
/// `TraceScope`, or the wire layer) the span derives a deterministic
/// child id, records its parent edge, and installs **itself** as the
/// ambient context for its lifetime — nested spans and outgoing wire
/// frames link automatically, with no signature changes at call sites.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in"]
pub struct TraceScope {
    code: u32,
    armed: bool,
    /// This span's context while armed and under a trace (zeros
    /// otherwise).
    ctx: [u64; 3],
    /// The ambient context to restore on drop (only meaningful when
    /// this span installed itself).
    prev: Option<SpanContext>,
}

impl TraceScope {
    /// Open a span for `code` with argument `arg`.
    #[inline]
    pub fn begin(code: u32, arg: u64) -> Self {
        let armed = enabled();
        if !armed {
            return Self {
                code,
                armed,
                ctx: [0, 0, 0],
                prev: None,
            };
        }
        let parent = current();
        let ctx = match parent {
            Some(p) => {
                let own = SpanContext {
                    trace_id: p.trace_id,
                    span_id: p.child_span_id(code, arg),
                };
                CURRENT.with(|c| c.set(Some(own)));
                [p.trace_id, own.span_id, p.span_id]
            }
            None => [0, 0, 0],
        };
        push(KIND_BEGIN, code, arg, ctx);
        Self {
            code,
            armed,
            ctx,
            prev: parent,
        }
    }

    /// This span's context (for handing to spawned threads or wire
    /// frames explicitly). `None` when the span is unarmed or carries
    /// no trace.
    pub fn context(&self) -> Option<SpanContext> {
        if self.armed && self.ctx[0] != 0 {
            Some(SpanContext {
                trace_id: self.ctx[0],
                span_id: self.ctx[1],
            })
        } else {
            None
        }
    }
}

impl Drop for TraceScope {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            push(KIND_END, self.code, 0, self.ctx);
            if self.ctx[0] != 0 {
                CURRENT.with(|c| c.set(self.prev));
            }
        }
    }
}

/// Reset every registered ring (drops retained events; rings stay
/// registered). Used by tests and by `dptd trace` between runs.
pub fn reset() {
    let rings = rings().lock().unwrap_or_else(PoisonError::into_inner);
    for ring in rings.iter() {
        ring.head.store(0, Ordering::Relaxed);
    }
}

/// One decoded trace event (for programmatic inspection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Ring (thread) id.
    pub tid: u64,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// `'B'` (span begin), `'E'` (span end) or `'i'` (instant).
    pub phase: char,
    /// The [`codes`] constant for the site.
    pub code: u32,
    /// The event's argument.
    pub arg: u64,
    /// The trace this event belongs to (0 = no context).
    pub trace_id: u64,
    /// The event's own span id (0 for instants and contextless spans).
    pub span_id: u64,
    /// The parent span id (0 = root or no context).
    pub parent_span: u64,
}

/// Decode every registered ring's retained events, oldest first per
/// ring, then sorted by timestamp across rings.
pub fn collect() -> Vec<TraceEvent> {
    let rings: Vec<Arc<Ring>> = rings()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut events = Vec::new();
    for ring in rings {
        let written = ring.head.load(Ordering::Relaxed);
        let retained = written.min(RING_CAPACITY);
        let start = written - retained;
        for n in start..written {
            let slot = &ring.slots[n % RING_CAPACITY];
            let kind_code = slot.kind_code.load(Ordering::Relaxed);
            let phase = match kind_code >> 32 {
                KIND_BEGIN => 'B',
                KIND_END => 'E',
                _ => 'i',
            };
            events.push(TraceEvent {
                tid: ring.tid,
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                phase,
                code: (kind_code & u64::from(u32::MAX)) as u32,
                arg: slot.arg.load(Ordering::Relaxed),
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                span_id: slot.span_id.load(Ordering::Relaxed),
                parent_span: slot.parent_span.load(Ordering::Relaxed),
            });
        }
    }
    events.sort_by_key(|e| (e.ts_ns, e.tid));
    events
}

/// Per-ring wrap accounting: `(tid, dropped)` for every registered
/// ring that has overwritten events. The 4096-event wrap is silent at
/// record time; this is what dumps and span tables report it from.
pub fn dropped_events() -> Vec<(u64, u64)> {
    rings()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .filter(|r| r.dropped() > 0)
        .map(|r| (r.tid, r.dropped()))
        .collect()
}

/// Render a slice of trace events as chrome://tracing JSON (an array of
/// event objects) under process lane `pid`. Timestamps are microseconds
/// with nanosecond fraction, as the format expects; events carrying a
/// [`SpanContext`] render it in `args` as zero-padded hex strings
/// (`u64`s exceed JSON's exact-integer range).
///
/// This is the **pure** renderer: [`dump_chrome_json`] feeds it the
/// live rings, the cluster trace merger feeds it clock-aligned events
/// from many processes, and the schema golden test feeds it fixed
/// events. Field names and lane mapping are pinned by that test.
pub fn dump_chrome_json_events(events: &[TraceEvent], pid: u64) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = e.ts_ns as f64 / 1e3;
        let ctx = if e.trace_id != 0 {
            format!(
                ",\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"",
                e.trace_id, e.span_id, e.parent_span
            )
        } else {
            String::new()
        };
        // Unmatched 'E' events (begin overwritten by ring wrap) are
        // tolerated by the viewers; emit everything we retained.
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{ts_us:.3},\"pid\":{pid},\"tid\":{},\
             \"args\":{{\"v\":{}{ctx}}}{}}}",
            codes::name(e.code),
            e.phase,
            e.tid,
            e.arg,
            if e.phase == 'i' { ",\"s\":\"t\"" } else { "" },
        ));
    }
    out.push_str("\n]");
    out
}

/// Render every registered ring as chrome://tracing JSON. Rings that
/// wrapped are reported with a leading `truncated` instant per affected
/// ring (arg = events overwritten) instead of dropping silently.
pub fn dump_chrome_json() -> String {
    let mut events: Vec<TraceEvent> = dropped_events()
        .into_iter()
        .map(|(tid, dropped)| TraceEvent {
            tid,
            ts_ns: 0,
            phase: 'i',
            code: codes::TRUNCATED,
            arg: dropped,
            trace_id: 0,
            span_id: 0,
            parent_span: 0,
        })
        .collect();
    events.extend(collect());
    events.sort_by_key(|e| (e.ts_ns, e.tid));
    dump_chrome_json_events(&events, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global, so exercise everything from one
    // test (the test harness runs tests concurrently).
    #[test]
    fn spans_and_instants_round_trip_through_the_dump() {
        reset();
        set_enabled(true);
        {
            let _round = TraceScope::begin(codes::ROUND, 7);
            instant(codes::SUBMIT, 128);
            let _merge = TraceScope::begin(codes::MERGE, 7);
        }
        set_enabled(false);
        // Disabled sites record nothing.
        instant(codes::SUBMIT, 999);
        let _quiet = TraceScope::begin(codes::ROUND, 8);

        let events: Vec<TraceEvent> = collect()
            .into_iter()
            .filter(|e| e.ts_ns > 0 || e.code != 0)
            .collect();
        let this_ring: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.code == codes::ROUND || e.code == codes::MERGE || e.arg == 128)
            .collect();
        assert_eq!(
            this_ring.len(),
            5,
            "B round, i submit, B merge, E merge, E round"
        );
        assert_eq!(this_ring[0].phase, 'B');
        assert_eq!(this_ring[0].arg, 7);
        assert_eq!(this_ring[1].phase, 'i');
        assert_eq!(this_ring[1].arg, 128);
        // No ambient context: events carry no trace ids.
        assert!(this_ring.iter().all(|e| e.trace_id == 0));
        // Spans nest: merge closes before round.
        assert_eq!(this_ring[3].code, codes::MERGE);
        assert_eq!(this_ring[3].phase, 'E');
        assert_eq!(this_ring[4].code, codes::ROUND);
        assert_eq!(this_ring[4].phase, 'E');
        assert!(
            !events.iter().any(|e| e.arg == 999),
            "disabled instant leaked"
        );

        let json = dump_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"name\":\"merge\""), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"s\":\"t\""), "{json}");
        assert!(
            !json.contains("\"trace\""),
            "contextless events must not render trace args: {json}"
        );

        // Context propagation: spans under an entered root context link
        // parent→child with deterministic ids, instants hang off the
        // enclosing span, and the ambient context restores on drop.
        reset();
        set_enabled(true);
        let root = SpanContext::root("campaign-x", 3);
        assert_ne!(root.trace_id, 0);
        assert_eq!(root, SpanContext::root("campaign-x", 3), "roots determine");
        assert_ne!(root, SpanContext::root("campaign-x", 4));
        {
            let guard = enter(root);
            let outer = TraceScope::begin(codes::BARRIER_PREPARE, 3);
            let outer_ctx = outer.context().expect("armed span under a trace");
            assert_eq!(outer_ctx.trace_id, root.trace_id);
            assert_eq!(
                outer_ctx.span_id,
                root.child_span_id(codes::BARRIER_PREPARE, 3)
            );
            {
                let inner = TraceScope::begin(codes::NODE_DRAIN, 3);
                let inner_ctx = inner.context().expect("nested span");
                assert_eq!(
                    inner_ctx.span_id,
                    outer_ctx.child_span_id(codes::NODE_DRAIN, 3)
                );
                instant(codes::DEQUEUE, 42);
            }
            assert_eq!(current(), Some(outer_ctx), "inner span restored ambient");
            drop(outer);
            assert_eq!(current(), Some(root), "outer span restored ambient");
            drop(guard);
            assert_eq!(current(), None, "enter guard restored ambient");
        }
        set_enabled(false);
        let events = collect();
        let outer_begin = events
            .iter()
            .find(|e| e.code == codes::BARRIER_PREPARE && e.phase == 'B')
            .expect("outer begin");
        assert_eq!(outer_begin.trace_id, root.trace_id);
        assert_eq!(outer_begin.parent_span, root.span_id);
        let inner_begin = events
            .iter()
            .find(|e| e.code == codes::NODE_DRAIN && e.phase == 'B')
            .expect("inner begin");
        assert_eq!(
            inner_begin.parent_span, outer_begin.span_id,
            "child span must record its parent edge"
        );
        let tick = events
            .iter()
            .find(|e| e.code == codes::DEQUEUE && e.arg == 42)
            .expect("instant under the inner span");
        assert_eq!(tick.trace_id, root.trace_id);
        assert_eq!(tick.parent_span, inner_begin.span_id);
        let json = dump_chrome_json();
        assert!(
            json.contains(&format!("\"trace\":\"{:016x}\"", root.trace_id)),
            "{json}"
        );

        // The ring wraps rather than growing, and the wrap is reported.
        reset();
        set_enabled(true);
        for i in 0..(RING_CAPACITY + 10) as u64 {
            instant(codes::DEQUEUE, i);
        }
        set_enabled(false);
        let retained = collect()
            .into_iter()
            .filter(|e| e.code == codes::DEQUEUE)
            .count();
        assert!(retained <= RING_CAPACITY, "ring must not grow: {retained}");
        let drops = dropped_events();
        assert!(
            drops.iter().any(|&(_, d)| d == 10),
            "wrap of 10 events must be counted: {drops:?}"
        );
        let json = dump_chrome_json();
        assert!(
            json.contains("\"name\":\"truncated\""),
            "dump must surface the wrap: truncated marker missing"
        );
        reset();
        assert!(dropped_events().is_empty(), "reset clears drop accounting");
        assert!(
            collect().iter().all(|e| e.ts_ns == 0 && e.code == 0) || collect().is_empty(),
            "reset clears retained events"
        );
    }

    #[test]
    fn chrome_json_schema_is_golden_pinned() {
        // The chrome://tracing schema rendered by the pure dump: field
        // names, value shapes, and the pid/tid lane mapping. A change
        // here breaks saved traces and the cluster merge — treat it
        // like a wire format break.
        let events = vec![
            TraceEvent {
                tid: 2,
                ts_ns: 1_500,
                phase: 'B',
                code: codes::ROUND,
                arg: 7,
                trace_id: 0,
                span_id: 0,
                parent_span: 0,
            },
            TraceEvent {
                tid: 2,
                ts_ns: 2_000,
                phase: 'i',
                code: codes::SUBMIT,
                arg: 128,
                trace_id: 0xabc,
                span_id: 0,
                parent_span: 0x11,
            },
            TraceEvent {
                tid: 2,
                ts_ns: 2_250,
                phase: 'E',
                code: codes::ROUND,
                arg: 0,
                trace_id: 0,
                span_id: 0,
                parent_span: 0,
            },
        ];
        let golden = concat!(
            "[\n",
            "{\"name\":\"round\",\"ph\":\"B\",\"ts\":1.500,\"pid\":3,\"tid\":2,\"args\":{\"v\":7}},\n",
            "{\"name\":\"submit\",\"ph\":\"i\",\"ts\":2.000,\"pid\":3,\"tid\":2,",
            "\"args\":{\"v\":128,\"trace\":\"0000000000000abc\",\"span\":\"0000000000000000\",",
            "\"parent\":\"0000000000000011\"},\"s\":\"t\"},\n",
            "{\"name\":\"round\",\"ph\":\"E\",\"ts\":2.250,\"pid\":3,\"tid\":2,\"args\":{\"v\":0}}\n",
            "]",
        );
        assert_eq!(
            dump_chrome_json_events(&events, 3),
            golden,
            "chrome trace JSON schema drifted"
        );
    }
}
