//! The metrics registry: lock-free counters, gauges and histograms
//! under hierarchical dotted names, the [`MetricsSnapshot`] dump the
//! serving layers expose over the wire, and the per-campaign
//! fair-share view derived from it.
//!
//! Handles ([`Counter`], [`Gauge`], [`Arc<AtomicHistogram>`]) are cheap
//! clones of shared atomics: callers obtain them once (taking the
//! registry's name-map lock) and then record from any thread with
//! relaxed atomic ops — the hot path never locks. A
//! [`snapshot`](Registry::snapshot) walks the name map and dumps every
//! metric's current value; snapshots from several nodes
//! [`absorb`](MetricsSnapshot::absorb) into a fleet-wide view (counters
//! and gauges add, histograms merge bucket-wise).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::hist::{AtomicHistogram, HistogramSnapshot};

/// Well-known metric names and the `campaign.<id>.<suffix>` naming
/// scheme shared by every layer that populates a snapshot.
pub mod names {
    /// Live connections currently held by the front end.
    pub const SERVER_CONN_LIVE: &str = "server.conn.live";
    /// Connections admitted since the front end started.
    pub const SERVER_CONN_ACCEPTED: &str = "server.conn.accepted";
    /// Connections refused at the budget (`ServerBusy`).
    pub const SERVER_CONN_REFUSED: &str = "server.conn.refused";
    /// I/O threads the front end runs.
    pub const SERVER_IO_THREADS: &str = "server.io.threads";
    /// Requests dispatched by the registry, all campaigns.
    pub const SERVER_REQUESTS: &str = "server.requests";

    /// Per-campaign suffix: router busy nanoseconds.
    pub const ROUTE_BUSY_NS: &str = "route_busy_ns";
    /// Per-campaign suffix: shard-worker (filter) busy nanoseconds.
    pub const FILTER_BUSY_NS: &str = "filter_busy_ns";
    /// Per-campaign suffix: cross-shard merge busy nanoseconds.
    pub const MERGE_BUSY_NS: &str = "merge_busy_ns";
    /// Per-campaign suffix: reports waiting in the submission queue.
    pub const QUEUE_DEPTH: &str = "queue_depth";
    /// Per-campaign suffix: reports offered to the engine.
    pub const SUBMITTED: &str = "submitted";
    /// Per-campaign suffix: reports accepted into epoch batches.
    pub const ACCEPTED: &str = "accepted";
    /// Per-campaign suffix: duplicates + late + out-of-order drops.
    pub const DROPPED: &str = "dropped";
    /// Per-campaign suffix: rounds closed.
    pub const ROUNDS: &str = "rounds";
    /// Per-campaign suffix: bytes appended to the campaign's WAL.
    pub const WAL_BYTES: &str = "wal_bytes";
    /// Per-campaign suffix: submissions refused at the bounded queue.
    pub const REFUSED_BUSY: &str = "refused.busy";
    /// Per-campaign suffix: rounds refused for exhausted budgets.
    pub const REFUSED_BUDGET: &str = "refused.budget_exhausted";
    /// Per-campaign suffix: operations refused by the write-ahead log.
    pub const REFUSED_WAL: &str = "refused.wal";
    /// Per-campaign suffix: requests refused because the campaign is
    /// quarantined.
    pub const REFUSED_QUARANTINED: &str = "refused.quarantined";
    /// Per-campaign suffix: 1 when the campaign is quarantined.
    pub const QUARANTINED: &str = "quarantined";
    /// Per-campaign suffix: ingest latency histogram.
    pub const INGEST_LATENCY: &str = "ingest_latency";

    /// Every per-campaign suffix, longest first so
    /// [`split_campaign`] can match unambiguously even though campaign
    /// ids may themselves contain dots.
    pub(super) const CAMPAIGN_SUFFIXES: &[&str] = &[
        REFUSED_BUDGET,
        REFUSED_QUARANTINED,
        REFUSED_BUSY,
        REFUSED_WAL,
        INGEST_LATENCY,
        FILTER_BUSY_NS,
        ROUTE_BUSY_NS,
        MERGE_BUSY_NS,
        QUARANTINED,
        QUEUE_DEPTH,
        WAL_BYTES,
        SUBMITTED,
        ACCEPTED,
        DROPPED,
        ROUNDS,
    ];

    /// The full name of a per-campaign metric.
    pub fn campaign_metric(id: &str, suffix: &str) -> String {
        format!("campaign.{id}.{suffix}")
    }

    /// Split `campaign.<id>.<suffix>` back into `(id, suffix)`; `None`
    /// for any other name. Suffixes are matched against the known set
    /// (longest first), so campaign ids containing dots parse
    /// correctly.
    pub fn split_campaign(name: &str) -> Option<(&str, &str)> {
        let rest = name.strip_prefix("campaign.")?;
        for suffix in CAMPAIGN_SUFFIXES {
            if let Some(id) = rest.strip_suffix(suffix) {
                if let Some(id) = id.strip_suffix('.') {
                    if !id.is_empty() {
                        return Some((id, suffix));
                    }
                }
            }
        }
        None
    }
}

/// A monotonically increasing atomic counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zeroed counter (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh zeroed gauge (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (e.g. a connection admitted).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at zero (e.g. a connection closed).
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<AtomicHistogram>),
}

/// A registry of named metrics. Registration takes a lock; recording
/// through the returned handles never does.
#[derive(Debug, Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, name: &str, make: impl FnOnce() -> Slot) -> Slot {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter registered under `name` (created on first use). A
    /// name registers exactly one kind: asking for a counter where a
    /// gauge or histogram lives returns a fresh detached handle.
    pub fn counter(&self, name: &str) -> Counter {
        match self.slot(name, || Slot::Counter(Counter::new())) {
            Slot::Counter(c) => c,
            _ => Counter::new(),
        }
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.slot(name, || Slot::Gauge(Gauge::new())) {
            Slot::Gauge(g) => g,
            _ => Gauge::new(),
        }
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        match self.slot(name, || Slot::Histogram(Arc::new(AtomicHistogram::new()))) {
            Slot::Histogram(h) => h,
            _ => Arc::new(AtomicHistogram::new()),
        }
    }

    /// Dump every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        MetricsSnapshot {
            entries: slots
                .iter()
                .map(|(name, slot)| {
                    let value = match slot {
                        Slot::Counter(c) => MetricValue::Counter(c.get()),
                        Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                        Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One metric's value inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic count.
    Counter(u64),
    /// A point-in-time level.
    Gauge(u64),
    /// A latency distribution.
    Histogram(HistogramSnapshot),
}

/// A point-in-time dump of a [`Registry`] (plus any computed entries a
/// serving layer appends), sorted by name. This is what the wire's
/// `QueryStatus` carries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or overwrite `name`, keeping the entries sorted.
    pub fn set(&mut self, name: String, value: MetricValue) {
        match self
            .entries
            .binary_search_by(|(n, _)| n.as_str().cmp(&name))
        {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (name, value)),
        }
    }

    /// The value registered under `name`.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The scalar under `name` (counter or gauge), if any.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            MetricValue::Histogram(_) => None,
        }
    }

    /// The histogram under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Fold `other` into this snapshot: counters and gauges add,
    /// histograms merge bucket-wise, names absent here are inserted.
    /// This is how the cluster coordinator builds a fleet-wide view
    /// from per-node snapshots.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.entries {
            match self
                .entries
                .binary_search_by(|(n, _)| n.as_str().cmp(name.as_str()))
            {
                Err(i) => self.entries.insert(i, (name.clone(), value.clone())),
                Ok(i) => {
                    let mine = &mut self.entries[i].1;
                    match (mine, value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        // Mismatched kinds under one name: keep ours.
                        _ => {}
                    }
                }
            }
        }
    }

    /// Render the snapshot as Prometheus/OpenMetrics text exposition:
    /// counters and gauges as scalar samples, histograms as cumulative
    /// `_bucket{le="…"}` series (upper bounds in nanoseconds from the
    /// shared log-linear layout) plus `_sum`/`_count`. Dotted names are
    /// mangled to the `[a-zA-Z0-9_:]` charset scrapers require.
    pub fn prometheus(&self) -> String {
        fn mangle(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::with_capacity(self.entries.len() * 64);
        for (name, value) in &self.entries {
            let pname = mangle(name);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {pname} gauge\n{pname} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {pname} histogram\n"));
                    let mut cumulative = 0u64;
                    for &(idx, n) in &h.buckets {
                        cumulative += n;
                        let le = crate::hist::bucket_floor(idx as usize + 1);
                        out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!(
                        "{pname}_bucket{{le=\"+Inf\"}} {}\n{pname}_sum {}\n{pname}_count {}\n",
                        h.count, h.total_ns, h.count
                    ));
                }
            }
        }
        out
    }

    /// Every campaign id appearing in `campaign.<id>.<suffix>` entries,
    /// sorted and deduplicated.
    pub fn campaign_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .entries
            .iter()
            .filter_map(|(name, _)| names::split_campaign(name).map(|(id, _)| id.to_string()))
            .collect();
        ids.dedup();
        ids.sort();
        ids.dedup();
        ids
    }

    /// The per-campaign fair-share view: each campaign's cumulative
    /// stage busy time and its share of the total busy time across all
    /// campaigns in the snapshot. Shares sum to ≤ 1 (exactly 1 when any
    /// campaign has done work; all zero otherwise).
    pub fn campaign_shares(&self) -> Vec<CampaignShare> {
        let ids = self.campaign_ids();
        let scalar = |id: &str, suffix: &str| {
            self.scalar(&names::campaign_metric(id, suffix))
                .unwrap_or(0)
        };
        let mut shares: Vec<CampaignShare> = ids
            .into_iter()
            .map(|id| {
                let route_busy_ns = scalar(&id, names::ROUTE_BUSY_NS);
                let filter_busy_ns = scalar(&id, names::FILTER_BUSY_NS);
                let merge_busy_ns = scalar(&id, names::MERGE_BUSY_NS);
                let ingest = self
                    .histogram(&names::campaign_metric(&id, names::INGEST_LATENCY))
                    .cloned()
                    .unwrap_or_default();
                CampaignShare {
                    route_busy_ns,
                    filter_busy_ns,
                    merge_busy_ns,
                    share: 0.0,
                    queue_depth: scalar(&id, names::QUEUE_DEPTH),
                    submitted: scalar(&id, names::SUBMITTED),
                    accepted: scalar(&id, names::ACCEPTED),
                    dropped: scalar(&id, names::DROPPED),
                    rounds: scalar(&id, names::ROUNDS),
                    wal_bytes: scalar(&id, names::WAL_BYTES),
                    refused_busy: scalar(&id, names::REFUSED_BUSY),
                    refused_budget: scalar(&id, names::REFUSED_BUDGET),
                    refused_wal: scalar(&id, names::REFUSED_WAL),
                    refused_quarantined: scalar(&id, names::REFUSED_QUARANTINED),
                    quarantined: scalar(&id, names::QUARANTINED) != 0,
                    ingest,
                    id,
                }
            })
            .collect();
        let total: u128 = shares.iter().map(|s| s.busy_ns() as u128).sum();
        if total > 0 {
            for s in &mut shares {
                s.share = s.busy_ns() as f64 / total as f64;
            }
        }
        shares
    }
}

/// One campaign's slice of the fair-share accounting (derived from a
/// [`MetricsSnapshot`] by [`MetricsSnapshot::campaign_shares`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignShare {
    /// The campaign id.
    pub id: String,
    /// Cumulative router busy time, ns.
    pub route_busy_ns: u64,
    /// Cumulative shard-worker (filter) busy time, ns.
    pub filter_busy_ns: u64,
    /// Cumulative cross-shard merge busy time, ns.
    pub merge_busy_ns: u64,
    /// This campaign's fraction of total stage busy time across all
    /// campaigns in the snapshot (`0.0..=1.0`).
    pub share: f64,
    /// Reports waiting in the submission queue.
    pub queue_depth: u64,
    /// Reports offered to the engine.
    pub submitted: u64,
    /// Reports accepted into epoch batches.
    pub accepted: u64,
    /// Duplicates + late + out-of-order drops.
    pub dropped: u64,
    /// Rounds closed.
    pub rounds: u64,
    /// Bytes appended to the campaign's WAL.
    pub wal_bytes: u64,
    /// Submissions refused at the bounded queue.
    pub refused_busy: u64,
    /// Rounds refused for exhausted budgets.
    pub refused_budget: u64,
    /// Operations refused by the write-ahead log.
    pub refused_wal: u64,
    /// Requests refused because the campaign is quarantined.
    pub refused_quarantined: u64,
    /// Whether the campaign is quarantined.
    pub quarantined: bool,
    /// Ingest latency distribution.
    pub ingest: HistogramSnapshot,
}

impl CampaignShare {
    /// Total stage busy time, ns.
    pub fn busy_ns(&self) -> u64 {
        self.route_busy_ns + self.filter_busy_ns + self.merge_busy_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn handles_share_cells_and_snapshots_sort() {
        let reg = Registry::new();
        let c = reg.counter("server.requests");
        c.add(3);
        reg.counter("server.requests").incr();
        assert_eq!(c.get(), 4);
        let g = reg.gauge("server.conn.live");
        g.add(2);
        g.sub(1);
        g.sub(5); // saturates
        assert_eq!(g.get(), 0);
        g.set(7);
        reg.histogram("a.lat").record(Duration::from_micros(5));
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.lat", "server.conn.live", "server.requests"]);
        assert_eq!(snap.scalar("server.requests"), Some(4));
        assert_eq!(snap.scalar("server.conn.live"), Some(7));
        assert_eq!(snap.histogram("a.lat").unwrap().count, 1);
        assert_eq!(snap.scalar("a.lat"), None);
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    fn mismatched_kind_returns_detached_handle() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let g = reg.gauge("x");
        g.set(99);
        // The registered counter is untouched.
        assert_eq!(reg.snapshot().scalar("x"), Some(0));
    }

    #[test]
    fn campaign_names_roundtrip_even_with_dots_in_ids() {
        let name = names::campaign_metric("air.quality-2", names::REFUSED_BUDGET);
        assert_eq!(
            names::split_campaign(&name),
            Some(("air.quality-2", names::REFUSED_BUDGET))
        );
        assert_eq!(names::split_campaign("server.conn.live"), None);
        assert_eq!(names::split_campaign("campaign.x.unknown_suffix"), None);
    }

    #[test]
    fn absorb_sums_scalars_and_merges_histograms() {
        let a_reg = Registry::new();
        a_reg.counter("n.requests").add(2);
        a_reg.gauge("n.live").set(3);
        a_reg.histogram("n.lat").record(Duration::from_micros(10));
        let b_reg = Registry::new();
        b_reg.counter("n.requests").add(5);
        b_reg.gauge("n.live").set(4);
        b_reg.histogram("n.lat").record(Duration::from_micros(30));
        b_reg.counter("n.only_b").incr();

        let mut fleet = a_reg.snapshot();
        fleet.absorb(&b_reg.snapshot());
        assert_eq!(fleet.scalar("n.requests"), Some(7));
        assert_eq!(fleet.scalar("n.live"), Some(7));
        assert_eq!(fleet.scalar("n.only_b"), Some(1));
        assert_eq!(fleet.histogram("n.lat").unwrap().count, 2);
    }

    #[test]
    fn absorb_edge_cases_stay_well_formed() {
        // Absorbing an empty snapshot is a no-op; absorbing *into* an
        // empty snapshot copies the other side verbatim.
        let reg = Registry::new();
        reg.counter("n.requests").add(2);
        reg.histogram("n.lat").record(Duration::from_micros(10));
        let base = reg.snapshot();
        let mut unchanged = base.clone();
        unchanged.absorb(&MetricsSnapshot::new());
        assert_eq!(unchanged, base, "absorbing empty must change nothing");
        let mut fresh = MetricsSnapshot::new();
        fresh.absorb(&base);
        assert_eq!(fresh, base, "empty.absorb(x) must equal x");

        // Mismatched kinds under one name keep ours.
        let mut mine = MetricsSnapshot::new();
        mine.set("x".to_string(), MetricValue::Counter(3));
        let mut theirs = MetricsSnapshot::new();
        theirs.set("x".to_string(), MetricValue::Gauge(9));
        mine.absorb(&theirs);
        assert_eq!(mine.get("x"), Some(&MetricValue::Counter(3)));

        // Overlapping campaign ids across nodes: per-campaign counters
        // add, and the fleet view sees one campaign, not two.
        let node = |submitted: u64, busy: u64| {
            let mut s = MetricsSnapshot::new();
            s.set(
                names::campaign_metric("shared", names::SUBMITTED),
                MetricValue::Counter(submitted),
            );
            s.set(
                names::campaign_metric("shared", names::ROUTE_BUSY_NS),
                MetricValue::Counter(busy),
            );
            s
        };
        let mut fleet = node(10, 300);
        fleet.absorb(&node(7, 100));
        assert_eq!(fleet.campaign_ids(), vec!["shared".to_string()]);
        assert_eq!(
            fleet.scalar(&names::campaign_metric("shared", names::SUBMITTED)),
            Some(17)
        );

        // Share renormalization after absorb: shares still sum to ≤ 1
        // (exactly 1 here — both nodes did work), never above.
        let mut two = node(10, 300);
        let mut other = MetricsSnapshot::new();
        other.set(
            names::campaign_metric("other", names::ROUTE_BUSY_NS),
            MetricValue::Counter(100),
        );
        two.absorb(&other);
        let shares = two.campaign_shares();
        let total: f64 = shares.iter().map(|s| s.share).sum();
        assert!(total <= 1.0 + 1e-12, "shares sum past 100%: {total}");
        assert!((total - 1.0).abs() < 1e-12, "busy fleet sums to 1: {total}");
    }

    #[test]
    fn prometheus_exposition_renders_all_three_kinds() {
        let mut snap = MetricsSnapshot::new();
        snap.set("server.conn.live".to_string(), MetricValue::Gauge(3));
        snap.set("server.requests".to_string(), MetricValue::Counter(512));
        snap.set(
            "campaign.air-2.ingest_latency".to_string(),
            MetricValue::Histogram(HistogramSnapshot {
                count: 4,
                total_ns: 10_000,
                max_ns: 4_000,
                buckets: vec![(17, 1), (42, 3)],
            }),
        );
        let text = snap.prometheus();
        assert!(text.contains("# TYPE server_requests counter\nserver_requests 512\n"));
        assert!(text.contains("# TYPE server_conn_live gauge\nserver_conn_live 3\n"));
        assert!(text.contains("# TYPE campaign_air_2_ingest_latency histogram\n"));
        // Buckets are cumulative with `le` upper bounds from the shared
        // layout, closed by +Inf and the sum/count pair.
        let le17 = crate::hist::bucket_floor(18);
        let le42 = crate::hist::bucket_floor(43);
        assert!(
            text.contains(&format!(
                "campaign_air_2_ingest_latency_bucket{{le=\"{le17}\"}} 1\n"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "campaign_air_2_ingest_latency_bucket{{le=\"{le42}\"}} 4\n"
            )),
            "{text}"
        );
        assert!(text.contains("campaign_air_2_ingest_latency_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("campaign_air_2_ingest_latency_sum 10000\n"));
        assert!(text.contains("campaign_air_2_ingest_latency_count 4\n"));
        // No un-mangled characters survive.
        assert!(!text.contains("server.requests"), "{text}");
    }

    #[test]
    fn campaign_shares_sum_to_one_when_busy() {
        let mut snap = MetricsSnapshot::new();
        for (id, busy) in [("a", 300u64), ("b", 100), ("c", 0)] {
            snap.set(
                names::campaign_metric(id, names::ROUTE_BUSY_NS),
                MetricValue::Counter(busy),
            );
            snap.set(
                names::campaign_metric(id, names::FILTER_BUSY_NS),
                MetricValue::Counter(busy * 2),
            );
            snap.set(
                names::campaign_metric(id, names::MERGE_BUSY_NS),
                MetricValue::Counter(busy),
            );
        }
        let shares = snap.campaign_shares();
        assert_eq!(shares.len(), 3);
        let total: f64 = shares.iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-12, "shares sum to 1, got {total}");
        assert!(shares[0].share > shares[1].share);
        assert_eq!(shares[2].share, 0.0);

        // An idle snapshot has all-zero shares, never NaN.
        let idle = MetricsSnapshot::new();
        assert!(idle.campaign_shares().is_empty());
    }
}
