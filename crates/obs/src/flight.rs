//! Black-box flight recorder: a bounded ring of [`MetricsSnapshot`]s
//! plus frozen copies of the trace rings, dumped as one self-describing
//! JSON bundle when something goes wrong.
//!
//! The recorder is the post-mortem complement to the live metrics
//! plane: `dptd status --watch` shows what is happening *now*, the
//! flight recorder preserves what was happening *just before* a
//! quarantine, a refusal storm, a panic, or shutdown — without anyone
//! having had a terminal open. Processes call
//! [`FlightRecorder::record`] periodically (every status snapshot is a
//! natural beat) and [`FlightRecorder::freeze`] on failure triggers;
//! freeze captures the snapshot ring, the current trace rings, and the
//! per-ring drop counters into `flight-NNNNNN-<trigger>.json` under the
//! configured directory (`--flight-dir`). With no directory configured
//! the recorder costs a bounded in-memory ring and freezes are no-ops —
//! safe to leave wired in always.
//!
//! Bundle format (`"format": "dptd-flight-v1"`): see the README's
//! flight-bundle table; the schema is exercised by the unit tests here
//! and parsed (by string inspection — it is self-describing) by
//! `dptd flight inspect`.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::registry::{MetricValue, MetricsSnapshot};
use crate::trace;

/// Snapshots the in-memory ring retains (oldest evicted first).
pub const DEFAULT_SNAPSHOT_RING: usize = 32;

/// Consecutive typed refusals that count as a storm and trip a freeze.
pub const REFUSAL_STORM_THRESHOLD: u64 = 32;

/// One retained snapshot: why it was taken and the metrics at that
/// moment.
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// What prompted the snapshot (`"periodic"`, `"quarantine"`, …).
    pub reason: String,
    /// Monotonic sequence number within this process.
    pub seq: u64,
    /// The metrics at capture time.
    pub metrics: MetricsSnapshot,
}

struct Inner {
    dir: Option<PathBuf>,
    snapshots: VecDeque<FlightSnapshot>,
    capacity: usize,
}

/// The recorder itself. One global instance (see [`global`]) serves a
/// process; the struct is freestanding so tests can run isolated
/// recorders.
pub struct FlightRecorder {
    inner: Mutex<Inner>,
    next_seq: AtomicU64,
    /// Consecutive typed refusals since the last accept (storm
    /// detector).
    refusal_run: AtomicU64,
    /// Bundles written by this recorder (also the filename counter).
    frozen: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("frozen", &self.frozen.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_SNAPSHOT_RING)
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` snapshots, with no dump
    /// directory yet (freezes are in-memory no-ops until
    /// [`FlightRecorder::set_dir`]).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                dir: None,
                snapshots: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            next_seq: AtomicU64::new(0),
            refusal_run: AtomicU64::new(0),
            frozen: AtomicU64::new(0),
        }
    }

    /// Configure (or clear) the directory freeze bundles are written
    /// to. The directory is created on the first freeze.
    pub fn set_dir(&self, dir: Option<PathBuf>) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dir = dir;
    }

    /// Whether a dump directory is configured (freezes will write).
    pub fn dir(&self) -> Option<PathBuf> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dir
            .clone()
    }

    /// Push one snapshot into the bounded ring.
    pub fn record(&self, reason: &str, metrics: MetricsSnapshot) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.snapshots.len() >= inner.capacity {
            inner.snapshots.pop_front();
        }
        inner.snapshots.push_back(FlightSnapshot {
            reason: reason.to_string(),
            seq,
            metrics,
        });
    }

    /// Count one typed refusal toward the storm detector. Returns
    /// `true` exactly when the run of consecutive refusals reaches
    /// [`REFUSAL_STORM_THRESHOLD`] — the caller should then freeze with
    /// trigger `"refusal-storm"` (the run restarts afterwards, so a
    /// sustained storm freezes once per threshold crossing, not per
    /// refusal).
    pub fn note_refusal(&self) -> bool {
        let run = self.refusal_run.fetch_add(1, Ordering::Relaxed) + 1;
        if run >= REFUSAL_STORM_THRESHOLD {
            self.refusal_run.store(0, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Reset the storm detector (an accepted request breaks the run).
    pub fn note_accept(&self) {
        self.refusal_run.store(0, Ordering::Relaxed);
    }

    /// Snapshots currently retained (oldest first).
    pub fn snapshots(&self) -> Vec<FlightSnapshot> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshots
            .iter()
            .cloned()
            .collect()
    }

    /// Render the bundle a freeze would write: the snapshot ring with
    /// `last` appended (the metrics at the moment of failure), the
    /// frozen trace rings, and drop accounting. Pure except for reading
    /// the trace rings.
    pub fn bundle_json(&self, trigger: &str, last: MetricsSnapshot) -> String {
        let mut snapshots = self.snapshots();
        snapshots.push(FlightSnapshot {
            reason: trigger.to_string(),
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            metrics: last,
        });
        let events = trace::collect();
        let dropped = trace::dropped_events();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n\"format\":\"dptd-flight-v1\",\n");
        out.push_str(&format!("\"trigger\":\"{}\",\n", escape(trigger)));
        out.push_str(&format!(
            "\"wall_anchor_ns\":{},\n",
            trace::wall_anchor_ns()
        ));
        out.push_str("\"dropped_events\":[");
        for (i, (tid, n)) in dropped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{tid},{n}]"));
        }
        out.push_str("],\n\"snapshots\":[");
        for (i, snap) in snapshots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"reason\":\"{}\",\"seq\":{},\"metrics\":{}}}",
                escape(&snap.reason),
                snap.seq,
                metrics_json(&snap.metrics)
            ));
        }
        out.push_str("\n],\n\"events\":");
        out.push_str(&trace::dump_chrome_json_events(&events, 1));
        out.push_str("\n}\n");
        out
    }

    /// Freeze the black box: write the bundle for `trigger` (with
    /// `last` as its final snapshot) under the configured directory.
    /// Returns the written path, or `None` when no directory is
    /// configured or the write fails (a failing flight dump must never
    /// take the process down with it).
    pub fn freeze(&self, trigger: &str, last: MetricsSnapshot) -> Option<PathBuf> {
        let dir = self.dir()?;
        let bundle = self.bundle_json(trigger, last);
        let n = self.frozen.fetch_add(1, Ordering::Relaxed);
        let name = format!("flight-{n:06}-{}.json", sanitize(trigger));
        let path = dir.join(name);
        if std::fs::create_dir_all(&dir).is_err() {
            return None;
        }
        match std::fs::write(&path, bundle) {
            Ok(()) => Some(path),
            Err(_) => None,
        }
    }
}

/// The process-wide recorder every subsystem shares. Unconfigured (no
/// dump directory) until a server's `--flight-dir` sets one.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(FlightRecorder::default)
}

/// Chain a panic hook that freezes the global recorder (trigger
/// `"panic"`) before the previous hook runs. Idempotent per process.
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = global().freeze("panic", MetricsSnapshot::new());
            prev(info);
        }));
    });
}

/// Newest flight bundle under `dir` (by the monotonic filename), if
/// any — what `dptd flight dump` prints.
pub fn latest_bundle(dir: &Path) -> Option<PathBuf> {
    let mut bundles: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".json"))
        })
        .collect();
    bundles.sort();
    bundles.pop()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(snap.entries.len() * 48 + 2);
    out.push('{');
    for (i, (name, value)) in snap.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", escape(name)));
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => out.push_str(&v.to_string()),
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{{\"count\":{},\"total_ns\":{},\"max_ns\":{},\"buckets\":[",
                    h.count, h.total_ns, h.max_ns
                ));
                for (j, (idx, n)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{idx},{n}]"));
                }
                out.push_str("]}");
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(refused: u64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.set("server.requests".to_string(), MetricValue::Counter(100));
        s.set(
            "campaign.c.refused.quarantined".to_string(),
            MetricValue::Counter(refused),
        );
        s
    }

    #[test]
    fn snapshot_ring_is_bounded_and_ordered() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record("periodic", snap(i));
        }
        let kept = rec.snapshots();
        assert_eq!(kept.len(), 3, "ring must evict oldest");
        assert_eq!(
            kept.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn refusal_storms_trip_once_per_threshold_run() {
        let rec = FlightRecorder::new(4);
        for _ in 0..REFUSAL_STORM_THRESHOLD - 1 {
            assert!(!rec.note_refusal());
        }
        assert!(rec.note_refusal(), "threshold crossing must trip");
        assert!(!rec.note_refusal(), "run restarts after tripping");
        rec.note_accept();
        assert!(!rec.note_refusal(), "an accept breaks the run");
    }

    #[test]
    fn bundle_is_self_describing_and_ends_with_the_failure_snapshot() {
        let rec = FlightRecorder::new(4);
        rec.record("periodic", snap(0));
        let bundle = rec.bundle_json("quarantine", snap(7));
        assert!(bundle.contains("\"format\":\"dptd-flight-v1\""), "{bundle}");
        assert!(bundle.contains("\"trigger\":\"quarantine\""), "{bundle}");
        assert!(bundle.contains("\"wall_anchor_ns\":"), "{bundle}");
        assert!(bundle.contains("\"events\":["), "{bundle}");
        // The failure snapshot is last and carries the refusal count.
        let last = bundle.rfind("\"reason\":").expect("snapshots present");
        assert!(bundle[last..].contains("quarantine"), "{bundle}");
        assert!(
            bundle[last..].contains("\"campaign.c.refused.quarantined\":7"),
            "{bundle}"
        );
    }

    #[test]
    fn freeze_writes_under_the_configured_dir_only() {
        let rec = FlightRecorder::new(4);
        assert!(
            rec.freeze("shutdown", snap(0)).is_none(),
            "no dir, no write"
        );
        let dir = std::env::temp_dir().join(format!(
            "dptd-flight-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        rec.set_dir(Some(dir.clone()));
        let path = rec.freeze("shutdown", snap(3)).expect("bundle written");
        assert!(path.exists());
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"trigger\":\"shutdown\""));
        assert_eq!(latest_bundle(&dir), Some(path.clone()));
        // A second freeze gets a later filename and becomes the latest.
        let path2 = rec.freeze("quarantine", snap(9)).expect("second bundle");
        assert_ne!(path, path2);
        assert_eq!(latest_bundle(&dir), Some(path2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
