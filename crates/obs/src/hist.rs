//! Log-linear latency histograms: the single-writer [`Histogram`], the
//! lock-free [`AtomicHistogram`] for concurrent recorders, and the
//! sparse [`HistogramSnapshot`] both export.
//!
//! The bucket layout is HDR-style log-linear: values below
//! [`LINEAR_CUTOFF`] get exact buckets; above it each power-of-two
//! octave is split into 16 sub-buckets, so every quantile is reported
//! with ≤ 6.25% relative error over 1 ns .. ~584 years from a fixed
//! 976-slot footprint. Histograms with the same layout merge by
//! bucket-wise addition, which makes per-shard and per-node quantiles
//! exactly composable — a merged histogram is bit-identical to one fed
//! the concatenated stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const OCTAVE_SUB: u64 = 16;
const LINEAR_CUTOFF: u64 = 16; // values below this get exact buckets

/// Fixed number of buckets in every histogram of this layout.
pub const NUM_BUCKETS: usize = (LINEAR_CUTOFF + (64 - 4) * OCTAVE_SUB) as usize;

/// The bucket index holding `value_ns`. Exposed so tests (and the
/// proptest suite) can pin the boundary behaviour.
pub fn bucket_index(value_ns: u64) -> usize {
    if value_ns < LINEAR_CUTOFF {
        value_ns as usize
    } else {
        let exp = 63 - value_ns.leading_zeros() as u64; // >= 4
        let sub = (value_ns >> (exp - 4)) & (OCTAVE_SUB - 1);
        (LINEAR_CUTOFF + (exp - 4) * OCTAVE_SUB + sub) as usize
    }
}

/// The lower bound of bucket `index` (what quantile queries report).
pub fn bucket_floor(index: usize) -> u64 {
    let index = index as u64;
    if index < LINEAR_CUTOFF {
        index
    } else {
        let exp = (index - LINEAR_CUTOFF) / OCTAVE_SUB + 4;
        let sub = (index - LINEAR_CUTOFF) % OCTAVE_SUB;
        (1 << exp) + (sub << (exp - 4))
    }
}

/// A log-linear latency histogram (single writer, mergeable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    max_ns: u64,
    total_ns: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            max_ns: 0,
            total_ns: 0,
        }
    }

    /// Record one latency observation.
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record one observation given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
        self.total_ns += ns as u128;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.total_ns += other.total_ns;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds, or `None` when
    /// empty. Reported at bucket granularity (≤ 6.25% relative error).
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        quantile_over(&self.buckets, self.count, self.max_ns, q)
    }

    /// Median latency.
    pub fn p50(&self) -> Option<Duration> {
        self.quantile_ns(0.50).map(Duration::from_nanos)
    }

    /// 90th-percentile latency.
    pub fn p90(&self) -> Option<Duration> {
        self.quantile_ns(0.90).map(Duration::from_nanos)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Option<Duration> {
        self.quantile_ns(0.99).map(Duration::from_nanos)
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Mean recorded latency.
    pub fn mean(&self) -> Option<Duration> {
        if self.count == 0 {
            None
        } else {
            Some(Duration::from_nanos(
                u64::try_from(self.total_ns / self.count as u128).unwrap_or(u64::MAX),
            ))
        }
    }

    /// Export the occupied buckets as a sparse snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            total_ns: u64::try_from(self.total_ns).unwrap_or(u64::MAX),
            max_ns: self.max_ns,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c != 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }
}

/// The same bucket layout with every slot an atomic: any number of
/// threads record concurrently with relaxed `fetch_add`s (no locks, no
/// CAS loops), and a merged [`snapshot`](AtomicHistogram::snapshot)
/// taken after the writers quiesce equals the single-threaded
/// [`Histogram`] fed the same observations, bucket for bucket.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    max_ns: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    /// Record one latency observation (callable from any thread).
    pub fn record(&self, latency: Duration) {
        self.record_ns(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record one observation given directly in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Export the occupied buckets as a sparse snapshot. Exact once the
    /// writers have quiesced; a snapshot raced with recorders may lag
    /// the very latest observations but never invents any.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.load(Ordering::Relaxed);
                (c != 0).then_some((i as u32, c))
            })
            .collect();
        // Derive the count from the buckets read, so the snapshot is
        // internally consistent even mid-race.
        let count = buckets.iter().map(|&(_, c)| c).sum();
        HistogramSnapshot {
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A sparse, wire-friendly histogram dump: only the occupied buckets,
/// in increasing index order. Quantiles are answered directly from the
/// sparse form, and snapshots with the same layout merge additively
/// (the cluster coordinator folds per-node snapshots this way).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds (saturating).
    pub total_ns: u64,
    /// Largest recorded observation in nanoseconds.
    pub max_ns: u64,
    /// `(bucket index, occupancy)` for every non-empty bucket,
    /// strictly increasing by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds, or `None` when
    /// empty.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(bucket_floor(i as usize).min(self.max_ns));
            }
        }
        Some(self.max_ns)
    }

    /// Median in nanoseconds.
    pub fn p50_ns(&self) -> Option<u64> {
        self.quantile_ns(0.50)
    }

    /// 99th percentile in nanoseconds.
    pub fn p99_ns(&self) -> Option<u64> {
        self.quantile_ns(0.99)
    }

    /// Mean in nanoseconds.
    pub fn mean_ns(&self) -> Option<u64> {
        self.total_ns.checked_div(self.count)
    }

    /// Fold another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Self) {
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&e), None) => {
                    merged.push(e);
                    a.next();
                }
                (None, Some(&&e)) => {
                    merged.push(e);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

fn quantile_over(buckets: &[u64], count: u64, max_ns: u64, q: f64) -> Option<u64> {
    if count == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(bucket_floor(i).min(max_ns));
        }
    }
    Some(max_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_floor_inverts_bucket_index() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u32::MAX as u64] {
            let idx = bucket_index(v);
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
            // Next bucket's floor exceeds the value.
            if idx + 1 < NUM_BUCKETS {
                assert!(bucket_floor(idx + 1) > v);
            }
        }
    }

    #[test]
    fn empty_histograms_have_no_quantiles() {
        assert_eq!(Histogram::new().p50(), None);
        assert_eq!(AtomicHistogram::new().snapshot().p50_ns(), None);
        assert_eq!(HistogramSnapshot::default().mean_ns(), None);
    }

    #[test]
    fn atomic_histogram_matches_the_single_writer_reference() {
        let reference = {
            let mut h = Histogram::new();
            for us in 1..=1000u64 {
                h.record(Duration::from_micros(us));
            }
            h
        };
        let atomic = AtomicHistogram::new();
        for us in 1..=1000u64 {
            atomic.record(Duration::from_micros(us));
        }
        assert_eq!(atomic.snapshot(), reference.snapshot());
        assert_eq!(
            atomic.snapshot().p99_ns(),
            reference.quantile_ns(0.99),
            "quantiles agree"
        );
    }

    #[test]
    fn snapshot_quantiles_match_the_dense_histogram() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let snap = h.snapshot();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile_ns(q), h.quantile_ns(q), "q = {q}");
        }
        assert_eq!(snap.mean_ns(), h.mean().map(|d| d.as_nanos() as u64));
    }

    #[test]
    fn sparse_merge_equals_merged_dense() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for us in 1..=100u64 {
            a.record(Duration::from_micros(us));
            b.record(Duration::from_micros(us * 7));
        }
        let mut sparse = a.snapshot();
        sparse.merge(&b.snapshot());
        let mut dense = a.clone();
        dense.merge(&b);
        assert_eq!(sparse, dense.snapshot());
    }
}
