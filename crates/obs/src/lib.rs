//! Unified observability for the dptd workspace.
//!
//! Three std-only pieces, shared by the engine, the campaign server and
//! the cluster nodes:
//!
//! * [`hist`] — the log-linear latency [`Histogram`] (HDR-style
//!   power-of-two octaves split into 16 sub-buckets: p50/p90/p99 without
//!   storing samples, ≤ 6.25% relative quantile error, mergeable), its
//!   lock-free [`AtomicHistogram`] twin for concurrent writers, and the
//!   sparse [`HistogramSnapshot`] both export for the wire.
//! * [`registry`] — a [`Registry`] of lock-free [`Counter`]s, [`Gauge`]s
//!   and histograms under hierarchical dotted names
//!   (`server.conn.accepted`, `campaign.<id>.merge_busy_ns`, …), plus
//!   the [`MetricsSnapshot`] dump the serving layers expose over TCP and
//!   the per-campaign **fair-share** view ([`CampaignShare`]) derived
//!   from it.
//! * [`trace`] — fixed-capacity per-thread ring buffers of timestamped
//!   structured events (span begin/end + instants; a small code and one
//!   `u64` argument, no allocation on the hot path), the [`TraceScope`]
//!   RAII guard, Dapper-style causal [`SpanContext`] propagation
//!   (deterministic child span ids, ambient per-thread context, wall
//!   anchors for cross-process merges), and a chrome://tracing-
//!   compatible JSON dump.
//! * [`flight`] — the black-box [`FlightRecorder`]: a bounded ring of
//!   metrics snapshots plus frozen trace rings, dumped as one
//!   self-describing JSON bundle on quarantine, refusal storms, panic,
//!   or shutdown.
//!
//! Observability must never perturb results: nothing in this crate
//! touches the data plane's values, and tracing costs one relaxed
//! atomic load per site while disabled.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod flight;
pub mod hist;
pub mod registry;
pub mod trace;

pub use flight::FlightRecorder;
pub use hist::{AtomicHistogram, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{names, CampaignShare, Counter, Gauge, MetricValue, MetricsSnapshot, Registry};
pub use trace::{codes, SpanContext, TraceEvent, TraceScope};
