//! Malformed-frame hardening for the wire protocol.
//!
//! The server's framing faces arbitrary internet bytes, so the decode
//! path must be total: **any** byte string yields a typed
//! [`WireError`] or a valid message — never a panic, and never an
//! allocation driven by an unvalidated length (mirroring the WAL
//! decode's size bounding). Alongside the pure-codec properties, a
//! socket-level test pins the torn-write case: a peer that dies
//! mid-frame must not take the server (or even its own connection
//! handler's peers) down.

use std::io::Write as _;
use std::net::TcpStream;

use proptest::prelude::*;

use dptd_core::roles::PerturbedReport;
use dptd_protocol::message::StampedReport;
use dptd_server::registry::RegistryConfig;
use dptd_server::wire::{self, split_frame, Request, Response, WireError};
use dptd_server::{CampaignSpec, Client, Server, ServerConfig, ServerError};

fn decode_all(bytes: &[u8]) {
    // Exercise the whole decode surface; outcomes are irrelevant, the
    // property is "total and bounded".
    if let Ok((body, consumed)) = split_frame(bytes) {
        assert!(consumed <= bytes.len());
        let _ = Request::decode(body);
        let _ = Response::decode(body);
    }
    let _ = Request::decode(bytes);
    let _ = Response::decode(bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        decode_all(&bytes);
    }

    #[test]
    fn valid_frames_survive_roundtrip_and_any_flip_is_caught(
        users in prop::collection::vec((0u64..1_000, 0u64..50, 0u64..1_000_000), 0..12),
        value_bits in 0u64..u64::MAX,
        epoch in 0u64..1_000,
        flip_at in 0usize..10_000,
        flip_mask in 1u8..=255,
    ) {
        let reports: Vec<StampedReport> = users
            .iter()
            .map(|&(user, nv, sent)| StampedReport {
                epoch,
                sent_at_us: sent,
                report: PerturbedReport {
                    user: user as usize,
                    values: (0..nv as usize % 5)
                        .map(|o| (o, f64::from_bits(value_bits ^ o as u64)))
                        .collect(),
                },
            })
            .collect();
        let request = Request::SubmitReports {
            campaign: "prop-campaign".to_string(),
            reports,
            ctx: None,
        };
        let frame = request.encode();

        // Clean roundtrip (bit-exact, including NaN payload values).
        let (body, consumed) = split_frame(&frame).unwrap();
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(&Request::decode(body).unwrap(), &request);

        // Any single-byte corruption is caught by the header self-check
        // or the checksum — typed, not silent and not a panic.
        let mut mutated = frame.clone();
        let at = flip_at % mutated.len();
        mutated[at] ^= flip_mask;
        match split_frame(&mutated) {
            Ok((body, _)) => {
                // Only a flip inside the stored checksum AND a colliding
                // body could land here; FNV over an identical-length body
                // differing in one byte never collides with a flipped
                // stored sum. So reaching Ok means the flip must have
                // been... nowhere. Refuse.
                prop_assert!(false, "flip at {} went unnoticed: {:?}", at, body.len());
            }
            Err(e) => {
                prop_assert!(
                    matches!(
                        e,
                        WireError::LenCheck
                            | WireError::Checksum
                            | WireError::TooLarge { .. }
                            | WireError::Truncated { .. }
                    ),
                    "unexpected error class for flip at {}: {:?}",
                    at,
                    e
                );
            }
        }

        // Every truncation of a valid frame asks for more bytes.
        let cut = flip_at % (frame.len() + 1);
        if cut < frame.len() {
            match split_frame(&frame[..cut]) {
                Err(WireError::Truncated { needed, have }) => {
                    prop_assert_eq!(have, cut);
                    prop_assert!(needed > cut);
                }
                other => prop_assert!(false, "cut at {}: {:?}", cut, other),
            }
        }
    }

    #[test]
    fn length_lying_headers_are_refused_before_allocation(
        claimed in 0u32..u32::MAX,
        junk in prop::collection::vec(0u8..=255, 0..64),
    ) {
        // A header whose self-check is *consistent* but whose claimed
        // length is a lie: the decoder must answer from the header alone
        // (TooLarge past the cap, Truncated otherwise) without touching
        // a `claimed`-sized buffer.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend_from_slice(&(claimed ^ u32::from_le_bytes(*b"NET1")).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&junk);
        match split_frame(&bytes) {
            Err(WireError::TooLarge { claimed: c }) => {
                prop_assert!(c as usize > wire::MAX_FRAME_LEN);
            }
            Err(WireError::Truncated { needed, .. }) => {
                prop_assert_eq!(needed, wire::FRAME_HEADER_LEN + claimed as usize);
            }
            Err(WireError::Checksum) => {
                // The junk happened to complete the tiny claimed frame
                // but cannot match the zero checksum... unless it can:
                // an empty body hashes to the FNV offset basis, never 0.
                prop_assert!(claimed as usize <= junk.len());
            }
            Ok((body, _)) => {
                // Only reachable when the claimed frame genuinely fits
                // in `junk` AND the zeroed checksum matches — impossible
                // for FNV-1a (no input hashes to 0 in 64 bits with these
                // lengths), so refuse.
                prop_assert!(false, "lying header accepted: {} bytes", body.len());
            }
            Err(e) => prop_assert!(false, "unexpected error: {:?}", e),
        }
    }
}

fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        num_users: 2,
        num_objects: 1,
        num_shards: 1,
        workers: 0,
        engine_queue: 64,
        deadline_us: 1_000,
        submission_capacity: 16,
        per_round_epsilon: 0.5,
        per_round_delta: 0.0,
        budget_epsilon: 5.0,
        budget_delta: 0.0,
        stream_tag: 0,
        durable: false,
    }
}

fn stamped(epoch: u64, user: usize, v: f64) -> StampedReport {
    StampedReport {
        epoch,
        sent_at_us: 1 + user as u64,
        report: PerturbedReport {
            user,
            values: vec![(0, v)],
        },
    }
}

/// A peer that dies mid-frame (the network twin of a torn WAL write)
/// must neither hang nor crash the server; concurrent and subsequent
/// clients keep full service.
#[test]
fn torn_write_mid_frame_disconnect_leaves_the_server_serving() {
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        registry: RegistryConfig::default(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // A healthy campaign first, so the torn writer shares the process
    // with live state.
    let mut healthy = Client::connect(addr).unwrap();
    healthy.create_campaign("healthy", tiny_spec()).unwrap();

    // The torn writer: hello, then half a valid frame, then death.
    for torn_cut in [1usize, 7, 16, 20] {
        let frame = Request::SubmitReports {
            campaign: "healthy".to_string(),
            reports: vec![stamped(0, 0, 1.0)],
            ctx: None,
        }
        .encode();
        assert!(torn_cut < frame.len());
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&wire::HELLO).unwrap();
        raw.write_all(&frame[..torn_cut]).unwrap();
        drop(raw); // mid-frame disconnect
    }

    // Garbage after the hello gets a typed error reply, then hangup.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&wire::HELLO).unwrap();
    raw.write_all(&[0xde; 64]).unwrap();
    {
        use std::io::Read as _;
        let mut reply = Vec::new();
        raw.read_to_end(&mut reply).unwrap(); // server closes after replying
        let (body, _) = split_frame(&reply[8..]).expect("one error frame after the hello echo");
        match Response::decode(body).unwrap() {
            Response::Error { code, .. } => {
                assert_eq!(code, dptd_server::ErrorCode::InvalidRequest)
            }
            other => panic!("expected a typed error, got {other:?}"),
        }
    }

    // A non-hello peer is answered and dropped without echo.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n").unwrap();
    {
        use std::io::Read as _;
        let mut reply = Vec::new();
        raw.read_to_end(&mut reply).unwrap();
        let (body, _) = split_frame(&reply).expect("typed refusal for a non-protocol peer");
        assert!(matches!(
            Response::decode(body).unwrap(),
            Response::Error { .. }
        ));
    }

    // Through all of it, the original connection and fresh ones serve.
    healthy
        .submit("healthy", vec![stamped(0, 0, 1.0), stamped(0, 1, 2.0)])
        .unwrap();
    let round = healthy.close_round("healthy", 0).unwrap();
    assert_eq!(round.accepted, 2);
    let mut fresh = Client::connect(addr).unwrap();
    let budget = fresh.query_budget("healthy").unwrap();
    assert_eq!(budget.debits, vec![1, 1]);
    server.shutdown();
}

/// The client side of the same coin: a server that vanishes mid-reply
/// surfaces as a typed I/O error, not a hang or panic.
#[test]
fn server_death_mid_reply_is_a_typed_client_error() {
    let server = Server::start(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.create_campaign("doomed", tiny_spec()).unwrap();
    // Kill the server, then use the now-dead connection.
    server.shutdown();
    let err = client.query_budget("doomed").unwrap_err();
    assert!(
        matches!(err, ServerError::Io { .. } | ServerError::Wire(_)),
        "{err:?}"
    );
}
