//! Incremental-decoder equivalence with the blocking frame reader.
//!
//! The reactor front end reads sockets in arbitrary-sized slices and
//! feeds them to [`FrameDecoder`]; the threads front end (and every
//! client) reads whole frames blockingly via [`split_frame`]. The two
//! must be extensionally equal: **any** partitioning of a byte stream —
//! one byte at a time, frames spanning reads, several frames per read —
//! must yield exactly the frames the blocking reader sees, in order,
//! and malformed streams must poison with the same typed [`WireError`]
//! class the blocking path reports. This file pins that equivalence,
//! reusing the malformed-frame corpus style of `wire_proptests.rs`.

use proptest::prelude::*;

use dptd_core::roles::PerturbedReport;
use dptd_protocol::message::StampedReport;
use dptd_server::decode::FrameDecoder;
use dptd_server::wire::{split_frame, Request, WireError};

/// Reference decode: repeatedly apply the blocking reader to the whole
/// stream. Returns the frame bodies and the terminating condition.
fn blocking_decode(mut stream: &[u8]) -> (Vec<Vec<u8>>, Option<WireError>) {
    let mut bodies = Vec::new();
    loop {
        match split_frame(stream) {
            Ok((body, consumed)) => {
                bodies.push(body.to_vec());
                stream = &stream[consumed..];
            }
            Err(WireError::Truncated { .. }) if !stream.is_empty() => return (bodies, None),
            Err(_) if stream.is_empty() => return (bodies, None),
            Err(e) => return (bodies, Some(e)),
        }
    }
}

/// Incremental decode: feed the stream in the given slice sizes and
/// drain the decoder after every feed.
fn incremental_decode(stream: &[u8], cuts: &[usize]) -> (Vec<Vec<u8>>, Option<WireError>) {
    let mut decoder = FrameDecoder::new();
    let mut bodies = Vec::new();
    let mut offset = 0;
    let mut cut_idx = 0;
    while offset < stream.len() {
        let step = if cut_idx < cuts.len() {
            cuts[cut_idx].clamp(1, stream.len() - offset)
        } else {
            stream.len() - offset
        };
        cut_idx += 1;
        decoder.extend(&stream[offset..offset + step]);
        offset += step;
        loop {
            match decoder.next_frame() {
                Ok(Some(body)) => bodies.push(body),
                Ok(None) => break,
                Err(e) => return (bodies, Some(e)),
            }
        }
    }
    (bodies, None)
}

fn frame_stream(seeds: &[(u64, usize)]) -> Vec<u8> {
    let mut stream = Vec::new();
    for &(epoch, users) in seeds {
        let reports: Vec<StampedReport> = (0..users)
            .map(|u| StampedReport {
                epoch,
                sent_at_us: u as u64 + 1,
                report: PerturbedReport {
                    user: u,
                    values: vec![(0, u as f64 * 0.5)],
                },
            })
            .collect();
        stream.extend_from_slice(
            &Request::SubmitReports {
                campaign: format!("c{epoch}"),
                reports,
                ctx: None,
            }
            .encode(),
        );
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Valid frame streams decode identically under every partitioning.
    #[test]
    fn any_read_partition_matches_the_blocking_reader(
        seeds in prop::collection::vec((0u64..100, 0usize..8), 1..6),
        cuts in prop::collection::vec(1usize..512, 0..64),
    ) {
        let stream = frame_stream(&seeds);
        let (reference, _) = blocking_decode(&stream);
        prop_assert_eq!(reference.len(), seeds.len());

        let (got, err) = incremental_decode(&stream, &cuts);
        prop_assert!(err.is_none(), "{:?}", err);
        prop_assert_eq!(&got, &reference);

        // The pathological partitioning: one byte per read.
        let ones = vec![1usize; stream.len()];
        let (got, err) = incremental_decode(&stream, &ones);
        prop_assert!(err.is_none(), "{:?}", err);
        prop_assert_eq!(&got, &reference);
    }

    /// A mid-stream truncation leaves every already-complete frame
    /// decoded and the decoder stalled (partial), never errored.
    #[test]
    fn truncation_yields_the_complete_prefix(
        seeds in prop::collection::vec((0u64..100, 0usize..8), 1..5),
        cut_frac in 0.0f64..1.0,
        cuts in prop::collection::vec(1usize..64, 0..32),
    ) {
        let stream = frame_stream(&seeds);
        let cut = ((stream.len() as f64 * cut_frac) as usize).min(stream.len());
        let truncated = &stream[..cut];
        let (reference, ref_err) = blocking_decode(truncated);
        prop_assert!(ref_err.is_none());
        let (got, err) = incremental_decode(truncated, &cuts);
        prop_assert!(err.is_none(), "{:?}", err);
        prop_assert_eq!(&got, &reference);

        let mut decoder = FrameDecoder::new();
        decoder.extend(truncated);
        while let Ok(Some(_)) = decoder.next_frame() {}
        prop_assert_eq!(decoder.has_partial(), decoder.buffered() > 0);
    }

    /// Malformed streams: arbitrary bytes and single-byte flips inside
    /// valid streams error with the same typed class as the blocking
    /// reader, under any partitioning, and the decoder stays poisoned.
    #[test]
    fn malformed_streams_poison_with_the_blocking_error(
        seeds in prop::collection::vec((0u64..100, 0usize..6), 1..4),
        flip_at in 0usize..10_000,
        flip_mask in 1u8..=255,
        cuts in prop::collection::vec(1usize..64, 0..32),
    ) {
        let mut stream = frame_stream(&seeds);
        let at = flip_at % stream.len();
        stream[at] ^= flip_mask;

        let (reference, ref_err) = blocking_decode(&stream);
        let (got, err) = incremental_decode(&stream, &cuts);

        // Frames before the corruption decode identically...
        prop_assert_eq!(&got, &reference);
        // ...and the terminating error class matches exactly. (A flip in
        // a trailing frame's header length field can turn the tail into
        // a Truncated wait — both decoders then report no error.)
        prop_assert_eq!(err.clone(), ref_err);
        if let Some(e) = err {
            prop_assert!(
                matches!(
                    e,
                    WireError::LenCheck
                        | WireError::Checksum
                        | WireError::TooLarge { .. }
                ),
                "unexpected error class: {:?}",
                e
            );
        }
    }

    /// Totality, mirroring `arbitrary_bytes_never_panic`: any byte soup
    /// fed in any partitioning either yields frames or poisons — and a
    /// poisoned decoder refuses further work without panicking.
    #[test]
    fn arbitrary_bytes_never_panic_incrementally(
        bytes in prop::collection::vec(0u8..=255, 1..512),
        cuts in prop::collection::vec(1usize..32, 0..64),
    ) {
        let (_, err) = incremental_decode(&bytes, &cuts);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&bytes);
        let mut first_err = None;
        loop {
            match decoder.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => { first_err = Some(e); break; }
            }
        }
        // Partitioning never changes the verdict.
        prop_assert_eq!(err, first_err.clone());
        if first_err.is_some() {
            prop_assert!(decoder.is_poisoned());
            // Poisoned is permanent: more bytes don't revive it.
            decoder.extend(&[0u8; 16]);
            prop_assert!(decoder.next_frame().is_err());
        }
    }
}
