//! Blocking client for the campaign service.
//!
//! [`Client`] is what `dptd submit` runs, what the loopback e2e harness
//! drives, and what the `server_throughput` bench times: one TCP
//! connection, the v1 hello exchange, then synchronous
//! request/response. Convenience wrappers return typed outcomes and
//! turn [`Response::Error`] replies into [`ServerError::Remote`].

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use dptd_protocol::message::StampedReport;

use crate::server::{complete_frame, read_frame_body, write_frame};
use crate::wire::{self, CampaignSpec, Request, Response};
use crate::{io_err, ServerError};

/// Default reports per `SubmitReports` frame for
/// [`Client::submit_chunked`].
pub const DEFAULT_SUBMIT_CHUNK: usize = 1024;

/// What a successful `CloseRound` reported.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// The epoch that closed.
    pub epoch: u64,
    /// Reports aggregated.
    pub accepted: u64,
    /// Users refused on budget.
    pub refused: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// Late drops.
    pub late: u64,
    /// Truths for the round's objects.
    pub truths: Vec<f64>,
    /// Post-round weights digest.
    pub weights_digest: u64,
    /// Worst cumulative ε after the round.
    pub max_spent_epsilon: f64,
    /// Worst cumulative δ after the round.
    pub max_spent_delta: f64,
}

/// What `QueryTruths` returned.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthsOutcome {
    /// Rounds completed.
    pub rounds_run: u64,
    /// Truths from the last closed round.
    pub truths: Vec<f64>,
    /// Current weights digest.
    pub weights_digest: u64,
}

/// What `QueryBudget` returned.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetOutcome {
    /// Users who can afford no further round.
    pub exhausted: u64,
    /// Worst cumulative ε spent.
    pub max_spent_epsilon: f64,
    /// Worst cumulative δ spent.
    pub max_spent_delta: f64,
    /// Per-user debit counts.
    pub debits: Vec<u32>,
}

/// Whether a submission batch was queued or pushed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The batch was enqueued; the campaign now holds this many pending
    /// reports.
    Queued(u64),
    /// Backpressure: nothing was enqueued.
    Busy {
        /// Reports currently pending.
        queued: u64,
        /// The submission queue's capacity.
        capacity: u64,
    },
}

/// A blocking connection to a campaign server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and perform the hello exchange.
    ///
    /// # Errors
    ///
    /// [`ServerError::Busy`] when the server refuses at its connection
    /// budget, [`ServerError::BadHello`] for a non-protocol peer,
    /// [`ServerError::Io`] for socket failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServerError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream.set_nodelay(true).map_err(|e| io_err("connect", e))?;
        stream
            .write_all(&wire::HELLO)
            .map_err(|e| io_err("send hello", e))?;

        let mut reply = [0u8; wire::HELLO.len()];
        stream
            .read_exact(&mut reply)
            .map_err(|e| io_err("read hello", e))?;
        if reply == wire::HELLO {
            return Ok(Self { stream });
        }
        // Not the hello: an over-budget server answers the connect with
        // one error frame instead. The 8 bytes read are its header's
        // first half; complete the frame and surface it typed.
        let Ok(body) = complete_frame(&reply, &mut stream) else {
            return Err(ServerError::BadHello);
        };
        match Response::decode(&body) {
            Ok(Response::Error {
                code: wire::ErrorCode::ServerBusy,
                ..
            }) => Err(ServerError::Busy),
            Ok(Response::Error { code, message }) => Err(ServerError::Remote { code, message }),
            _ => Err(ServerError::BadHello),
        }
    }

    /// Send one request and read its reply.
    ///
    /// # Errors
    ///
    /// Socket and wire failures; a typed [`Response::Error`] is returned
    /// as a normal `Ok` response (use the convenience wrappers to have
    /// it converted into [`ServerError::Remote`]).
    pub fn request(&mut self, request: &Request) -> Result<Response, ServerError> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame_body(&mut self.stream)? {
            Some(body) => Ok(Response::decode(&body)?),
            None => Err(ServerError::Io {
                op: "read response",
                message: "connection closed before the reply".to_string(),
            }),
        }
    }

    fn expect(&mut self, request: &Request) -> Result<Response, ServerError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ServerError::Remote { code, message }),
            other => Ok(other),
        }
    }

    /// Create (or, when durable, resume) a campaign. Returns the rounds
    /// already committed in its WAL.
    ///
    /// # Errors
    ///
    /// [`ServerError::Remote`] for typed refusals, plus socket/wire
    /// failures.
    pub fn create_campaign(
        &mut self,
        campaign: &str,
        spec: CampaignSpec,
    ) -> Result<u64, ServerError> {
        match self.expect(&Request::CreateCampaign {
            campaign: campaign.to_string(),
            spec,
        })? {
            Response::Created { resumed_rounds } => Ok(resumed_rounds),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Submit one batch as a single frame.
    ///
    /// # Errors
    ///
    /// As [`Client::create_campaign`]; `Busy` is an `Ok` outcome, not an
    /// error — backpressure is the caller's to handle.
    pub fn submit(
        &mut self,
        campaign: &str,
        reports: Vec<StampedReport>,
    ) -> Result<SubmitOutcome, ServerError> {
        match self.expect(&Request::SubmitReports {
            campaign: campaign.to_string(),
            reports,
        })? {
            Response::Submitted { queued } => Ok(SubmitOutcome::Queued(queued)),
            Response::Busy { queued, capacity } => Ok(SubmitOutcome::Busy { queued, capacity }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Submit a round's stream in frames of `chunk` reports (order
    /// preserved — what keeps a served round bit-identical to an
    /// in-process one). Returns the reports queued server-side.
    ///
    /// # Errors
    ///
    /// [`ServerError::Busy`] if any chunk hits backpressure (nothing of
    /// that chunk was enqueued), plus everything [`Client::submit`]
    /// raises.
    pub fn submit_chunked(
        &mut self,
        campaign: &str,
        reports: &[StampedReport],
        chunk: usize,
    ) -> Result<u64, ServerError> {
        let chunk = chunk.max(1);
        let mut queued = 0;
        for batch in reports.chunks(chunk) {
            match self.submit(campaign, batch.to_vec())? {
                SubmitOutcome::Queued(q) => queued = q,
                SubmitOutcome::Busy { .. } => return Err(ServerError::Busy),
            }
        }
        Ok(queued)
    }

    /// Close the campaign's current round.
    ///
    /// # Errors
    ///
    /// [`ServerError::Remote`] for typed refusals (wrong epoch, starved
    /// coverage, exhausted budgets), plus socket/wire failures.
    pub fn close_round(&mut self, campaign: &str, epoch: u64) -> Result<RoundOutcome, ServerError> {
        match self.expect(&Request::CloseRound {
            campaign: campaign.to_string(),
            epoch,
        })? {
            Response::RoundClosed {
                epoch,
                accepted,
                refused,
                duplicates,
                late,
                truths,
                weights_digest,
                max_spent_epsilon,
                max_spent_delta,
            } => Ok(RoundOutcome {
                epoch,
                accepted,
                refused,
                duplicates,
                late,
                truths,
                weights_digest,
                max_spent_epsilon,
                max_spent_delta,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read the latest truths and weights digest.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_truths(&mut self, campaign: &str) -> Result<TruthsOutcome, ServerError> {
        match self.expect(&Request::QueryTruths {
            campaign: campaign.to_string(),
        })? {
            Response::Truths {
                rounds_run,
                truths,
                weights_digest,
            } => Ok(TruthsOutcome {
                rounds_run,
                truths,
                weights_digest,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read the privacy-budget ledger.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_budget(&mut self, campaign: &str) -> Result<BudgetOutcome, ServerError> {
        match self.expect(&Request::QueryBudget {
            campaign: campaign.to_string(),
        })? {
            Response::Budget {
                exhausted,
                max_spent_epsilon,
                max_spent_delta,
                debits,
            } => Ok(BudgetOutcome {
                exhausted,
                max_spent_epsilon,
                max_spent_delta,
                debits,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use crate::server::{Server, ServerConfig};
    use dptd_core::roles::PerturbedReport;

    fn spec(users: u64, capacity: u64) -> CampaignSpec {
        CampaignSpec {
            num_users: users,
            num_objects: 1,
            num_shards: 2,
            workers: 0,
            engine_queue: 1024,
            deadline_us: 1_000,
            submission_capacity: capacity,
            per_round_epsilon: 0.5,
            per_round_delta: 0.0,
            budget_epsilon: 5.0,
            budget_delta: 0.0,
            stream_tag: 0,
            durable: false,
        }
    }

    fn stamped(epoch: u64, user: usize, sent_at_us: u64, v: f64) -> StampedReport {
        StampedReport {
            epoch,
            sent_at_us,
            report: PerturbedReport {
                user,
                values: vec![(0, v)],
            },
        }
    }

    fn start() -> Server {
        Server::start(ServerConfig {
            registry: RegistryConfig::default(),
            ..ServerConfig::default()
        })
        .expect("server starts on loopback")
    }

    #[test]
    fn loopback_round_trip_through_real_sockets() {
        let server = start();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.create_campaign("c", spec(2, 64)).unwrap(), 0);
        let queued = client
            .submit_chunked("c", &[stamped(0, 0, 1, 1.0), stamped(0, 1, 2, 2.0)], 1)
            .unwrap();
        assert_eq!(queued, 2);
        let round = client.close_round("c", 0).unwrap();
        assert_eq!(round.accepted, 2);
        assert_eq!(round.truths.len(), 1);
        let budget = client.query_budget("c").unwrap();
        assert_eq!(budget.debits, vec![1, 1]);
        let truths = client.query_truths("c").unwrap();
        assert_eq!(truths.rounds_run, 1);
        assert_eq!(truths.weights_digest, round.weights_digest);
        let stats = server.shutdown();
        assert_eq!(stats.rounds_closed, 1);
        assert_eq!(stats.reports_submitted, 2);
    }

    #[test]
    fn typed_refusals_reach_the_client() {
        let server = start();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let err = client.close_round("ghost", 0).unwrap_err();
        match err {
            ServerError::Remote { code, .. } => {
                assert_eq!(code, crate::wire::ErrorCode::UnknownCampaign)
            }
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn connection_budget_refuses_with_server_busy() {
        let server = Server::start(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let held = Client::connect(server.local_addr()).unwrap();
        // Second connection: over budget. The refusal can race the
        // acceptor's reaping, so allow a few tries.
        let mut refused = false;
        for _ in 0..10 {
            match Client::connect(server.local_addr()) {
                Err(ServerError::Busy) => {
                    refused = true;
                    break;
                }
                Err(other) => panic!("expected Busy, got {other:?}"),
                Ok(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        assert!(
            refused,
            "a held connection must trip the 1-connection budget"
        );
        drop(held);
    }
}
