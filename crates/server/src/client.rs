//! Blocking client for the campaign service.
//!
//! [`Client`] is what `dptd submit` runs, what the loopback e2e harness
//! drives, and what the `server_throughput` bench times: one TCP
//! connection, the v1 hello exchange, then synchronous
//! request/response. Convenience wrappers return typed outcomes and
//! turn [`Response::Error`] replies into [`ServerError::Remote`].

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use dptd_core::roles::PerturbedReport;
use dptd_protocol::message::StampedReport;
use dptd_stats::digest::Fnv1a;

use crate::server::{complete_frame, read_frame_body, write_frame};
use crate::wire::{self, CampaignSpec, MetricsReport, Request, Response, StoreOp};
use crate::{io_err, ServerError};

/// Default reports per `SubmitReports` frame for
/// [`Client::submit_chunked`].
pub const DEFAULT_SUBMIT_CHUNK: usize = 1024;

/// Ceiling on one busy-retry backoff sleep, milliseconds (the
/// exponential stops doubling here).
const MAX_BUSY_BACKOFF_MS: u64 = 2_000;

/// How a client treats a `Busy` submission queue: give up immediately
/// (the default, and the historical behaviour) or retry with bounded
/// exponential backoff. The backoff is `busy_backoff_ms · 2^attempt`,
/// capped at [`MAX_BUSY_BACKOFF_MS`], plus a deterministic jitter hashed
/// from the chunk index and attempt — concurrent submitters spread out
/// without any client holding an RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per chunk after a `Busy` reply (`0` = fail the submit on
    /// the first `Busy`).
    pub busy_retries: u32,
    /// Base backoff before the first retry, milliseconds.
    pub busy_backoff_ms: u64,
}

impl Default for RetryPolicy {
    /// No retries: `Busy` stays a hard [`ServerError::Busy`].
    fn default() -> Self {
        Self {
            busy_retries: 0,
            busy_backoff_ms: 25,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based) of `chunk`.
    fn delay(&self, chunk: usize, attempt: u32) -> Duration {
        let base = self
            .busy_backoff_ms
            .saturating_mul(1u64 << attempt.min(6))
            .min(MAX_BUSY_BACKOFF_MS);
        let mut h = Fnv1a::new();
        for b in (chunk as u64).to_le_bytes() {
            h.write_u8(b);
        }
        for b in u64::from(attempt).to_le_bytes() {
            h.write_u8(b);
        }
        let jitter = if base == 0 {
            0
        } else {
            h.finish() % (base / 2 + 1)
        };
        Duration::from_millis(base + jitter)
    }
}

/// What a successful `CloseRound` reported.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// The epoch that closed.
    pub epoch: u64,
    /// Reports aggregated.
    pub accepted: u64,
    /// Users refused on budget.
    pub refused: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// Late drops.
    pub late: u64,
    /// Truths for the round's objects.
    pub truths: Vec<f64>,
    /// Post-round weights digest.
    pub weights_digest: u64,
    /// Worst cumulative ε after the round.
    pub max_spent_epsilon: f64,
    /// Worst cumulative δ after the round.
    pub max_spent_delta: f64,
}

/// What `QueryTruths` returned.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthsOutcome {
    /// Rounds completed.
    pub rounds_run: u64,
    /// Truths from the last closed round.
    pub truths: Vec<f64>,
    /// Current weights digest.
    pub weights_digest: u64,
}

/// What `QueryBudget` returned.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetOutcome {
    /// Users who can afford no further round.
    pub exhausted: u64,
    /// Worst cumulative ε spent.
    pub max_spent_epsilon: f64,
    /// Worst cumulative δ spent.
    pub max_spent_delta: f64,
    /// Per-user debit counts.
    pub debits: Vec<u32>,
}

/// What a node's `CloseRoundPrepare` returned: the epoch's surviving
/// claims plus the filter's drop counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedOutcome {
    /// The epoch that was drained.
    pub epoch: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// Late drops.
    pub late: u64,
    /// Distinct refused users that submitted.
    pub refused_seen: u64,
    /// Surviving reports, ascending **node-local** user id.
    pub claims: Vec<PerturbedReport>,
}

/// What a node's `QueryLedger` returned: the durable round ledger a
/// coordinator rebuilds global state from.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerOutcome {
    /// The next epoch the node would commit.
    pub next_epoch: u64,
    /// Estimator batches reflected in the slices.
    pub batches_seen: u64,
    /// Per-local-user debit counts.
    pub rounds_debited: Vec<u32>,
    /// Per-local-user cumulative losses.
    pub cumulative_losses: Vec<f64>,
}

/// Whether a submission batch was queued or pushed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The batch was enqueued; the campaign now holds this many pending
    /// reports.
    Queued(u64),
    /// Backpressure: nothing was enqueued.
    Busy {
        /// Reports currently pending.
        queued: u64,
        /// The submission queue's capacity.
        capacity: u64,
    },
}

/// A blocking connection to a campaign server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and perform the hello exchange.
    ///
    /// # Errors
    ///
    /// [`ServerError::Busy`] when the server refuses at its connection
    /// budget, [`ServerError::BadHello`] for a non-protocol peer,
    /// [`ServerError::Io`] for socket failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServerError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream.set_nodelay(true).map_err(|e| io_err("connect", e))?;
        stream
            .write_all(&wire::HELLO)
            .map_err(|e| io_err("send hello", e))?;

        let mut reply = [0u8; wire::HELLO.len()];
        stream
            .read_exact(&mut reply)
            .map_err(|e| io_err("read hello", e))?;
        if reply == wire::HELLO {
            return Ok(Self { stream });
        }
        // Not the hello: an over-budget server answers the connect with
        // one error frame instead. The 8 bytes read are its header's
        // first half; complete the frame and surface it typed.
        let Ok(body) = complete_frame(&reply, &mut stream) else {
            return Err(ServerError::BadHello);
        };
        match Response::decode(&body) {
            Ok(Response::Error {
                code: wire::ErrorCode::ServerBusy,
                ..
            }) => Err(ServerError::Busy),
            Ok(Response::Error { code, message }) => Err(ServerError::Remote { code, message }),
            _ => Err(ServerError::BadHello),
        }
    }

    /// Send one request and read its reply.
    ///
    /// # Errors
    ///
    /// Socket and wire failures; a typed [`Response::Error`] is returned
    /// as a normal `Ok` response (use the convenience wrappers to have
    /// it converted into [`ServerError::Remote`]).
    pub fn request(&mut self, request: &Request) -> Result<Response, ServerError> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame_body(&mut self.stream)? {
            Some(body) => Ok(Response::decode(&body)?),
            None => Err(ServerError::Io {
                op: "read response",
                message: "connection closed before the reply".to_string(),
            }),
        }
    }

    fn expect(&mut self, request: &Request) -> Result<Response, ServerError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ServerError::Remote { code, message }),
            other => Ok(other),
        }
    }

    /// Create (or, when durable, resume) a campaign. Returns the rounds
    /// already committed in its WAL.
    ///
    /// # Errors
    ///
    /// [`ServerError::Remote`] for typed refusals, plus socket/wire
    /// failures.
    pub fn create_campaign(
        &mut self,
        campaign: &str,
        spec: CampaignSpec,
    ) -> Result<u64, ServerError> {
        match self.expect(&Request::CreateCampaign {
            campaign: campaign.to_string(),
            spec,
        })? {
            Response::Created { resumed_rounds } => Ok(resumed_rounds),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Submit one batch as a single frame.
    ///
    /// # Errors
    ///
    /// As [`Client::create_campaign`]; `Busy` is an `Ok` outcome, not an
    /// error — backpressure is the caller's to handle.
    pub fn submit(
        &mut self,
        campaign: &str,
        reports: Vec<StampedReport>,
    ) -> Result<SubmitOutcome, ServerError> {
        match self.expect(&Request::SubmitReports {
            campaign: campaign.to_string(),
            reports,
        })? {
            Response::Submitted { queued } => Ok(SubmitOutcome::Queued(queued)),
            Response::Busy { queued, capacity } => Ok(SubmitOutcome::Busy { queued, capacity }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Submit a round's stream in frames of `chunk` reports (order
    /// preserved — what keeps a served round bit-identical to an
    /// in-process one). Returns the reports queued server-side.
    ///
    /// # Errors
    ///
    /// [`ServerError::Busy`] if any chunk hits backpressure (nothing of
    /// that chunk was enqueued), plus everything [`Client::submit`]
    /// raises.
    pub fn submit_chunked(
        &mut self,
        campaign: &str,
        reports: &[StampedReport],
        chunk: usize,
    ) -> Result<u64, ServerError> {
        self.submit_chunked_with_retry(campaign, reports, chunk, RetryPolicy::default())
    }

    /// [`Client::submit_chunked`] with an explicit [`RetryPolicy`]: a
    /// `Busy` chunk is retried up to `policy.busy_retries` times behind
    /// exponential backoff instead of failing the whole submit — the
    /// queue drains when a concurrent closer finishes the round ahead.
    ///
    /// # Errors
    ///
    /// [`ServerError::Busy`] once a chunk exhausts its retries (nothing
    /// of that chunk was enqueued), plus everything [`Client::submit`]
    /// raises.
    pub fn submit_chunked_with_retry(
        &mut self,
        campaign: &str,
        reports: &[StampedReport],
        chunk: usize,
        policy: RetryPolicy,
    ) -> Result<u64, ServerError> {
        let chunk = chunk.max(1);
        let mut queued = 0;
        for (i, batch) in reports.chunks(chunk).enumerate() {
            let mut attempt = 0u32;
            loop {
                match self.submit(campaign, batch.to_vec())? {
                    SubmitOutcome::Queued(q) => {
                        queued = q;
                        break;
                    }
                    SubmitOutcome::Busy { .. } if attempt < policy.busy_retries => {
                        std::thread::sleep(policy.delay(i, attempt));
                        attempt += 1;
                    }
                    SubmitOutcome::Busy { .. } => return Err(ServerError::Busy),
                }
            }
        }
        Ok(queued)
    }

    /// Close the campaign's current round.
    ///
    /// # Errors
    ///
    /// [`ServerError::Remote`] for typed refusals (wrong epoch, starved
    /// coverage, exhausted budgets), plus socket/wire failures.
    pub fn close_round(&mut self, campaign: &str, epoch: u64) -> Result<RoundOutcome, ServerError> {
        match self.expect(&Request::CloseRound {
            campaign: campaign.to_string(),
            epoch,
        })? {
            Response::RoundClosed {
                epoch,
                accepted,
                refused,
                duplicates,
                late,
                truths,
                weights_digest,
                max_spent_epsilon,
                max_spent_delta,
            } => Ok(RoundOutcome {
                epoch,
                accepted,
                refused,
                duplicates,
                late,
                truths,
                weights_digest,
                max_spent_epsilon,
                max_spent_delta,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read the latest truths and weights digest.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_truths(&mut self, campaign: &str) -> Result<TruthsOutcome, ServerError> {
        match self.expect(&Request::QueryTruths {
            campaign: campaign.to_string(),
        })? {
            Response::Truths {
                rounds_run,
                truths,
                weights_digest,
            } => Ok(TruthsOutcome {
                rounds_run,
                truths,
                weights_digest,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read the privacy-budget ledger.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_budget(&mut self, campaign: &str) -> Result<BudgetOutcome, ServerError> {
        match self.expect(&Request::QueryBudget {
            campaign: campaign.to_string(),
        })? {
            Response::Budget {
                exhausted,
                max_spent_epsilon,
                max_spent_delta,
                debits,
            } => Ok(BudgetOutcome {
                exhausted,
                max_spent_epsilon,
                max_spent_delta,
                debits,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read the campaign's engine metrics.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_metrics(&mut self, campaign: &str) -> Result<MetricsReport, ServerError> {
        match self.expect(&Request::QueryMetrics {
            campaign: campaign.to_string(),
        })? {
            Response::Metrics { metrics } => Ok(metrics),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Identify this connection as a cluster coordinator talking to
    /// node `node_id` of `num_nodes`. Returns the node's echoed id.
    ///
    /// # Errors
    ///
    /// [`ServerError::Remote`] when the peer is not a cluster node or
    /// disagrees about the geometry, plus socket/wire failures.
    pub fn node_hello(&mut self, node_id: u32, num_nodes: u32) -> Result<u32, ServerError> {
        match self.expect(&Request::NodeHello { node_id, num_nodes })? {
            Response::NodeWelcome { node_id } => Ok(node_id),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Phase one of the cluster barrier: drain and filter the node's
    /// queue for `epoch` without committing anything.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn close_round_prepare(
        &mut self,
        campaign: &str,
        epoch: u64,
        refused: Vec<u64>,
    ) -> Result<PreparedOutcome, ServerError> {
        match self.expect(&Request::CloseRoundPrepare {
            campaign: campaign.to_string(),
            epoch,
            refused,
        })? {
            Response::Prepared {
                epoch,
                duplicates,
                late,
                refused_seen,
                claims,
            } => Ok(PreparedOutcome {
                epoch,
                duplicates,
                late,
                refused_seen,
                claims,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Phase two of the cluster barrier: durably commit the node's
    /// slice of the merged round. Returns whether a record was appended
    /// (`false` = idempotent re-commit of the node's latest epoch).
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    #[allow(clippy::too_many_arguments)]
    pub fn close_round_commit(
        &mut self,
        campaign: &str,
        epoch: u64,
        batches_seen: u64,
        accepted_users: Vec<u64>,
        cumulative_losses: Vec<f64>,
        rounds_debited: Vec<u32>,
    ) -> Result<bool, ServerError> {
        match self.expect(&Request::CloseRoundCommit {
            campaign: campaign.to_string(),
            epoch,
            batches_seen,
            accepted_users,
            cumulative_losses,
            rounds_debited,
        })? {
            Response::Committed { appended, .. } => Ok(appended),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Stream one committed store operation to a follower and wait for
    /// its ack.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`], plus [`ServerError::UnexpectedResponse`]
    /// when the follower acks a different sequence number.
    pub fn replicate(
        &mut self,
        campaign: &str,
        seq: u64,
        op: StoreOp,
        name: &str,
        arg: u64,
        bytes: Vec<u8>,
    ) -> Result<(), ServerError> {
        match self.expect(&Request::ReplicateSegment {
            campaign: campaign.to_string(),
            seq,
            op,
            name: name.to_string(),
            arg,
            bytes,
        })? {
            Response::Replicated { seq: acked } if acked == seq => Ok(()),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read a node's durable round ledger as of epoch `upto`
    /// (`u64::MAX` = latest).
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_ledger(
        &mut self,
        campaign: &str,
        upto: u64,
    ) -> Result<LedgerOutcome, ServerError> {
        match self.expect(&Request::QueryLedger {
            campaign: campaign.to_string(),
            upto,
        })? {
            Response::Ledger {
                next_epoch,
                batches_seen,
                rounds_debited,
                cumulative_losses,
            } => Ok(LedgerOutcome {
                next_epoch,
                batches_seen,
                rounds_debited,
                cumulative_losses,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use crate::server::{Server, ServerConfig};
    use dptd_core::roles::PerturbedReport;

    fn spec(users: u64, capacity: u64) -> CampaignSpec {
        CampaignSpec {
            num_users: users,
            num_objects: 1,
            num_shards: 2,
            workers: 0,
            engine_queue: 1024,
            deadline_us: 1_000,
            submission_capacity: capacity,
            per_round_epsilon: 0.5,
            per_round_delta: 0.0,
            budget_epsilon: 5.0,
            budget_delta: 0.0,
            stream_tag: 0,
            durable: false,
        }
    }

    fn stamped(epoch: u64, user: usize, sent_at_us: u64, v: f64) -> StampedReport {
        StampedReport {
            epoch,
            sent_at_us,
            report: PerturbedReport {
                user,
                values: vec![(0, v)],
            },
        }
    }

    fn start() -> Server {
        Server::start(ServerConfig {
            registry: RegistryConfig::default(),
            ..ServerConfig::default()
        })
        .expect("server starts on loopback")
    }

    #[test]
    fn loopback_round_trip_through_real_sockets() {
        let server = start();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.create_campaign("c", spec(2, 64)).unwrap(), 0);
        let queued = client
            .submit_chunked("c", &[stamped(0, 0, 1, 1.0), stamped(0, 1, 2, 2.0)], 1)
            .unwrap();
        assert_eq!(queued, 2);
        let round = client.close_round("c", 0).unwrap();
        assert_eq!(round.accepted, 2);
        assert_eq!(round.truths.len(), 1);
        let budget = client.query_budget("c").unwrap();
        assert_eq!(budget.debits, vec![1, 1]);
        let truths = client.query_truths("c").unwrap();
        assert_eq!(truths.rounds_run, 1);
        assert_eq!(truths.weights_digest, round.weights_digest);
        let stats = server.shutdown();
        assert_eq!(stats.rounds_closed, 1);
        assert_eq!(stats.reports_submitted, 2);
    }

    #[test]
    fn busy_retry_completes_once_a_closer_drains_the_queue() {
        let server = start();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        // 4 users, queue capacity 4 (pending + lookahead combined).
        client.create_campaign("c", spec(4, 4)).unwrap();
        // Round 0 fills half the queue, the round-1 lookahead the rest.
        client
            .submit("c", vec![stamped(0, 0, 1, 1.0), stamped(0, 1, 2, 2.0)])
            .unwrap();
        client
            .submit("c", vec![stamped(1, 0, 1, 1.5), stamped(1, 1, 2, 2.5)])
            .unwrap();
        // Saturated: without retries the next chunk is a hard Busy.
        let err = client
            .submit_chunked("c", &[stamped(1, 2, 3, 3.0), stamped(1, 3, 4, 4.0)], 2)
            .unwrap_err();
        assert!(matches!(err, ServerError::Busy), "{err:?}");
        // With retries it completes once a concurrent closer finishes
        // round 0, promoting the lookahead and freeing capacity.
        let closer = std::thread::spawn(move || {
            let mut closer = Client::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(60));
            closer.close_round("c", 0).unwrap()
        });
        let queued = client
            .submit_chunked_with_retry(
                "c",
                &[stamped(1, 2, 3, 3.0), stamped(1, 3, 4, 4.0)],
                2,
                RetryPolicy {
                    busy_retries: 100,
                    busy_backoff_ms: 5,
                },
            )
            .unwrap();
        assert_eq!(queued, 4);
        let round0 = closer.join().unwrap();
        assert_eq!(round0.accepted, 2);
        let round1 = client.close_round("c", 1).unwrap();
        assert_eq!(round1.accepted, 4);
        server.shutdown();
    }

    #[test]
    fn retry_backoff_is_bounded_and_deterministic() {
        let policy = RetryPolicy {
            busy_retries: 10,
            busy_backoff_ms: 25,
        };
        // Deterministic: the same (chunk, attempt) always sleeps the
        // same time; bounded: never past cap + half-cap jitter.
        for attempt in 0..32 {
            let d = policy.delay(3, attempt);
            assert_eq!(d, policy.delay(3, attempt));
            assert!(d.as_millis() as u64 <= MAX_BUSY_BACKOFF_MS + MAX_BUSY_BACKOFF_MS / 2);
        }
        // The base doubles early on (jitter aside, attempt 6 dominates
        // attempt 0's worst case).
        assert!(policy.delay(0, 6) > policy.delay(0, 0));
    }

    #[test]
    fn typed_refusals_reach_the_client() {
        let server = start();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let err = client.close_round("ghost", 0).unwrap_err();
        match err {
            ServerError::Remote { code, .. } => {
                assert_eq!(code, crate::wire::ErrorCode::UnknownCampaign)
            }
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn connection_budget_refuses_with_server_busy() {
        let server = Server::start(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let held = Client::connect(server.local_addr()).unwrap();
        // Second connection: over budget. The refusal can race the
        // acceptor's reaping, so allow a few tries.
        let mut refused = false;
        for _ in 0..10 {
            match Client::connect(server.local_addr()) {
                Err(ServerError::Busy) => {
                    refused = true;
                    break;
                }
                Err(other) => panic!("expected Busy, got {other:?}"),
                Ok(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        assert!(
            refused,
            "a held connection must trip the 1-connection budget"
        );
        drop(held);
    }
}
