//! Blocking client for the campaign service.
//!
//! [`Client`] is what `dptd submit` runs, what the loopback e2e harness
//! drives, and what the `server_throughput` bench times: one TCP
//! connection, the v1 hello exchange, then synchronous
//! request/response. Convenience wrappers return typed outcomes and
//! turn [`Response::Error`] replies into [`ServerError::Remote`].

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use dptd_core::roles::PerturbedReport;
use dptd_protocol::message::StampedReport;
use dptd_stats::digest::Fnv1a;

use crate::server::{complete_frame, read_frame_body, write_frame};
use crate::wire::{self, CampaignSpec, MetricsReport, Request, Response, StoreOp};
use crate::{io_err, ServerError};
use dptd_obs::trace;
use dptd_obs::{SpanContext, TraceEvent};

/// The trace context to attach to an outgoing mutating frame: the
/// thread's ambient span when tracing is on, nothing otherwise — an
/// untraced client sends byte-identical v1 frames.
fn wire_ctx() -> Option<SpanContext> {
    if trace::enabled() {
        trace::current()
    } else {
        None
    }
}

/// Default reports per `SubmitReports` frame for
/// [`Client::submit_chunked`].
pub const DEFAULT_SUBMIT_CHUNK: usize = 1024;

/// Ceiling on one busy-retry backoff sleep, milliseconds, **before**
/// jitter (the exponential stops doubling here). With jitter the hard
/// per-sleep ceiling is `1.5 ×` this — see [`RetryPolicy::max_delay`].
pub const MAX_BUSY_BACKOFF_MS: u64 = 2_000;

/// The exponent clamp in `busy_backoff_ms · 2^min(attempt, 6)`: kept
/// alongside [`MAX_BUSY_BACKOFF_MS`] so the doubling can never overflow
/// `u64` for any `busy_backoff_ms`, even before the millisecond cap
/// applies.
pub const MAX_BUSY_BACKOFF_EXPONENT: u32 = 6;

/// How a client treats a `Busy` submission queue: give up immediately
/// (the default, and the historical behaviour) or retry with bounded
/// exponential backoff. The backoff before retry `attempt` is
/// `busy_backoff_ms · 2^min(attempt, MAX_BUSY_BACKOFF_EXPONENT)`,
/// capped at [`MAX_BUSY_BACKOFF_MS`], plus a deterministic jitter of up
/// to half the capped base hashed from the chunk index and attempt —
/// concurrent submitters spread out without any client holding an RNG.
///
/// Every bound is explicit: one sleep never exceeds
/// [`RetryPolicy::max_delay`] (`1.5 × MAX_BUSY_BACKOFF_MS` for large
/// bases), and because a chunk retries at most `busy_retries` times,
/// the **total** time a submit can spend asleep per chunk is bounded by
/// [`RetryPolicy::max_total_sleep`] — `busy_retries ×
/// max_delay` — regardless of how the exponential and the cap interact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per chunk after a `Busy` reply (`0` = fail the submit on
    /// the first `Busy`).
    pub busy_retries: u32,
    /// Base backoff before the first retry, milliseconds.
    pub busy_backoff_ms: u64,
}

impl Default for RetryPolicy {
    /// No retries: `Busy` stays a hard [`ServerError::Busy`].
    fn default() -> Self {
        Self {
            busy_retries: 0,
            busy_backoff_ms: 25,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based) of `chunk`.
    fn delay(&self, chunk: usize, attempt: u32) -> Duration {
        let base = self
            .busy_backoff_ms
            .saturating_mul(1u64 << attempt.min(MAX_BUSY_BACKOFF_EXPONENT))
            .min(MAX_BUSY_BACKOFF_MS);
        let mut h = Fnv1a::new();
        for b in (chunk as u64).to_le_bytes() {
            h.write_u8(b);
        }
        for b in u64::from(attempt).to_le_bytes() {
            h.write_u8(b);
        }
        let jitter = if base == 0 {
            0
        } else {
            h.finish() % (base / 2 + 1)
        };
        Duration::from_millis(base + jitter)
    }

    /// The largest single backoff sleep this policy can produce: the
    /// capped base plus its worst-case (half-base) jitter.
    pub fn max_delay(&self) -> Duration {
        let base = self
            .busy_backoff_ms
            .saturating_mul(1u64 << MAX_BUSY_BACKOFF_EXPONENT)
            .min(MAX_BUSY_BACKOFF_MS);
        Duration::from_millis(base + base / 2)
    }

    /// Upper bound on the total time one chunk can spend asleep before
    /// its submit either succeeds or fails with
    /// [`ServerError::Busy`]: `busy_retries × max_delay`.
    pub fn max_total_sleep(&self) -> Duration {
        self.max_delay().saturating_mul(self.busy_retries)
    }
}

/// What a successful `CloseRound` reported.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// The epoch that closed.
    pub epoch: u64,
    /// Reports aggregated.
    pub accepted: u64,
    /// Users refused on budget.
    pub refused: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// Late drops.
    pub late: u64,
    /// Truths for the round's objects.
    pub truths: Vec<f64>,
    /// Post-round weights digest.
    pub weights_digest: u64,
    /// Worst cumulative ε after the round.
    pub max_spent_epsilon: f64,
    /// Worst cumulative δ after the round.
    pub max_spent_delta: f64,
}

/// What `QueryTruths` returned.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthsOutcome {
    /// Rounds completed.
    pub rounds_run: u64,
    /// Truths from the last closed round.
    pub truths: Vec<f64>,
    /// Current weights digest.
    pub weights_digest: u64,
}

/// What `QueryBudget` returned.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetOutcome {
    /// Users who can afford no further round.
    pub exhausted: u64,
    /// Worst cumulative ε spent.
    pub max_spent_epsilon: f64,
    /// Worst cumulative δ spent.
    pub max_spent_delta: f64,
    /// Per-user debit counts.
    pub debits: Vec<u32>,
}

/// What a node's `CloseRoundPrepare` returned: the epoch's surviving
/// claims plus the filter's drop counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedOutcome {
    /// The epoch that was drained.
    pub epoch: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// Late drops.
    pub late: u64,
    /// Distinct refused users that submitted.
    pub refused_seen: u64,
    /// Surviving reports, ascending **node-local** user id.
    pub claims: Vec<PerturbedReport>,
}

/// What a node's `QueryLedger` returned: the durable round ledger a
/// coordinator rebuilds global state from.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerOutcome {
    /// The next epoch the node would commit.
    pub next_epoch: u64,
    /// Estimator batches reflected in the slices.
    pub batches_seen: u64,
    /// Per-local-user debit counts.
    pub rounds_debited: Vec<u32>,
    /// Per-local-user cumulative losses.
    pub cumulative_losses: Vec<f64>,
}

/// Whether a submission batch was queued or pushed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The batch was enqueued; the campaign now holds this many pending
    /// reports.
    Queued(u64),
    /// Backpressure: nothing was enqueued.
    Busy {
        /// Reports currently pending.
        queued: u64,
        /// The submission queue's capacity.
        capacity: u64,
    },
}

/// In-flight batch frames for [`Client::submit_stream`] before the
/// client stops writing and waits for cumulative acks.
pub const DEFAULT_STREAM_WINDOW: usize = 64;

/// One decoded cumulative ack from a pipelined submit.
struct StreamAck {
    contiguous: u64,
    queued: u64,
    refusals: Vec<wire::BatchRefusal>,
}

/// On any exit from a pipelined submit, re-align the client's stream
/// cursor with the server's (`base + accepted`): a later stream on the
/// same connection then starts in sync even after an error.
fn break_stream(seq: &mut u64, base: u64, accepted: usize) {
    *seq = base + accepted as u64;
}

/// A blocking connection to a campaign server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// The pipelined-submit cursor: the next batch sequence number on
    /// this connection (the server's front end tracks the same number
    /// and only accepts batches in order).
    stream_seq: u64,
}

impl Client {
    /// Connect and perform the hello exchange.
    ///
    /// # Errors
    ///
    /// [`ServerError::Busy`] when the server refuses at its connection
    /// budget, [`ServerError::BadHello`] for a non-protocol peer,
    /// [`ServerError::Io`] for socket failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServerError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream.set_nodelay(true).map_err(|e| io_err("connect", e))?;
        stream
            .write_all(&wire::HELLO)
            .map_err(|e| io_err("send hello", e))?;

        let mut reply = [0u8; wire::HELLO.len()];
        stream
            .read_exact(&mut reply)
            .map_err(|e| io_err("read hello", e))?;
        if reply == wire::HELLO {
            return Ok(Self {
                stream,
                stream_seq: 0,
            });
        }
        // Not the hello: an over-budget server answers the connect with
        // one error frame instead. The 8 bytes read are its header's
        // first half; complete the frame and surface it typed.
        let Ok(body) = complete_frame(&reply, &mut stream) else {
            return Err(ServerError::BadHello);
        };
        match Response::decode(&body) {
            Ok(Response::Error {
                code: wire::ErrorCode::ServerBusy,
                ..
            }) => Err(ServerError::Busy),
            Ok(Response::Error { code, message }) => Err(ServerError::Remote { code, message }),
            _ => Err(ServerError::BadHello),
        }
    }

    /// Send one request and read its reply.
    ///
    /// # Errors
    ///
    /// Socket and wire failures; a typed [`Response::Error`] is returned
    /// as a normal `Ok` response (use the convenience wrappers to have
    /// it converted into [`ServerError::Remote`]).
    pub fn request(&mut self, request: &Request) -> Result<Response, ServerError> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame_body(&mut self.stream)? {
            Some(body) => Ok(Response::decode(&body)?),
            None => Err(ServerError::Io {
                op: "read response",
                message: "connection closed before the reply".to_string(),
            }),
        }
    }

    fn expect(&mut self, request: &Request) -> Result<Response, ServerError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ServerError::Remote { code, message }),
            other => Ok(other),
        }
    }

    /// Create (or, when durable, resume) a campaign. Returns the rounds
    /// already committed in its WAL.
    ///
    /// # Errors
    ///
    /// [`ServerError::Remote`] for typed refusals, plus socket/wire
    /// failures.
    pub fn create_campaign(
        &mut self,
        campaign: &str,
        spec: CampaignSpec,
    ) -> Result<u64, ServerError> {
        match self.expect(&Request::CreateCampaign {
            campaign: campaign.to_string(),
            spec,
        })? {
            Response::Created { resumed_rounds } => Ok(resumed_rounds),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Submit one batch as a single frame.
    ///
    /// # Errors
    ///
    /// As [`Client::create_campaign`]; `Busy` is an `Ok` outcome, not an
    /// error — backpressure is the caller's to handle.
    pub fn submit(
        &mut self,
        campaign: &str,
        reports: Vec<StampedReport>,
    ) -> Result<SubmitOutcome, ServerError> {
        match self.expect(&Request::SubmitReports {
            campaign: campaign.to_string(),
            reports,
            ctx: wire_ctx(),
        })? {
            Response::Submitted { queued } => Ok(SubmitOutcome::Queued(queued)),
            Response::Busy { queued, capacity } => Ok(SubmitOutcome::Busy { queued, capacity }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Submit a round's stream in frames of `chunk` reports (order
    /// preserved — what keeps a served round bit-identical to an
    /// in-process one). Returns the reports queued server-side.
    ///
    /// # Errors
    ///
    /// [`ServerError::Busy`] if any chunk hits backpressure (nothing of
    /// that chunk was enqueued), plus everything [`Client::submit`]
    /// raises.
    pub fn submit_chunked(
        &mut self,
        campaign: &str,
        reports: &[StampedReport],
        chunk: usize,
    ) -> Result<u64, ServerError> {
        self.submit_chunked_with_retry(campaign, reports, chunk, RetryPolicy::default())
    }

    /// [`Client::submit_chunked`] with an explicit [`RetryPolicy`]: a
    /// `Busy` chunk is retried up to `policy.busy_retries` times behind
    /// exponential backoff instead of failing the whole submit — the
    /// queue drains when a concurrent closer finishes the round ahead.
    ///
    /// # Errors
    ///
    /// [`ServerError::Busy`] once a chunk exhausts its retries (nothing
    /// of that chunk was enqueued), plus everything [`Client::submit`]
    /// raises.
    pub fn submit_chunked_with_retry(
        &mut self,
        campaign: &str,
        reports: &[StampedReport],
        chunk: usize,
        policy: RetryPolicy,
    ) -> Result<u64, ServerError> {
        let chunk = chunk.max(1);
        let mut queued = 0;
        for (i, batch) in reports.chunks(chunk).enumerate() {
            let mut attempt = 0u32;
            loop {
                match self.submit(campaign, batch.to_vec())? {
                    SubmitOutcome::Queued(q) => {
                        queued = q;
                        break;
                    }
                    SubmitOutcome::Busy { .. } if attempt < policy.busy_retries => {
                        std::thread::sleep(policy.delay(i, attempt));
                        attempt += 1;
                    }
                    SubmitOutcome::Busy { .. } => return Err(ServerError::Busy),
                }
            }
        }
        Ok(queued)
    }

    /// Submit a round's stream **pipelined**: batches of `chunk`
    /// reports go out as `SubmitReportsStream` frames without waiting
    /// for per-batch acks, up to [`DEFAULT_STREAM_WINDOW`] frames in
    /// flight; the server answers each with a cumulative ack (highest
    /// contiguous batch accepted, refusals as deltas). Order is
    /// preserved — the server accepts only the next in-order batch, so
    /// a pipelined round stays bit-identical to a sequential one.
    ///
    /// # Errors
    ///
    /// As [`Client::submit_stream_with_retry`] under the default
    /// (no-retry) policy: the first backpressure refusal is
    /// [`ServerError::Busy`].
    pub fn submit_stream(
        &mut self,
        campaign: &str,
        reports: &[StampedReport],
        chunk: usize,
    ) -> Result<u64, ServerError> {
        self.submit_stream_with_retry(
            campaign,
            reports,
            chunk,
            DEFAULT_STREAM_WINDOW,
            RetryPolicy::default(),
        )
    }

    /// [`Client::submit_stream`] with an explicit in-flight `window`
    /// and [`RetryPolicy`]. A batch refused for backpressure is retried
    /// under the **same** sequence number behind the policy's backoff:
    /// the client drains the outstanding acks of the overrun window
    /// (they are out-of-order refusals, also retryable), sleeps, and
    /// rewinds its send cursor to the refused batch. Returns the
    /// reports queued server-side after the last accepted batch.
    ///
    /// # Errors
    ///
    /// [`ServerError::Busy`] once a batch exhausts its retries (that
    /// batch and everything after it was not enqueued),
    /// [`ServerError::Remote`] for hard refusals, plus socket/wire
    /// failures.
    pub fn submit_stream_with_retry(
        &mut self,
        campaign: &str,
        reports: &[StampedReport],
        chunk: usize,
        window: usize,
        policy: RetryPolicy,
    ) -> Result<u64, ServerError> {
        let chunk = chunk.max(1);
        let window = window.max(1);
        let batches: Vec<&[StampedReport]> = reports.chunks(chunk).collect();
        let total = batches.len();
        if total == 0 {
            return Ok(0);
        }
        let base = self.stream_seq;
        let mut attempts = vec![0u32; total];
        // Batch indices with a frame on the wire, in send order.
        let mut inflight: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut cursor = 0usize; // next batch to send (rewound on refusal)
        let mut accepted = 0usize; // contiguously accepted batches
        let mut queued = 0u64;

        let result = loop {
            // Top up the window. Writing can block briefly once the
            // socket buffer is full, but the server is draining our
            // frames and its acks are tiny, so this cannot deadlock.
            while cursor < total && inflight.len() < window {
                let frame = Request::SubmitReportsStream {
                    campaign: campaign.to_string(),
                    seq: base + cursor as u64,
                    reports: batches[cursor].to_vec(),
                    ctx: wire_ctx(),
                }
                .encode();
                if let Err(e) = write_frame(&mut self.stream, &frame) {
                    break_stream(&mut self.stream_seq, base, accepted);
                    return Err(e);
                }
                inflight.push_back(cursor);
                cursor += 1;
            }
            let Some(_idx) = inflight.pop_front() else {
                break Ok(queued); // everything sent and acked
            };
            let ack = match self.read_stream_ack() {
                Ok(ack) => ack,
                Err(e) => {
                    break_stream(&mut self.stream_seq, base, accepted);
                    return Err(e);
                }
            };
            accepted = (ack.contiguous.saturating_sub(base)) as usize;
            match ack.refusals.first() {
                None => queued = ack.queued,
                Some(&wire::BatchRefusal { code: None, .. }) => {
                    // Retryable: backpressure on the in-order batch, or
                    // a window continuation behind it. Drain the rest
                    // of the overrun window (all retryable refusals
                    // too), then back off and rewind.
                    while inflight.pop_front().is_some() {
                        match self.read_stream_ack() {
                            Ok(later) => {
                                accepted = (later.contiguous.saturating_sub(base)) as usize;
                                if let Some(&wire::BatchRefusal {
                                    code: Some(code), ..
                                }) = later.refusals.first()
                                {
                                    break_stream(&mut self.stream_seq, base, accepted);
                                    return Err(ServerError::Remote {
                                        code,
                                        message: "streamed batch refused".to_string(),
                                    });
                                }
                            }
                            Err(e) => {
                                break_stream(&mut self.stream_seq, base, accepted);
                                return Err(e);
                            }
                        }
                    }
                    // The earliest unaccepted batch is the one to retry,
                    // under its original sequence number.
                    let retry = accepted;
                    if retry >= total {
                        break Ok(queued); // refusal raced an accept
                    }
                    if attempts[retry] >= policy.busy_retries {
                        break Err(ServerError::Busy);
                    }
                    std::thread::sleep(policy.delay(retry, attempts[retry]));
                    attempts[retry] += 1;
                    cursor = retry;
                }
                Some(&wire::BatchRefusal {
                    code: Some(code), ..
                }) => {
                    // Hard refusal: drain outstanding acks so the
                    // connection stays frame-aligned, then surface it.
                    while inflight.pop_front().is_some() {
                        if let Err(e) = self.read_stream_ack() {
                            break_stream(&mut self.stream_seq, base, accepted);
                            return Err(e);
                        }
                    }
                    break Err(ServerError::Remote {
                        code,
                        message: "streamed batch refused".to_string(),
                    });
                }
            }
        };
        // Align the client cursor with the server's (base + accepted on
        // failure, base + total on success) so a later stream on this
        // connection starts in sync.
        self.stream_seq = base + accepted as u64;
        result
    }

    /// Read one cumulative ack frame.
    fn read_stream_ack(&mut self) -> Result<StreamAck, ServerError> {
        match read_frame_body(&mut self.stream)? {
            Some(body) => match Response::decode(&body)? {
                Response::SubmitAcked {
                    contiguous,
                    queued,
                    refusals,
                } => Ok(StreamAck {
                    contiguous,
                    queued,
                    refusals,
                }),
                Response::Error { code, message } => Err(ServerError::Remote { code, message }),
                other => Err(ServerError::UnexpectedResponse(Box::new(other))),
            },
            None => Err(ServerError::Io {
                op: "read response",
                message: "connection closed before the streamed ack".to_string(),
            }),
        }
    }

    /// Close the campaign's current round.
    ///
    /// # Errors
    ///
    /// [`ServerError::Remote`] for typed refusals (wrong epoch, starved
    /// coverage, exhausted budgets), plus socket/wire failures.
    pub fn close_round(&mut self, campaign: &str, epoch: u64) -> Result<RoundOutcome, ServerError> {
        match self.expect(&Request::CloseRound {
            campaign: campaign.to_string(),
            epoch,
        })? {
            Response::RoundClosed {
                epoch,
                accepted,
                refused,
                duplicates,
                late,
                truths,
                weights_digest,
                max_spent_epsilon,
                max_spent_delta,
            } => Ok(RoundOutcome {
                epoch,
                accepted,
                refused,
                duplicates,
                late,
                truths,
                weights_digest,
                max_spent_epsilon,
                max_spent_delta,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read the latest truths and weights digest.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_truths(&mut self, campaign: &str) -> Result<TruthsOutcome, ServerError> {
        match self.expect(&Request::QueryTruths {
            campaign: campaign.to_string(),
        })? {
            Response::Truths {
                rounds_run,
                truths,
                weights_digest,
            } => Ok(TruthsOutcome {
                rounds_run,
                truths,
                weights_digest,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read the privacy-budget ledger.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_budget(&mut self, campaign: &str) -> Result<BudgetOutcome, ServerError> {
        match self.expect(&Request::QueryBudget {
            campaign: campaign.to_string(),
        })? {
            Response::Budget {
                exhausted,
                max_spent_epsilon,
                max_spent_delta,
                debits,
            } => Ok(BudgetOutcome {
                exhausted,
                max_spent_epsilon,
                max_spent_delta,
                debits,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read the campaign's engine metrics.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_metrics(&mut self, campaign: &str) -> Result<MetricsReport, ServerError> {
        match self.expect(&Request::QueryMetrics {
            campaign: campaign.to_string(),
        })? {
            Response::Metrics { metrics } => Ok(*metrics),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read the server's full observability snapshot (every registry
    /// metric plus per-campaign stage-busy counters and ingest
    /// histograms) — what `dptd status --connect` renders.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_status(&mut self) -> Result<dptd_obs::MetricsSnapshot, ServerError> {
        match self.expect(&Request::QueryStatus)? {
            Response::Status { snapshot } => Ok(snapshot),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Identify this connection as a cluster coordinator talking to
    /// node `node_id` of `num_nodes`. Returns the node's echoed id.
    ///
    /// # Errors
    ///
    /// [`ServerError::Remote`] when the peer is not a cluster node or
    /// disagrees about the geometry, plus socket/wire failures.
    pub fn node_hello(&mut self, node_id: u32, num_nodes: u32) -> Result<u32, ServerError> {
        match self.expect(&Request::NodeHello { node_id, num_nodes })? {
            Response::NodeWelcome { node_id } => Ok(node_id),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Phase one of the cluster barrier: drain and filter the node's
    /// queue for `epoch` without committing anything.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn close_round_prepare(
        &mut self,
        campaign: &str,
        epoch: u64,
        refused: Vec<u64>,
    ) -> Result<PreparedOutcome, ServerError> {
        match self.expect(&Request::CloseRoundPrepare {
            campaign: campaign.to_string(),
            epoch,
            refused,
            ctx: wire_ctx(),
        })? {
            Response::Prepared {
                epoch,
                duplicates,
                late,
                refused_seen,
                claims,
            } => Ok(PreparedOutcome {
                epoch,
                duplicates,
                late,
                refused_seen,
                claims,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Phase two of the cluster barrier: durably commit the node's
    /// slice of the merged round. Returns whether a record was appended
    /// (`false` = idempotent re-commit of the node's latest epoch).
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    #[allow(clippy::too_many_arguments)]
    pub fn close_round_commit(
        &mut self,
        campaign: &str,
        epoch: u64,
        batches_seen: u64,
        accepted_users: Vec<u64>,
        cumulative_losses: Vec<f64>,
        rounds_debited: Vec<u32>,
    ) -> Result<bool, ServerError> {
        match self.expect(&Request::CloseRoundCommit {
            campaign: campaign.to_string(),
            epoch,
            batches_seen,
            accepted_users,
            cumulative_losses,
            rounds_debited,
            ctx: wire_ctx(),
        })? {
            Response::Committed { appended, .. } => Ok(appended),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Stream one committed store operation to a follower and wait for
    /// its ack.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`], plus [`ServerError::UnexpectedResponse`]
    /// when the follower acks a different sequence number.
    pub fn replicate(
        &mut self,
        campaign: &str,
        seq: u64,
        op: StoreOp,
        name: &str,
        arg: u64,
        bytes: Vec<u8>,
    ) -> Result<(), ServerError> {
        match self.expect(&Request::ReplicateSegment {
            campaign: campaign.to_string(),
            seq,
            op,
            name: name.to_string(),
            arg,
            bytes,
        })? {
            Response::Replicated { seq: acked } if acked == seq => Ok(()),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Read a node's durable round ledger as of epoch `upto`
    /// (`u64::MAX` = latest).
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_ledger(
        &mut self,
        campaign: &str,
        upto: u64,
    ) -> Result<LedgerOutcome, ServerError> {
        match self.expect(&Request::QueryLedger {
            campaign: campaign.to_string(),
            upto,
        })? {
            Response::Ledger {
                next_epoch,
                batches_seen,
                rounds_debited,
                cumulative_losses,
            } => Ok(LedgerOutcome {
                next_epoch,
                batches_seen,
                rounds_debited,
                cumulative_losses,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Fetch the peer process's retained trace rings: its wall-clock
    /// anchor, per-ring truncation counts, and every retained event —
    /// what `dptd cluster trace` merges into one timeline.
    ///
    /// # Errors
    ///
    /// As [`Client::close_round`].
    pub fn query_trace(&mut self) -> Result<TraceOutcome, ServerError> {
        match self.expect(&Request::QueryTrace)? {
            Response::TraceDump {
                anchor_ns,
                dropped,
                events,
            } => Ok(TraceOutcome {
                anchor_ns,
                dropped,
                events,
            }),
            other => Err(ServerError::UnexpectedResponse(Box::new(other))),
        }
    }
}

/// What [`Client::query_trace`] returns: one process's retained rings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOutcome {
    /// Wall-clock nanoseconds at the peer's trace epoch.
    pub anchor_ns: u64,
    /// `(tid, events_overwritten)` for every ring that wrapped.
    pub dropped: Vec<(u64, u64)>,
    /// The retained events, oldest-first per ring.
    pub events: Vec<TraceEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use crate::server::{Server, ServerConfig};
    use dptd_core::roles::PerturbedReport;

    fn spec(users: u64, capacity: u64) -> CampaignSpec {
        CampaignSpec {
            num_users: users,
            num_objects: 1,
            num_shards: 2,
            workers: 0,
            engine_queue: 1024,
            deadline_us: 1_000,
            submission_capacity: capacity,
            per_round_epsilon: 0.5,
            per_round_delta: 0.0,
            budget_epsilon: 5.0,
            budget_delta: 0.0,
            stream_tag: 0,
            durable: false,
        }
    }

    fn stamped(epoch: u64, user: usize, sent_at_us: u64, v: f64) -> StampedReport {
        StampedReport {
            epoch,
            sent_at_us,
            report: PerturbedReport {
                user,
                values: vec![(0, v)],
            },
        }
    }

    fn start() -> Server {
        Server::start(ServerConfig {
            registry: RegistryConfig::default(),
            ..ServerConfig::default()
        })
        .expect("server starts on loopback")
    }

    #[test]
    fn loopback_round_trip_through_real_sockets() {
        let server = start();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.create_campaign("c", spec(2, 64)).unwrap(), 0);
        let queued = client
            .submit_chunked("c", &[stamped(0, 0, 1, 1.0), stamped(0, 1, 2, 2.0)], 1)
            .unwrap();
        assert_eq!(queued, 2);
        let round = client.close_round("c", 0).unwrap();
        assert_eq!(round.accepted, 2);
        assert_eq!(round.truths.len(), 1);
        let budget = client.query_budget("c").unwrap();
        assert_eq!(budget.debits, vec![1, 1]);
        let truths = client.query_truths("c").unwrap();
        assert_eq!(truths.rounds_run, 1);
        assert_eq!(truths.weights_digest, round.weights_digest);
        let stats = server.shutdown();
        assert_eq!(stats.rounds_closed, 1);
        assert_eq!(stats.reports_submitted, 2);
    }

    #[test]
    fn busy_retry_completes_once_a_closer_drains_the_queue() {
        let server = start();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        // 4 users, queue capacity 4 (pending + lookahead combined).
        client.create_campaign("c", spec(4, 4)).unwrap();
        // Round 0 fills half the queue, the round-1 lookahead the rest.
        client
            .submit("c", vec![stamped(0, 0, 1, 1.0), stamped(0, 1, 2, 2.0)])
            .unwrap();
        client
            .submit("c", vec![stamped(1, 0, 1, 1.5), stamped(1, 1, 2, 2.5)])
            .unwrap();
        // Saturated: without retries the next chunk is a hard Busy.
        let err = client
            .submit_chunked("c", &[stamped(1, 2, 3, 3.0), stamped(1, 3, 4, 4.0)], 2)
            .unwrap_err();
        assert!(matches!(err, ServerError::Busy), "{err:?}");
        // With retries it completes once a concurrent closer finishes
        // round 0, promoting the lookahead and freeing capacity.
        let closer = std::thread::spawn(move || {
            let mut closer = Client::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(60));
            closer.close_round("c", 0).unwrap()
        });
        let queued = client
            .submit_chunked_with_retry(
                "c",
                &[stamped(1, 2, 3, 3.0), stamped(1, 3, 4, 4.0)],
                2,
                RetryPolicy {
                    busy_retries: 100,
                    busy_backoff_ms: 5,
                },
            )
            .unwrap();
        assert_eq!(queued, 4);
        let round0 = closer.join().unwrap();
        assert_eq!(round0.accepted, 2);
        let round1 = client.close_round("c", 1).unwrap();
        assert_eq!(round1.accepted, 4);
        server.shutdown();
    }

    #[test]
    fn retry_backoff_is_bounded_and_deterministic() {
        let policy = RetryPolicy {
            busy_retries: 10,
            busy_backoff_ms: 25,
        };
        // Deterministic: the same (chunk, attempt) always sleeps the
        // same time; bounded: never past the explicit per-sleep cap.
        for attempt in 0..32 {
            let d = policy.delay(3, attempt);
            assert_eq!(d, policy.delay(3, attempt));
            assert!(d <= policy.max_delay(), "attempt {attempt}: {d:?}");
        }
        // The base doubles early on (jitter aside, attempt 6 dominates
        // attempt 0's worst case).
        assert!(policy.delay(0, 6) > policy.delay(0, 0));

        // The full schedule for chunk 3 is pinned, milliseconds: base
        // 25·2^min(attempt,6) capped at MAX_BUSY_BACKOFF_MS, plus the
        // FNV-hashed jitter. A change here changes how every deployed
        // retrying client behaves under sustained backpressure.
        let schedule: Vec<u64> = (0..10)
            .map(|a| policy.delay(3, a).as_millis() as u64)
            .collect();
        assert_eq!(
            schedule,
            vec![36, 59, 132, 256, 415, 1026, 2201, 1665, 2106, 2371],
            "busy-backoff schedule changed"
        );
        // Every entry respects the explicit cap, and the exponent clamp
        // means attempts past 6 stop growing (only jitter varies).
        let cap = policy.max_delay().as_millis() as u64;
        // 25ms · 2^6 = 1600ms stays under MAX_BUSY_BACKOFF_MS, so this
        // policy's cap is exponent-limited: 1600 + 800 jitter. No
        // policy can ever exceed the absolute 2000 + 1000 ceiling.
        assert_eq!(cap, 2_400);
        assert!(cap <= MAX_BUSY_BACKOFF_MS + MAX_BUSY_BACKOFF_MS / 2);
        assert!(schedule.iter().all(|&ms| ms <= cap), "{schedule:?}");
        // And the total sleep a chunk can accumulate is the documented
        // product, which `busy_retries` makes finite.
        assert_eq!(
            policy.max_total_sleep(),
            policy.max_delay() * policy.busy_retries
        );
        assert_eq!(
            RetryPolicy::default().max_total_sleep(),
            Duration::ZERO,
            "the no-retry default never sleeps"
        );
    }

    #[test]
    fn pipelined_submit_matches_sequential_results() {
        let server = start();
        let mut piped = Client::connect(server.local_addr()).unwrap();
        piped.create_campaign("piped", spec(8, 1024)).unwrap();
        let reports: Vec<StampedReport> = (0..8)
            .map(|u| stamped(0, u, u as u64 + 1, u as f64))
            .collect();
        // 8 reports in 2-report batches, window 2: real pipelining on a
        // tiny stream.
        let queued = piped
            .submit_stream_with_retry("piped", &reports, 2, 2, RetryPolicy::default())
            .unwrap();
        assert_eq!(queued, 8);
        let piped_round = piped.close_round("piped", 0).unwrap();

        let mut seq = Client::connect(server.local_addr()).unwrap();
        seq.create_campaign("seq", spec(8, 1024)).unwrap();
        seq.submit_chunked("seq", &reports, 2).unwrap();
        let seq_round = seq.close_round("seq", 0).unwrap();

        assert_eq!(
            piped_round.weights_digest, seq_round.weights_digest,
            "pipelined and sequential submits must aggregate bit-identically"
        );
        assert_eq!(piped_round.accepted, seq_round.accepted);

        // The stream cursor survives across rounds on one connection:
        // a second pipelined round keeps working.
        let reports1: Vec<StampedReport> =
            (0..8).map(|u| stamped(1, u, 60 + u as u64, 1.0)).collect();
        assert_eq!(piped.submit_stream("piped", &reports1, 3).unwrap(), 8);
        piped.close_round("piped", 1).unwrap();
        server.shutdown();
    }

    #[test]
    fn pipelined_submit_retries_backpressure_under_the_same_seq() {
        let server = start();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        // Capacity 4 (pending + lookahead): round 0 fills it, so the
        // stream's later batches are refused until a closer drains.
        client.create_campaign("c", spec(4, 4)).unwrap();
        let reports: Vec<StampedReport> = (0..4)
            .map(|u| stamped(0, u, u as u64 + 1, u as f64))
            .chain((0..4).map(|u| stamped(1, u, 10 + u as u64, 1.0)))
            .collect();
        // Without retries: a hard Busy once the window overruns.
        let err = client
            .submit_stream_with_retry("c", &reports, 2, 4, RetryPolicy::default())
            .unwrap_err();
        assert!(matches!(err, ServerError::Busy), "{err:?}");
        let closer = std::thread::spawn(move || {
            let mut closer = Client::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(60));
            closer.close_round("c", 0).unwrap()
        });
        // With retries: the refused batch is re-sent under its original
        // sequence number once round 0's close frees the queue, and the
        // stream completes. (The server accepts in order, so everything
        // already accepted is never resent.)
        let queued = client
            .submit_stream_with_retry(
                "c",
                &reports[4..],
                2,
                4,
                RetryPolicy {
                    busy_retries: 100,
                    busy_backoff_ms: 5,
                },
            )
            .unwrap();
        assert_eq!(queued, 4);
        assert_eq!(closer.join().unwrap().accepted, 4);
        assert_eq!(client.close_round("c", 1).unwrap().accepted, 4);
        server.shutdown();
    }

    #[test]
    fn pipelined_hard_refusals_surface_typed_and_leave_the_connection_usable() {
        let server = start();
        let mut client = Client::connect(server.local_addr()).unwrap();
        // No such campaign: the first batch's refusal carries the code.
        let err = client
            .submit_stream("ghost", &[stamped(0, 0, 1, 1.0)], 1)
            .unwrap_err();
        match err {
            ServerError::Remote { code, .. } => {
                assert_eq!(code, crate::wire::ErrorCode::UnknownCampaign)
            }
            other => panic!("expected Remote, got {other:?}"),
        }
        // The connection is still frame-aligned for ordinary requests
        // and for a fresh stream.
        client.create_campaign("real", spec(2, 64)).unwrap();
        assert_eq!(
            client
                .submit_stream("real", &[stamped(0, 0, 1, 1.0), stamped(0, 1, 2, 2.0)], 1)
                .unwrap(),
            2
        );
        assert_eq!(client.close_round("real", 0).unwrap().accepted, 2);
        server.shutdown();
    }

    #[test]
    fn typed_refusals_reach_the_client() {
        let server = start();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let err = client.close_round("ghost", 0).unwrap_err();
        match err {
            ServerError::Remote { code, .. } => {
                assert_eq!(code, crate::wire::ErrorCode::UnknownCampaign)
            }
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn connection_budget_refuses_with_server_busy() {
        let server = Server::start(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let held = Client::connect(server.local_addr()).unwrap();
        // Second connection: over budget. The refusal can race the
        // acceptor's reaping, so allow a few tries.
        let mut refused = false;
        for _ in 0..10 {
            match Client::connect(server.local_addr()) {
                Err(ServerError::Busy) => {
                    refused = true;
                    break;
                }
                Err(other) => panic!("expected Busy, got {other:?}"),
                Ok(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        assert!(
            refused,
            "a held connection must trip the 1-connection budget"
        );
        drop(held);
    }
}
