//! The multi-campaign registry: one process, many live campaigns.
//!
//! [`CampaignRegistry`] maps campaign ids to independent campaign
//! slots. Each slot owns a
//! [`CampaignDriver`]`<`[`EngineBackend`]`>` — its own sharded engine,
//! carried weights and per-user privacy ledger, optionally durable
//! through a per-campaign WAL directory — plus a **bounded** submission
//! queue: `SubmitReports` batches accumulate until `CloseRound` drains
//! them through one engine epoch, and a batch that would overflow the
//! queue is refused with [`Response::Busy`] (taken atomically or not at
//! all — the server never buffers unboundedly and never tears a batch).
//!
//! Slots serialize their own operations behind one mutex each, so
//! campaigns proceed fully concurrently while a single campaign's
//! rounds stay deterministic: the reports a round aggregates are exactly
//! the submitted stream in submission order, which is what makes a
//! served campaign's weights digest and budget ledger **bit-identical**
//! to an in-process [`CampaignDriver`] run on the same stream.
//!
//! Privacy enforcement is the campaign layer's, unchanged: exhausted
//! users are refused by the [`BudgetAccountant`] before their reports
//! reach the engine, and a round in which *every* submitter is refused
//! surfaces as a typed [`ErrorCode::BudgetExhausted`] wire error.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use dptd_engine::store::DirFs;
use dptd_engine::{
    Engine, EngineBackend, EngineConfig, ObservedFs, SegmentStore, StoreConfig, StoreObserver,
    WalLock, WalPolicy,
};
use dptd_ldp::PrivacyLoss;
use dptd_obs::{names, Counter, MetricValue, MetricsSnapshot, Registry as ObsRegistry};
use dptd_protocol::budget::BudgetAccountant;
use dptd_protocol::campaign::{CampaignConfig, CampaignDriver, RoundBackend};
use dptd_protocol::message::StampedReport;
use dptd_protocol::ProtocolError;
use dptd_stats::digest::fnv1a_f64s;
use dptd_truth::Loss;

use crate::wire::{
    validate_campaign_id, CampaignSpec, ErrorCode, MetricsReport, Request, Response,
};

/// Server-side limits and the WAL root.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Root directory for durable campaigns; campaign `id` logs to
    /// `<root>/<id>`. `None` refuses durable creates.
    pub wal_root: Option<PathBuf>,
    /// Hard cap on concurrently hosted campaigns.
    pub max_campaigns: usize,
    /// Hard cap on a single campaign's population (a `CreateCampaign`
    /// claiming more is refused before the server allocates `O(users)`).
    pub max_users_per_campaign: u64,
    /// Rotation/compaction thresholds applied to every durable
    /// campaign's segmented store (`dptd serve --wal-rotate-bytes /
    /// --wal-rotate-records / --wal-compact-every`).
    pub store: StoreConfig,
}

impl Default for RegistryConfig {
    /// No WAL root, 1024 campaigns, 4 Mi users per campaign, default
    /// store thresholds.
    fn default() -> Self {
        Self {
            wal_root: None,
            max_campaigns: 1024,
            max_users_per_campaign: 4 << 20,
            store: StoreConfig::default(),
        }
    }
}

/// One hosted campaign. The slot mutex serializes submissions and round
/// closes for this campaign only.
#[derive(Debug)]
struct CampaignSlot {
    state: Mutex<CampaignState>,
}

#[derive(Debug)]
struct CampaignState {
    driver: CampaignDriver<EngineBackend>,
    /// Reports awaiting the next `CloseRound`, in submission order.
    pending: Vec<StampedReport>,
    /// One round of lookahead: reports already submitted for the epoch
    /// *after* the next close (an eager client racing a slow closer).
    /// Promoted to `pending` when the round ahead of them closes, so a
    /// busy-retrying submitter can make progress without waiting for
    /// the close to happen between its retries.
    future: Vec<StampedReport>,
    /// The bounded queue's capacity (`pending` + `future` combined).
    capacity: usize,
    /// The epoch the next round will run as (advances only on a
    /// successful close, so a failed round can be retried).
    next_epoch: u64,
    /// Truths from the last successful round (empty before the first).
    last_truths: Vec<f64>,
    /// Held for the campaign's lifetime when durable: a second live
    /// writer on the same WAL directory is refused at create. Released
    /// explicitly by [`CampaignRegistry::finalize`] on orderly
    /// shutdown.
    wal_lock: Option<WalLock>,
}

/// Aggregate counters across every campaign (for the `dptd serve`
/// shutdown summary and the throughput bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Campaigns created (including WAL resumes).
    pub campaigns_created: u64,
    /// Reports accepted into submission queues.
    pub reports_submitted: u64,
    /// Rounds successfully closed.
    pub rounds_closed: u64,
    /// Durable campaigns finalized (WAL flushed, lock released) at
    /// shutdown; volatile campaigns are not counted.
    pub campaigns_flushed: u64,
    /// Campaigns whose shutdown WAL sync failed (locks still released).
    pub sync_failures: u64,
}

/// The shared multi-campaign state behind the TCP front end.
#[derive(Debug)]
pub struct CampaignRegistry {
    config: RegistryConfig,
    campaigns: Mutex<BTreeMap<String, Arc<CampaignSlot>>>,
    campaigns_created: AtomicU64,
    reports_submitted: AtomicU64,
    rounds_closed: AtomicU64,
    /// Event-driven metrics: per-campaign refusal frequencies, WAL
    /// bytes, quarantine flags. Engine-derived counters (stage busy
    /// time, ingest histograms) are sampled from each campaign's driver
    /// at snapshot time instead of being double-accounted here.
    obs: ObsRegistry,
    /// Total requests dispatched — a cached handle so the hot path
    /// never takes the obs registry's name-lookup lock.
    server_requests: Counter,
    /// The front end's connection accounting plus its I/O thread
    /// count, attached by the server after the front end starts.
    conn: Mutex<Option<(Arc<crate::frontend::FrontendStats>, u64)>>,
}

/// Feeds every durable WAL write into the campaign's
/// `campaign.<id>.wal_bytes` counter — an infallible [`StoreObserver`],
/// so observability can never fail (or reorder) the primary's writes.
#[derive(Debug)]
struct WalBytesObserver {
    bytes: Counter,
}

impl StoreObserver for WalBytesObserver {
    fn on_append(&mut self, _name: &str, bytes: &[u8]) {
        self.bytes.add(bytes.len() as u64);
    }
    fn on_write_atomic(&mut self, _name: &str, bytes: &[u8]) {
        self.bytes.add(bytes.len() as u64);
    }
    fn on_truncate(&mut self, _name: &str, _len: u64) {}
    fn on_remove(&mut self, _name: &str) {}
}

fn refuse(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

/// Lock a campaign slot's state for serving.
///
/// A poisoned lock means a worker panicked mid-request on this campaign:
/// its in-memory round state (pending queue, carried weights, budget
/// ledger) cannot be trusted half-mutated, so the campaign is
/// **quarantined** behind a typed error frame. Every later request on the
/// slot gets the same refusal instead of a cascading panic killing its
/// connection; other campaigns — and the registry itself — keep serving.
/// A durable campaign recovers by restart (WAL replay); a volatile one by
/// recreate.
fn lock_campaign<'a>(
    slot: &'a CampaignSlot,
    campaign: &str,
) -> Result<MutexGuard<'a, CampaignState>, Response> {
    slot.state.lock().map_err(|_| {
        refuse(
            ErrorCode::CampaignQuarantined,
            format!(
                "campaign `{campaign}` is quarantined: a worker panicked while \
                 updating it; recreate the campaign (or restart the server to \
                 replay its WAL) to recover"
            ),
        )
    })
}

/// Map a campaign-layer failure onto a stable wire error code.
fn protocol_refusal(e: &ProtocolError) -> Response {
    let code = match e {
        ProtocolError::InvalidParameter { .. } => ErrorCode::InvalidRequest,
        ProtocolError::InsufficientCoverage { .. } => ErrorCode::InsufficientCoverage,
        ProtocolError::Backend { message, .. } if message.contains("write-ahead log") => {
            ErrorCode::WalRefused
        }
        _ => ErrorCode::Internal,
    };
    refuse(code, e.to_string())
}

impl CampaignRegistry {
    /// An empty registry under `config`.
    pub fn new(config: RegistryConfig) -> Self {
        let obs = ObsRegistry::new();
        let server_requests = obs.counter(names::SERVER_REQUESTS);
        Self {
            config,
            campaigns: Mutex::new(BTreeMap::new()),
            campaigns_created: AtomicU64::new(0),
            reports_submitted: AtomicU64::new(0),
            rounds_closed: AtomicU64::new(0),
            obs,
            server_requests,
            conn: Mutex::new(None),
        }
    }

    /// Attach the front end's connection accounting (and its I/O
    /// thread count) so `QueryMetrics` / `QueryStatus` can report
    /// them. Called by [`crate::Server::start`] once the front end is
    /// up; before that, connection counts read as zero.
    pub fn set_conn_stats(&self, stats: Arc<crate::frontend::FrontendStats>, io_threads: usize) {
        *self.conn.lock().unwrap_or_else(PoisonError::into_inner) =
            Some((stats, io_threads as u64));
    }

    /// `(live, accepted, refused, io_threads)` from the attached front
    /// end, zeros before one is attached.
    fn conn_counts(&self) -> (u64, u64, u64, u64) {
        let conn = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
        match conn.as_ref() {
            Some((stats, io_threads)) => (
                stats.live.load(Ordering::Relaxed) as u64,
                stats.accepted.load(Ordering::Relaxed),
                stats.refused.load(Ordering::Relaxed),
                *io_threads,
            ),
            None => (0, 0, 0, 0),
        }
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            campaigns_created: self.campaigns_created.load(Ordering::Relaxed),
            reports_submitted: self.reports_submitted.load(Ordering::Relaxed),
            rounds_closed: self.rounds_closed.load(Ordering::Relaxed),
            campaigns_flushed: 0,
            sync_failures: 0,
        }
    }

    /// The registry map's mutex only guards `BTreeMap` bookkeeping — no
    /// campaign state lives under it — so a poisoned map lock (some other
    /// thread panicked between map operations) has nothing half-mutated
    /// to protect: recover the guard and keep serving.
    fn campaigns_map(&self) -> MutexGuard<'_, BTreeMap<String, Arc<CampaignSlot>>> {
        self.campaigns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Campaigns currently hosted.
    pub fn campaign_count(&self) -> usize {
        self.campaigns_map().len()
    }

    /// Orderly shutdown of every hosted campaign: flush + fsync each
    /// durable campaign's active WAL segment and release its advisory
    /// writer lock **now**, instead of relying on process-exit `Drop`
    /// order. Returns `(durable campaigns flushed, sync failures)`;
    /// locks are released even when a sync fails. The registry hosts
    /// nothing afterwards — callers run this after the accept loop has
    /// stopped.
    pub fn finalize(&self) -> (usize, usize) {
        // The shutdown black box is cut before campaigns drain, so the
        // bundle shows the fleet as it was, not an empty registry.
        let parting = self.status_snapshot();
        let drained = std::mem::take(&mut *self.campaigns_map());
        let mut flushed = 0usize;
        let mut failures = 0usize;
        for slot in drained.into_values() {
            // Shutdown is best-effort even for a quarantined campaign:
            // recover a poisoned guard so the WAL still gets a final
            // flush attempt and the advisory writer lock is released for
            // the successor process.
            let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            // Only durable campaigns hold a lock and a log; counting
            // volatile ones as "flushed" would tell the operator state
            // was persisted that never existed.
            if state.wal_lock.is_none() {
                continue;
            }
            if state.driver.backend_mut().sync_log().is_err() {
                failures += 1;
            }
            // Dropping the lock handle releases the OS file lock; a
            // successor writer (a restarted server, a CLI resume) can
            // acquire the directory immediately.
            state.wal_lock = None;
            flushed += 1;
        }
        dptd_obs::flight::global().freeze("shutdown", parting);
        (flushed, failures)
    }

    /// Force-quarantine a campaign by poisoning its state lock — byte
    /// for byte what a worker panic mid-request produces. Returns
    /// whether the lock is now poisoned. Hidden seam for exercising the
    /// quarantine → flight-recorder path from integration tests.
    #[doc(hidden)]
    pub fn poison_campaign(&self, campaign: &str) -> bool {
        let Ok(slot) = self.slot(campaign) else {
            return false;
        };
        let poisoner = Arc::clone(&slot);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            panic!("poison_campaign: deliberate panic while holding the state lock");
        })
        .join();
        let poisoned = slot.state.lock().is_err();
        poisoned
    }

    /// Execute one request. Every failure is a typed
    /// [`Response::Error`] — the connection layer only transports.
    ///
    /// Also the per-campaign error-frequency accounting seam: every
    /// `Busy` and every budget / WAL / quarantine refusal that leaves
    /// here bumps its campaign's `campaign.<id>.refused.*` counter, so
    /// the counters cover both I/O models and the in-process path
    /// without per-site bookkeeping.
    pub fn handle(&self, request: Request) -> Response {
        self.server_requests.incr();
        let campaign_id = match &request {
            Request::CreateCampaign { campaign, .. }
            | Request::SubmitReports { campaign, .. }
            | Request::CloseRound { campaign, .. }
            | Request::QueryTruths { campaign }
            | Request::QueryBudget { campaign }
            | Request::QueryMetrics { campaign }
            | Request::SubmitReportsStream { campaign, .. } => Some(campaign.clone()),
            _ => None,
        };
        let response = self.dispatch(request);
        if let Some(id) = campaign_id {
            self.count_refusal(&id, &response);
        }
        response
    }

    /// Bump the campaign's error-frequency counter for a refusal
    /// response. Refusal paths only — the common accept path never
    /// touches the obs registry's lock.
    ///
    /// Also the flight-recorder trigger seam: a quarantine refusal
    /// freezes a bundle immediately (the rings that explain the panic
    /// are still warm), and a typed-refusal **storm** — too many
    /// consecutive refusals with no accept between them — freezes one
    /// too, so an operator gets a black box even when no single refusal
    /// is fatal.
    fn count_refusal(&self, campaign: &str, response: &Response) {
        let flight = dptd_obs::flight::global();
        let suffix = match response {
            Response::Busy { .. } => names::REFUSED_BUSY,
            Response::Error { code, .. } => match code {
                ErrorCode::BudgetExhausted => names::REFUSED_BUDGET,
                ErrorCode::WalRefused => names::REFUSED_WAL,
                ErrorCode::CampaignQuarantined => {
                    self.obs
                        .gauge(&names::campaign_metric(campaign, names::QUARANTINED))
                        .set(1);
                    names::REFUSED_QUARANTINED
                }
                _ => {
                    flight.note_accept();
                    return;
                }
            },
            _ => {
                flight.note_accept();
                return;
            }
        };
        self.obs
            .counter(&names::campaign_metric(campaign, suffix))
            .incr();
        let storm = flight.note_refusal();
        if suffix == names::REFUSED_QUARANTINED {
            flight.freeze("quarantine", self.status_snapshot());
        } else if storm {
            flight.freeze("refusal-storm", self.status_snapshot());
        }
    }

    fn dispatch(&self, request: Request) -> Response {
        match request {
            Request::CreateCampaign { campaign, spec } => self.create(&campaign, &spec),
            Request::SubmitReports {
                campaign,
                reports,
                ctx,
            } => self.submit(&campaign, reports, ctx),
            Request::CloseRound { campaign, epoch } => self.close_round(&campaign, epoch),
            Request::QueryTruths { campaign } => self.query_truths(&campaign),
            Request::QueryBudget { campaign } => self.query_budget(&campaign),
            Request::QueryMetrics { campaign } => self.query_metrics(&campaign),
            Request::QueryStatus => Response::Status {
                snapshot: self.status_snapshot(),
            },
            Request::QueryTrace => Response::TraceDump {
                anchor_ns: dptd_obs::trace::wall_anchor_ns(),
                dropped: dptd_obs::trace::dropped_events(),
                events: dptd_obs::trace::collect(),
            },
            // Pipelined batches carry per-connection sequencing state,
            // which only the connection front end holds; one reaching
            // the registry directly bypassed the cumulative-ack
            // protocol.
            Request::SubmitReportsStream { .. } => refuse(
                ErrorCode::InvalidRequest,
                "streamed submit batches are handled by the connection front end",
            ),
            // Cluster-peer frames: a plain campaign server is not a
            // cluster node. The refusal is typed so a misconfigured
            // coordinator learns *what* it dialled, not just "error".
            Request::NodeHello { .. }
            | Request::CloseRoundPrepare { .. }
            | Request::CloseRoundCommit { .. }
            | Request::ReplicateSegment { .. }
            | Request::QueryLedger { .. } => refuse(
                ErrorCode::InvalidRequest,
                "this server is not a cluster node (start one with `dptd cluster serve`)",
            ),
        }
    }

    fn slot(&self, campaign: &str) -> Result<Arc<CampaignSlot>, Response> {
        self.campaigns_map().get(campaign).cloned().ok_or_else(|| {
            refuse(
                ErrorCode::UnknownCampaign,
                format!("no campaign `{campaign}`"),
            )
        })
    }

    fn create(&self, campaign: &str, spec: &CampaignSpec) -> Response {
        if let Err(e) = validate_campaign_id(campaign) {
            return refuse(ErrorCode::InvalidRequest, e.to_string());
        }
        if spec.num_users > self.config.max_users_per_campaign {
            return refuse(
                ErrorCode::InvalidRequest,
                format!(
                    "population {} exceeds the server's {}-user cap",
                    spec.num_users, self.config.max_users_per_campaign
                ),
            );
        }
        if spec.submission_capacity == 0 {
            return refuse(
                ErrorCode::InvalidRequest,
                "submission_capacity must be positive",
            );
        }
        // Fast-fail on a taken id before building an engine; the
        // authoritative check is the insert below.
        {
            let map = self.campaigns_map();
            if map.contains_key(campaign) {
                return refuse(
                    ErrorCode::CampaignExists,
                    format!("campaign `{campaign}` is already live"),
                );
            }
            if map.len() >= self.config.max_campaigns {
                return refuse(
                    ErrorCode::InvalidRequest,
                    format!("server at its {}-campaign cap", self.config.max_campaigns),
                );
            }
        }

        let per_round_loss = match PrivacyLoss::new(spec.per_round_epsilon, spec.per_round_delta) {
            Ok(l) => l,
            Err(e) => return refuse(ErrorCode::InvalidRequest, e.to_string()),
        };
        let budget = match PrivacyLoss::new(spec.budget_epsilon, spec.budget_delta) {
            Ok(l) => l,
            Err(e) => return refuse(ErrorCode::InvalidRequest, e.to_string()),
        };
        let campaign_cfg = CampaignConfig {
            num_objects: spec.num_objects as usize,
            deadline_us: spec.deadline_us,
            per_round_loss,
            budget,
        };
        let engine = match Engine::new(EngineConfig {
            num_users: spec.num_users as usize,
            num_objects: spec.num_objects as usize,
            num_shards: spec.num_shards as usize,
            workers: spec.workers as usize,
            queue_capacity: spec.engine_queue as usize,
            epoch_deadline_us: spec.deadline_us,
            loss: Loss::Squared,
            merge_workers: 0,
        }) {
            Ok(e) => e,
            Err(e) => return refuse(ErrorCode::InvalidRequest, e.to_string()),
        };

        let (driver, next_epoch, resumed_rounds, wal_lock) = if spec.durable {
            let Some(root) = &self.config.wal_root else {
                return refuse(
                    ErrorCode::WalRefused,
                    "durable campaigns need a server started with --wal <root>",
                );
            };
            let dir = root.join(campaign);
            // Advisory single-writer lock, held for the campaign's
            // lifetime: a second live writer (another server, a CLI
            // campaign) on this directory is refused here, at open.
            let lock = match WalLock::acquire(&dir) {
                Ok(l) => l,
                Err(e) => return refuse(ErrorCode::WalRefused, e.to_string()),
            };
            // The segmented snapshot store: rotation + compaction per
            // the registry's thresholds, legacy single-segment dirs
            // adopted in place. The directory is observed so every
            // durable byte lands in the campaign's `wal_bytes` counter.
            let fs = match DirFs::open(&dir) {
                Ok(f) => f,
                Err(e) => return refuse(ErrorCode::WalRefused, e.to_string()),
            };
            let observed = ObservedFs::new(
                Box::new(fs),
                Box::new(WalBytesObserver {
                    bytes: self
                        .obs
                        .counter(&names::campaign_metric(campaign, names::WAL_BYTES)),
                }),
            );
            let (store, replay) = match SegmentStore::open(Box::new(observed), self.config.store) {
                Ok(s) => s,
                Err(e) => return refuse(ErrorCode::WalRefused, e.to_string()),
            };
            // Stamp the client's stream fingerprint into every record:
            // resuming this log under a different stream (or different
            // privacy flags) is refused by recovery instead of silently
            // reinterpreting the ledger.
            let policy = WalPolicy::from_campaign(&campaign_cfg).with_stream_tag(spec.stream_tag);
            let (backend, recovered) =
                match EngineBackend::with_log(engine, Box::new(store), &replay, policy) {
                    Ok(out) => out,
                    Err(e) => return refuse(ErrorCode::WalRefused, e.to_string()),
                };
            let next = recovered.next_epoch();
            let applied = recovered.records_applied;
            let driver = match CampaignDriver::resume(
                backend,
                campaign_cfg,
                recovered.rounds_debited,
                applied.min(u64::from(u32::MAX)) as u32,
            ) {
                Ok(d) => d,
                Err(e) => return protocol_refusal(&e),
            };
            (driver, next, applied, Some(lock))
        } else {
            let backend = match EngineBackend::new(engine) {
                Ok(b) => b,
                Err(e) => return refuse(ErrorCode::InvalidRequest, e.to_string()),
            };
            let driver = match CampaignDriver::new(backend, campaign_cfg) {
                Ok(d) => d,
                Err(e) => return protocol_refusal(&e),
            };
            (driver, 0, 0, None)
        };

        let slot = Arc::new(CampaignSlot {
            state: Mutex::new(CampaignState {
                driver,
                pending: Vec::new(),
                future: Vec::new(),
                capacity: spec.submission_capacity as usize,
                next_epoch,
                last_truths: Vec::new(),
                wal_lock,
            }),
        });
        let mut map = self.campaigns_map();
        // Authoritative re-checks: the fast-fail above ran before the
        // engine was built, and a concurrent create may have won either
        // the id or the last cap slot in the meantime.
        if map.contains_key(campaign) {
            return refuse(
                ErrorCode::CampaignExists,
                format!("campaign `{campaign}` is already live"),
            );
        }
        if map.len() >= self.config.max_campaigns {
            return refuse(
                ErrorCode::InvalidRequest,
                format!("server at its {}-campaign cap", self.config.max_campaigns),
            );
        }
        map.insert(campaign.to_string(), slot);
        drop(map);
        self.campaigns_created.fetch_add(1, Ordering::Relaxed);
        Response::Created { resumed_rounds }
    }

    fn submit(
        &self,
        campaign: &str,
        reports: Vec<StampedReport>,
        ctx: Option<dptd_obs::SpanContext>,
    ) -> Response {
        // Adopt the client's span as this thread's ambient context for
        // the duration of the request: the SUBMIT / QUEUE_FULL instants
        // below then causally link to the sender's trace. Gated on the
        // local tracing switch so an untraced server ignores contexts.
        let _ctx_guard = ctx
            .filter(|_| dptd_obs::trace::enabled())
            .map(dptd_obs::trace::enter);
        let slot = match self.slot(campaign) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let mut state = match lock_campaign(&slot, campaign) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let num_users = state.driver.backend().num_users();
        let queued = (state.pending.len() + state.future.len()) as u64;
        let Some(first) = reports.first() else {
            return Response::Submitted { queued };
        };
        let epoch = first.epoch;
        for r in &reports {
            if r.epoch != epoch {
                return refuse(
                    ErrorCode::InvalidRequest,
                    "a submission batch must carry a single epoch",
                );
            }
            if r.report.user >= num_users {
                return refuse(
                    ErrorCode::InvalidRequest,
                    format!(
                        "user {} outside the {num_users}-user population",
                        r.report.user
                    ),
                );
            }
        }
        // The queue buffers the next round plus one round of lookahead;
        // anything staler or further ahead is a client-side epoch bug.
        if epoch != state.next_epoch && epoch != state.next_epoch + 1 {
            return refuse(
                ErrorCode::InvalidRequest,
                format!(
                    "report for epoch {epoch} but campaign `{campaign}` is on round {} \
                     (one round of lookahead is buffered)",
                    state.next_epoch
                ),
            );
        }
        // Bounded queue, batch-atomic: either the whole batch fits or
        // nothing is taken and the client sees explicit backpressure.
        if state.pending.len() + state.future.len() + reports.len() > state.capacity {
            dptd_obs::trace::instant(dptd_obs::codes::QUEUE_FULL, queued);
            return Response::Busy {
                queued,
                capacity: state.capacity as u64,
            };
        }
        let batch = reports.len() as u64;
        dptd_obs::trace::instant(dptd_obs::codes::SUBMIT, batch);
        if epoch == state.next_epoch {
            state.pending.extend(reports);
        } else {
            state.future.extend(reports);
        }
        self.reports_submitted.fetch_add(batch, Ordering::Relaxed);
        Response::Submitted {
            queued: (state.pending.len() + state.future.len()) as u64,
        }
    }

    fn close_round(&self, campaign: &str, epoch: u64) -> Response {
        let slot = match self.slot(campaign) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let mut state = match lock_campaign(&slot, campaign) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        if epoch != state.next_epoch {
            return refuse(
                ErrorCode::InvalidRequest,
                format!(
                    "cannot close epoch {epoch}: campaign `{campaign}` is on round {}",
                    state.next_epoch
                ),
            );
        }
        let reports = std::mem::take(&mut state.pending);
        dptd_obs::trace::instant(dptd_obs::codes::DEQUEUE, reports.len() as u64);
        // Surface an all-refused round as the budget error it is, before
        // the engine turns it into a bare coverage failure. Observable
        // state is identical either way: nothing is debited, the round
        // does not advance, and the submitted batch is consumed.
        if !reports.is_empty() {
            let ledger = state.driver.accountant();
            if reports.iter().all(|r| !ledger.can_spend(r.report.user)) {
                return refuse(
                    ErrorCode::BudgetExhausted,
                    format!(
                        "every submitting user's privacy budget is exhausted \
                         ({} of {} users spent out)",
                        ledger.exhausted_count(),
                        ledger.num_users()
                    ),
                );
            }
        }
        match state.driver.run_round(epoch, reports) {
            Ok(round) => {
                state.next_epoch += 1;
                // The lookahead buffer was for exactly this new epoch.
                state.pending = std::mem::take(&mut state.future);
                state.last_truths = round.truths.clone();
                self.rounds_closed.fetch_add(1, Ordering::Relaxed);
                Response::RoundClosed {
                    epoch,
                    accepted: round.accepted as u64,
                    refused: round.refused_users as u64,
                    duplicates: round.duplicates_discarded,
                    late: round.late_dropped,
                    truths: round.truths,
                    weights_digest: fnv1a_f64s(&round.weights),
                    max_spent_epsilon: round.max_spent.epsilon(),
                    max_spent_delta: round.max_spent.delta(),
                }
            }
            Err(e) => protocol_refusal(&e),
        }
    }

    fn query_truths(&self, campaign: &str) -> Response {
        let slot = match self.slot(campaign) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let state = match lock_campaign(&slot, campaign) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        Response::Truths {
            rounds_run: u64::from(state.driver.rounds_run()),
            truths: state.last_truths.clone(),
            weights_digest: fnv1a_f64s(state.driver.backend().current_weights()),
        }
    }

    fn query_metrics(&self, campaign: &str) -> Response {
        let slot = match self.slot(campaign) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let state = match lock_campaign(&slot, campaign) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let m = state.driver.backend().metrics();
        let ns = |d: Option<std::time::Duration>| {
            d.map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        };
        let (conn_live, conn_accepted, conn_refused, io_threads) = self.conn_counts();
        Response::Metrics {
            metrics: Box::new(MetricsReport {
                reports_submitted: m.reports_submitted,
                reports_accepted: m.reports_accepted,
                duplicates_discarded: m.duplicates_discarded,
                late_dropped: m.late_dropped,
                out_of_order_dropped: m.out_of_order_dropped,
                backpressure_stalls: m.backpressure_stalls,
                epochs_merged: m.epochs_merged,
                max_queue_depth: m.max_queue_depth as u64,
                queue_depth: (state.pending.len() + state.future.len()) as u64,
                throughput_rps: m.throughput_rps(),
                ingest_p50_ns: ns(m.ingest_latency.p50()),
                ingest_p99_ns: ns(m.ingest_latency.p99()),
                conn_live,
                conn_accepted,
                conn_refused,
                io_threads,
            }),
        }
    }

    /// The full observability snapshot behind [`Request::QueryStatus`]:
    /// the event-driven registry (refusal frequencies, WAL bytes,
    /// quarantine flags, request totals) plus, per campaign, counters
    /// sampled live from the engine — cumulative stage-busy time,
    /// ingest latency histogram, queue depth — under the
    /// `campaign.<id>.*` names in [`dptd_obs::names`]. Fair-share
    /// views ([`MetricsSnapshot::campaign_shares`]) are computed by the
    /// consumer from these counters.
    pub fn status_snapshot(&self) -> MetricsSnapshot {
        let snap = self.status_snapshot_inner();
        // Every status cut also lands in the flight recorder's bounded
        // ring: the periodic `--watch` poll becomes the black box's
        // history for free.
        dptd_obs::flight::global().record("status", snap.clone());
        snap
    }

    fn status_snapshot_inner(&self) -> MetricsSnapshot {
        let mut snap = self.obs.snapshot();
        let (live, accepted, refused, io_threads) = self.conn_counts();
        snap.set(
            names::SERVER_CONN_LIVE.to_string(),
            MetricValue::Gauge(live),
        );
        snap.set(
            names::SERVER_CONN_ACCEPTED.to_string(),
            MetricValue::Counter(accepted),
        );
        snap.set(
            names::SERVER_CONN_REFUSED.to_string(),
            MetricValue::Counter(refused),
        );
        snap.set(
            names::SERVER_IO_THREADS.to_string(),
            MetricValue::Gauge(io_threads),
        );
        let slots: Vec<(String, Arc<CampaignSlot>)> = self
            .campaigns_map()
            .iter()
            .map(|(id, slot)| (id.clone(), Arc::clone(slot)))
            .collect();
        for (id, slot) in slots {
            let metric = |suffix: &str| names::campaign_metric(&id, suffix);
            let Ok(state) = slot.state.lock() else {
                // Quarantined: its engine state cannot be read, but the
                // flag itself must be visible even before the first
                // refusal bumps it.
                snap.set(metric(names::QUARANTINED), MetricValue::Gauge(1));
                continue;
            };
            let m = state.driver.backend().metrics();
            let busy_ns = |d: std::time::Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            snap.set(
                metric(names::ROUTE_BUSY_NS),
                MetricValue::Counter(busy_ns(m.stage.route)),
            );
            snap.set(
                metric(names::FILTER_BUSY_NS),
                MetricValue::Counter(busy_ns(m.stage.filter)),
            );
            snap.set(
                metric(names::MERGE_BUSY_NS),
                MetricValue::Counter(busy_ns(m.stage.merge)),
            );
            snap.set(
                metric(names::QUEUE_DEPTH),
                MetricValue::Gauge((state.pending.len() + state.future.len()) as u64),
            );
            snap.set(
                metric(names::SUBMITTED),
                MetricValue::Counter(m.reports_submitted),
            );
            snap.set(
                metric(names::ACCEPTED),
                MetricValue::Counter(m.reports_accepted),
            );
            snap.set(
                metric(names::DROPPED),
                MetricValue::Counter(
                    m.duplicates_discarded + m.late_dropped + m.out_of_order_dropped,
                ),
            );
            snap.set(metric(names::ROUNDS), MetricValue::Counter(m.epochs_merged));
            snap.set(
                metric(names::INGEST_LATENCY),
                MetricValue::Histogram(m.ingest_latency.snapshot()),
            );
        }
        snap
    }

    fn query_budget(&self, campaign: &str) -> Response {
        let slot = match self.slot(campaign) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let state = match lock_campaign(&slot, campaign) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let ledger: &BudgetAccountant = state.driver.accountant();
        Response::Budget {
            exhausted: ledger.exhausted_count() as u64,
            max_spent_epsilon: ledger.max_spent().epsilon(),
            max_spent_delta: ledger.max_spent().delta(),
            debits: ledger.debits_by_user().to_vec(),
        }
    }
}

impl crate::frontend::RequestHandler for CampaignRegistry {
    fn handle(&self, request: Request) -> Response {
        // `Type::method` resolves to the inherent `handle` above, not
        // back into this trait method.
        CampaignRegistry::handle(self, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_core::roles::PerturbedReport;

    fn spec(users: u64, capacity: u64) -> CampaignSpec {
        CampaignSpec {
            num_users: users,
            num_objects: 1,
            num_shards: 2,
            workers: 0,
            engine_queue: 1024,
            deadline_us: 1_000,
            submission_capacity: capacity,
            per_round_epsilon: 0.5,
            per_round_delta: 0.0,
            budget_epsilon: 1.0,
            budget_delta: 0.0,
            stream_tag: 0,
            durable: false,
        }
    }

    fn stamped(epoch: u64, user: usize, sent_at_us: u64, v: f64) -> StampedReport {
        StampedReport {
            epoch,
            sent_at_us,
            report: PerturbedReport {
                user,
                values: vec![(0, v)],
            },
        }
    }

    fn registry() -> CampaignRegistry {
        CampaignRegistry::new(RegistryConfig::default())
    }

    fn create(reg: &CampaignRegistry, id: &str, s: CampaignSpec) -> Response {
        reg.handle(Request::CreateCampaign {
            campaign: id.to_string(),
            spec: s,
        })
    }

    #[test]
    fn campaign_lifecycle_round_trips() {
        let reg = registry();
        assert_eq!(
            create(&reg, "c", spec(2, 64)),
            Response::Created { resumed_rounds: 0 }
        );
        assert_eq!(reg.campaign_count(), 1);

        let resp = reg.handle(Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![stamped(0, 0, 1, 1.0), stamped(0, 1, 2, 2.0)],
            ctx: None,
        });
        assert_eq!(resp, Response::Submitted { queued: 2 });

        let resp = reg.handle(Request::CloseRound {
            campaign: "c".to_string(),
            epoch: 0,
        });
        let Response::RoundClosed {
            epoch, accepted, ..
        } = resp
        else {
            panic!("expected RoundClosed, got {resp:?}");
        };
        assert_eq!((epoch, accepted), (0, 2));

        let resp = reg.handle(Request::QueryBudget {
            campaign: "c".to_string(),
        });
        let Response::Budget { debits, .. } = resp else {
            panic!("expected Budget, got {resp:?}");
        };
        assert_eq!(debits, vec![1, 1]);
        assert_eq!(reg.stats().rounds_closed, 1);
        assert_eq!(reg.stats().reports_submitted, 2);
    }

    #[test]
    fn duplicate_ids_and_unknown_campaigns_are_typed_errors() {
        let reg = registry();
        create(&reg, "c", spec(2, 64));
        let resp = create(&reg, "c", spec(2, 64));
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::CampaignExists,
                    ..
                }
            ),
            "{resp:?}"
        );
        let resp = reg.handle(Request::QueryTruths {
            campaign: "ghost".to_string(),
        });
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownCampaign,
                ..
            }
        ));
    }

    #[test]
    fn submission_queue_is_bounded_and_batch_atomic() {
        let reg = registry();
        create(&reg, "c", spec(8, 3));
        let batch: Vec<_> = (0..3).map(|u| stamped(0, u, 1, u as f64)).collect();
        assert_eq!(
            reg.handle(Request::SubmitReports {
                campaign: "c".to_string(),
                reports: batch,
                ctx: None,
            }),
            Response::Submitted { queued: 3 }
        );
        // One more report would overflow: Busy, and nothing taken.
        assert_eq!(
            reg.handle(Request::SubmitReports {
                campaign: "c".to_string(),
                reports: vec![stamped(0, 3, 1, 3.0)],
                ctx: None,
            }),
            Response::Busy {
                queued: 3,
                capacity: 3
            }
        );
        // Closing drains the queue; submissions flow again.
        let resp = reg.handle(Request::CloseRound {
            campaign: "c".to_string(),
            epoch: 0,
        });
        assert!(matches!(resp, Response::RoundClosed { .. }), "{resp:?}");
        assert_eq!(
            reg.handle(Request::SubmitReports {
                campaign: "c".to_string(),
                reports: vec![stamped(1, 3, 1, 3.0)],
                ctx: None,
            }),
            Response::Submitted { queued: 1 }
        );
    }

    #[test]
    fn wrong_epoch_submissions_and_closes_are_refused() {
        let reg = registry();
        create(&reg, "c", spec(2, 64));
        let resp = reg.handle(Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![stamped(5, 0, 1, 1.0)],
            ctx: None,
        });
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::InvalidRequest,
                    ..
                }
            ),
            "{resp:?}"
        );
        let resp = reg.handle(Request::CloseRound {
            campaign: "c".to_string(),
            epoch: 3,
        });
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::InvalidRequest,
                ..
            }
        ));
        // Out-of-population users are refused at submit, with nothing
        // queued.
        let resp = reg.handle(Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![stamped(0, 99, 1, 1.0)],
            ctx: None,
        });
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::InvalidRequest,
                ..
            }
        ));
    }

    #[test]
    fn budget_exhaustion_surfaces_as_a_typed_wire_error() {
        let reg = registry();
        // (0.5, 0) per round against a (1.0, 0) budget: two rounds each.
        create(&reg, "c", spec(2, 64));
        for epoch in 0..2u64 {
            reg.handle(Request::SubmitReports {
                campaign: "c".to_string(),
                reports: vec![stamped(epoch, 0, 1, 1.0), stamped(epoch, 1, 2, 2.0)],
                ctx: None,
            });
            let resp = reg.handle(Request::CloseRound {
                campaign: "c".to_string(),
                epoch,
            });
            assert!(matches!(resp, Response::RoundClosed { .. }), "{resp:?}");
        }
        // Round 3: everyone is spent out — a typed BudgetExhausted, and
        // the round stays retryable (epoch does not advance).
        reg.handle(Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![stamped(2, 0, 1, 1.0), stamped(2, 1, 2, 2.0)],
            ctx: None,
        });
        let resp = reg.handle(Request::CloseRound {
            campaign: "c".to_string(),
            epoch: 2,
        });
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::BudgetExhausted,
                    ..
                }
            ),
            "{resp:?}"
        );
        let resp = reg.handle(Request::QueryBudget {
            campaign: "c".to_string(),
        });
        let Response::Budget {
            exhausted, debits, ..
        } = resp
        else {
            panic!("expected Budget, got {resp:?}");
        };
        assert_eq!(exhausted, 2);
        assert_eq!(debits, vec![2, 2]); // the failed round debited nothing
    }

    #[test]
    fn one_round_of_lookahead_is_buffered_and_promoted() {
        let reg = registry();
        create(&reg, "c", spec(4, 64));
        // Next round is 0; an epoch-1 report parks in the lookahead
        // buffer instead of being refused.
        assert_eq!(
            reg.handle(Request::SubmitReports {
                campaign: "c".to_string(),
                reports: vec![stamped(1, 2, 1, 2.0)],
                ctx: None,
            }),
            Response::Submitted { queued: 1 }
        );
        // Epoch 2 is beyond the one-round lookahead: refused.
        let resp = reg.handle(Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![stamped(2, 0, 1, 1.0)],
            ctx: None,
        });
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::InvalidRequest,
                    ..
                }
            ),
            "{resp:?}"
        );
        // Mixed-epoch batches are refused outright.
        let resp = reg.handle(Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![stamped(0, 0, 1, 1.0), stamped(1, 1, 2, 2.0)],
            ctx: None,
        });
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::InvalidRequest,
                    ..
                }
            ),
            "{resp:?}"
        );
        // Round 0 closes over its own reports only…
        reg.handle(Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![stamped(0, 0, 1, 1.0), stamped(0, 1, 2, 2.0)],
            ctx: None,
        });
        let resp = reg.handle(Request::CloseRound {
            campaign: "c".to_string(),
            epoch: 0,
        });
        let Response::RoundClosed { accepted, .. } = resp else {
            panic!("expected RoundClosed, got {resp:?}");
        };
        assert_eq!(accepted, 2);
        // …and the parked epoch-1 report was promoted: round 1 sees it.
        let resp = reg.handle(Request::CloseRound {
            campaign: "c".to_string(),
            epoch: 1,
        });
        let Response::RoundClosed { accepted, .. } = resp else {
            panic!("expected RoundClosed, got {resp:?}");
        };
        assert_eq!(accepted, 1);
    }

    #[test]
    fn metrics_are_observable_per_campaign() {
        let reg = registry();
        create(&reg, "c", spec(2, 64));
        reg.handle(Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![stamped(0, 0, 1, 1.0)],
            ctx: None,
        });
        let resp = reg.handle(Request::QueryMetrics {
            campaign: "c".to_string(),
        });
        let Response::Metrics { metrics } = resp else {
            panic!("expected Metrics, got {resp:?}");
        };
        assert_eq!(metrics.queue_depth, 1);
        assert_eq!(metrics.epochs_merged, 0);
        reg.handle(Request::CloseRound {
            campaign: "c".to_string(),
            epoch: 0,
        });
        let resp = reg.handle(Request::QueryMetrics {
            campaign: "c".to_string(),
        });
        let Response::Metrics { metrics } = resp else {
            panic!("expected Metrics, got {resp:?}");
        };
        assert_eq!(metrics.queue_depth, 0);
        assert_eq!(metrics.epochs_merged, 1);
        assert_eq!(metrics.reports_accepted, 1);
    }

    #[test]
    fn cluster_peer_frames_are_refused_by_a_plain_server() {
        let reg = registry();
        create(&reg, "c", spec(2, 64));
        for req in [
            Request::NodeHello {
                node_id: 0,
                num_nodes: 3,
            },
            Request::CloseRoundPrepare {
                campaign: "c".to_string(),
                epoch: 0,
                refused: vec![],
                ctx: None,
            },
            Request::QueryLedger {
                campaign: "c".to_string(),
                upto: u64::MAX,
            },
        ] {
            let resp = reg.handle(req);
            assert!(
                matches!(
                    resp,
                    Response::Error {
                        code: ErrorCode::InvalidRequest,
                        ..
                    }
                ),
                "{resp:?}"
            );
        }
    }

    #[test]
    fn poisoned_campaign_yields_a_typed_error_frame_not_a_panic() {
        let reg = registry();
        create(&reg, "c", spec(2, 64));
        create(&reg, "healthy", spec(2, 64));

        // Poison campaign `c`'s slot: a worker panics while holding its
        // state lock, exactly what a panic mid-`run_round` looks like.
        let slot = reg.slot("c").expect("campaign exists");
        std::thread::spawn(move || {
            let _guard = slot.state.lock().expect("first locker");
            panic!("worker dies holding the campaign lock");
        })
        .join()
        .expect_err("the poisoning thread must have panicked");

        // Every request on the quarantined campaign gets a typed error
        // frame — the connection stays alive, nothing panics.
        for req in [
            Request::SubmitReports {
                campaign: "c".to_string(),
                reports: vec![stamped(0, 0, 1, 1.0)],
                ctx: None,
            },
            Request::CloseRound {
                campaign: "c".to_string(),
                epoch: 0,
            },
            Request::QueryTruths {
                campaign: "c".to_string(),
            },
            Request::QueryMetrics {
                campaign: "c".to_string(),
            },
            Request::QueryBudget {
                campaign: "c".to_string(),
            },
        ] {
            let resp = reg.handle(req);
            assert!(
                matches!(
                    resp,
                    Response::Error {
                        code: ErrorCode::CampaignQuarantined,
                        ..
                    }
                ),
                "{resp:?}"
            );
        }

        // Other campaigns — and the registry itself — keep serving.
        assert_eq!(reg.campaign_count(), 2);
        let resp = reg.handle(Request::SubmitReports {
            campaign: "healthy".to_string(),
            reports: vec![stamped(0, 0, 1, 1.0)],
            ctx: None,
        });
        assert_eq!(resp, Response::Submitted { queued: 1 });
        // Shutdown still drains the quarantined slot without panicking.
        reg.finalize();
        assert_eq!(reg.campaign_count(), 0);
    }

    #[test]
    fn durable_creates_need_a_wal_root_and_take_the_writer_lock() {
        let reg = registry();
        let durable = CampaignSpec {
            stream_tag: 0,
            durable: true,
            ..spec(2, 64)
        };
        let resp = create(&reg, "c", durable);
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::WalRefused,
                    ..
                }
            ),
            "{resp:?}"
        );

        let root = std::env::temp_dir().join(format!(
            "dptd-registry-wal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let reg = CampaignRegistry::new(RegistryConfig {
            wal_root: Some(root.clone()),
            ..RegistryConfig::default()
        });
        assert_eq!(
            create(&reg, "c", durable),
            Response::Created { resumed_rounds: 0 }
        );
        // The campaign's WAL dir is locked: an external writer is
        // refused while the campaign lives.
        assert!(matches!(
            WalLock::acquire(&root.join("c")),
            Err(dptd_engine::WalError::Locked { .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }
}
