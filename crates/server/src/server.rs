//! The TCP front end: a thread-per-connection accept loop with a hard
//! connection worker budget.
//!
//! Connections are cheap blocking threads (std-only — no async runtime),
//! but never unbounded: past [`ServerConfig::max_connections`] live
//! connections the acceptor writes one typed
//! [`ErrorCode::ServerBusy`](crate::wire::ErrorCode::ServerBusy) frame
//! and closes, so an overload is **refused**, not queued. Every
//! connection speaks the [`crate::wire`] v1 protocol: an 8-byte hello
//! exchange, then request/response frames. All campaign semantics live
//! in the shared [`CampaignRegistry`]; this module only transports.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::registry::{CampaignRegistry, RegistryConfig, RegistryStats};
use crate::wire::{self, ErrorCode, Request, Response, WireError};
use crate::{io_err, ServerError};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port — the
    /// bound address is [`Server::local_addr`]).
    pub listen: String,
    /// Connection worker budget: live connections past this are refused
    /// with `ServerBusy`.
    pub max_connections: usize,
    /// Campaign-level limits and the WAL root.
    pub registry: RegistryConfig,
}

impl Default for ServerConfig {
    /// Loopback ephemeral port, 64 connections, default registry.
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            max_connections: 64,
            registry: RegistryConfig::default(),
        }
    }
}

/// Complete and validate one frame whose first `prefix.len()` bytes
/// were already read off `stream`, returning the verified body. This is
/// the single place the header-then-body socket read lives: the
/// request/response loops enter it with an empty-ish prefix, and the
/// client's connect path enters it with the 8 bytes it read while
/// expecting a hello. Public so cluster nodes can speak the same frame
/// discipline from their own accept loops.
///
/// # Errors
///
/// [`ServerError::Io`] when the stream dies mid-frame,
/// [`ServerError::Wire`] for header/checksum violations.
pub fn complete_frame(prefix: &[u8], stream: &mut impl Read) -> Result<Vec<u8>, ServerError> {
    let mut frame = prefix.to_vec();
    if frame.len() < wire::FRAME_HEADER_LEN {
        let mut rest = vec![0u8; wire::FRAME_HEADER_LEN - frame.len()];
        stream
            .read_exact(&mut rest)
            .map_err(|e| io_err("read frame header", e))?;
        frame.extend_from_slice(&rest);
    }
    // Validate the header exactly as the pure decoder does, without yet
    // having the body: splice it through `split_frame` — only a
    // Truncated outcome means "valid so far, body still on the wire".
    let full_len = match wire::split_frame(&frame) {
        // A zero-length body: the header bytes are the whole frame.
        Ok((body, _)) => return Ok(body.to_vec()),
        Err(WireError::Truncated { needed, .. }) => needed,
        Err(e) => return Err(ServerError::Wire(e)),
    };
    let mut body = vec![0u8; full_len - frame.len()];
    stream
        .read_exact(&mut body)
        .map_err(|e| io_err("read frame body", e))?;
    frame.extend_from_slice(&body);
    let (checked, _) = wire::split_frame(&frame)?;
    Ok(checked.to_vec())
}

/// Read one frame body off `stream`. `Ok(None)` is a clean close at a
/// frame boundary; dying mid-frame (the torn-write case) is an I/O
/// error; header/checksum violations are typed [`WireError`]s.
///
/// # Errors
///
/// [`ServerError::Io`] and [`ServerError::Wire`] as described above.
pub fn read_frame_body(stream: &mut impl Read) -> Result<Option<Vec<u8>>, ServerError> {
    // Distinguish clean EOF (nothing to read) from a torn frame: pull
    // the first byte separately.
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(1) => break,
            Ok(_) => unreachable!("read into a 1-byte buffer"),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err("read frame header", e)),
        }
    }
    complete_frame(&first, stream).map(Some)
}

/// Write one already-encoded frame.
///
/// # Errors
///
/// [`ServerError::Io`] when the write or flush fails.
pub fn write_frame(stream: &mut impl Write, frame: &[u8]) -> Result<(), ServerError> {
    stream
        .write_all(frame)
        .and_then(|()| stream.flush())
        .map_err(|e| io_err("write frame", e))
}

/// Live connections: the stream (so shutdown can force an EOF under a
/// blocked worker) paired with its worker's handle (so shutdown joins).
type ConnectionList = Arc<Mutex<Vec<(Arc<TcpStream>, JoinHandle<()>)>>>;

/// A running campaign service. Dropping (or [`Server::shutdown`])
/// stops the acceptor, force-closes live connections, and joins every
/// worker thread.
#[derive(Debug)]
pub struct Server {
    registry: Arc<CampaignRegistry>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: ConnectionList,
}

impl Server {
    /// Bind `config.listen` and start accepting.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when the address cannot be bound.
    pub fn start(config: ServerConfig) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(
            config
                .listen
                .to_socket_addrs()
                .map_err(|e| io_err("resolve listen address", e))?
                .next()
                .ok_or_else(|| ServerError::Io {
                    op: "resolve listen address",
                    message: format!("`{}` resolves to nothing", config.listen),
                })?,
        )
        .map_err(|e| io_err("bind", e))?;
        let addr = listener.local_addr().map_err(|e| io_err("local addr", e))?;

        let registry = Arc::new(CampaignRegistry::new(config.registry));
        let stop = Arc::new(AtomicBool::new(false));
        let connections: ConnectionList = Arc::new(Mutex::new(Vec::new()));

        let accept_registry = Arc::clone(&registry);
        let accept_stop = Arc::clone(&stop);
        let accept_connections = Arc::clone(&connections);
        let max_connections = config.max_connections.max(1);
        let accept_thread = std::thread::Builder::new()
            .name("dptd-accept".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let _ = stream.set_nodelay(true);

                    // The list is (stream, handle) bookkeeping only; a
                    // poisoned guard is recoverable.
                    let mut conns = accept_connections
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    // Reap finished workers so the budget counts only
                    // live connections.
                    let mut live = Vec::with_capacity(conns.len());
                    for (s, h) in conns.drain(..) {
                        if h.is_finished() {
                            let _ = h.join();
                        } else {
                            live.push((s, h));
                        }
                    }
                    *conns = live;

                    if conns.len() >= max_connections {
                        // Over the worker budget: refuse with a typed
                        // frame instead of queueing or hanging.
                        let mut s = &stream;
                        let frame = Response::Error {
                            code: ErrorCode::ServerBusy,
                            message: format!("server at its {max_connections}-connection budget"),
                        }
                        .encode();
                        let _ = write_frame(&mut s, &frame);
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        continue;
                    }

                    let stream = Arc::new(stream);
                    let worker_stream = Arc::clone(&stream);
                    let worker_registry = Arc::clone(&accept_registry);
                    match std::thread::Builder::new()
                        .name("dptd-conn".to_string())
                        .spawn(move || {
                            serve_connection(&worker_stream, &worker_registry);
                            // Close the TCP side eagerly: the acceptor's
                            // bookkeeping still holds the stream handle
                            // until the next reap, and the peer must see
                            // EOF when its worker is done, not later.
                            let _ = worker_stream.shutdown(std::net::Shutdown::Both);
                        }) {
                        Ok(handle) => conns.push((stream, handle)),
                        Err(_) => {
                            // Out of threads is load, not a protocol
                            // violation: refuse this connection like an
                            // over-budget one instead of killing the
                            // acceptor (and with it every live
                            // connection's shutdown path).
                            let mut s = &*stream;
                            let frame = Response::Error {
                                code: ErrorCode::ServerBusy,
                                message: "server cannot spawn a connection worker".to_string(),
                            }
                            .encode();
                            let _ = write_frame(&mut s, &frame);
                            let _ = stream.shutdown(std::net::Shutdown::Both);
                        }
                    }
                }
            })
            .map_err(|e| io_err("spawn acceptor", e))?;

        Ok(Self {
            registry,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared campaign registry (e.g. for stats).
    pub fn registry(&self) -> &CampaignRegistry {
        &self.registry
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Force-close live connections so their workers see EOF.
        let conns = std::mem::take(
            &mut *self
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for (stream, handle) in conns {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
    }

    /// Stop accepting, close every connection, join all workers,
    /// finalize every campaign (flush + fsync active WAL segments,
    /// release writer locks — see [`CampaignRegistry::finalize`]), and
    /// return the registry's aggregate counters.
    pub fn shutdown(mut self) -> RegistryStats {
        self.stop_threads();
        // Ordering matters: workers are joined, so no round can commit
        // concurrently with finalization.
        let (flushed, sync_failures) = self.registry.finalize();
        let mut stats = self.registry.stats();
        stats.campaigns_flushed = flushed as u64;
        stats.sync_failures = sync_failures as u64;
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// One connection worker: hello exchange, then a request/response loop
/// until the peer closes, dies mid-frame, or desynchronises.
fn serve_connection(stream: &Arc<TcpStream>, registry: &CampaignRegistry) {
    let mut reader: &TcpStream = stream;
    let mut writer: &TcpStream = stream;

    // Hello: the client leads; anything else is not our protocol.
    let mut hello = [0u8; wire::HELLO.len()];
    if reader.read_exact(&mut hello).is_err() || hello != wire::HELLO {
        let frame = Response::Error {
            code: ErrorCode::InvalidRequest,
            message: "expected the dptd v1 hello".to_string(),
        }
        .encode();
        let _ = write_frame(&mut writer, &frame);
        return;
    }
    if writer.write_all(&wire::HELLO).is_err() {
        return;
    }

    loop {
        match read_frame_body(&mut reader) {
            Ok(None) => return, // clean close
            Ok(Some(body)) => {
                // A well-framed body that fails to decode leaves the
                // stream in sync: reply with a typed error and keep
                // serving.
                let response = match Request::decode(&body) {
                    Ok(request) => registry.handle(request),
                    Err(e) => Response::Error {
                        code: ErrorCode::InvalidRequest,
                        message: e.to_string(),
                    },
                };
                if write_frame(&mut writer, &response.encode()).is_err() {
                    return;
                }
            }
            Err(ServerError::Wire(e)) => {
                // Header or checksum violation: sync with the peer is
                // lost, so answer once and hang up.
                let frame = Response::Error {
                    code: ErrorCode::InvalidRequest,
                    message: e.to_string(),
                }
                .encode();
                let _ = write_frame(&mut writer, &frame);
                return;
            }
            // I/O failure or a peer that died mid-frame (torn write):
            // nothing sensible to reply to.
            Err(_) => return,
        }
    }
}
