//! The campaign server: a [`CampaignRegistry`] behind the shared
//! connection [`Frontend`].
//!
//! All transport policy — the I/O model (event-driven reactor by
//! default, thread-per-connection on request), the hard connection
//! budget with typed
//! [`ErrorCode::ServerBusy`](crate::wire::ErrorCode::ServerBusy)
//! refusals, and the per-connection idle/stall deadlines — lives in
//! [`crate::frontend`]; all campaign semantics live in the shared
//! [`CampaignRegistry`]. This module wires the two together and keeps
//! the blocking frame-I/O helpers ([`complete_frame`],
//! [`read_frame_body`], [`write_frame`]) that the client and the
//! threads-model worker both speak.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::Arc;

use crate::frontend::{Frontend, FrontendConfig, IoConfig};
use crate::registry::{CampaignRegistry, RegistryConfig, RegistryStats};
use crate::wire::{self, WireError};
use crate::{io_err, ServerError};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port — the
    /// bound address is [`Server::local_addr`]).
    pub listen: String,
    /// Connection budget: live connections past this are refused with
    /// `ServerBusy`.
    pub max_connections: usize,
    /// I/O model and connection deadlines.
    pub io: IoConfig,
    /// Campaign-level limits and the WAL root.
    pub registry: RegistryConfig,
}

impl Default for ServerConfig {
    /// Loopback ephemeral port, 64 connections, reactor I/O, default
    /// registry.
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            max_connections: 64,
            io: IoConfig::default(),
            registry: RegistryConfig::default(),
        }
    }
}

/// Complete and validate one frame whose first `prefix.len()` bytes
/// were already read off `stream`, returning the verified body. This is
/// the single place the header-then-body socket read lives: the
/// request/response loops enter it with an empty-ish prefix, and the
/// client's connect path enters it with the 8 bytes it read while
/// expecting a hello. Public so cluster nodes can speak the same frame
/// discipline from their own connections.
///
/// # Errors
///
/// [`ServerError::Io`] when the stream dies mid-frame,
/// [`ServerError::Wire`] for header/checksum violations.
pub fn complete_frame(prefix: &[u8], stream: &mut impl Read) -> Result<Vec<u8>, ServerError> {
    let mut frame = prefix.to_vec();
    if frame.len() < wire::FRAME_HEADER_LEN {
        let mut rest = vec![0u8; wire::FRAME_HEADER_LEN - frame.len()];
        stream
            .read_exact(&mut rest)
            .map_err(|e| io_err("read frame header", e))?;
        frame.extend_from_slice(&rest);
    }
    // Validate the header exactly as the pure decoder does, without yet
    // having the body: splice it through `split_frame` — only a
    // Truncated outcome means "valid so far, body still on the wire".
    let full_len = match wire::split_frame(&frame) {
        // A zero-length body: the header bytes are the whole frame.
        Ok((body, _)) => return Ok(body.to_vec()),
        Err(WireError::Truncated { needed, .. }) => needed,
        Err(e) => return Err(ServerError::Wire(e)),
    };
    let mut body = vec![0u8; full_len - frame.len()];
    stream
        .read_exact(&mut body)
        .map_err(|e| io_err("read frame body", e))?;
    frame.extend_from_slice(&body);
    let (checked, _) = wire::split_frame(&frame)?;
    Ok(checked.to_vec())
}

/// Read one frame body off `stream`. `Ok(None)` is a clean close at a
/// frame boundary; dying mid-frame (the torn-write case) is an I/O
/// error; header/checksum violations are typed [`WireError`]s.
///
/// # Errors
///
/// [`ServerError::Io`] and [`ServerError::Wire`] as described above.
pub fn read_frame_body(stream: &mut impl Read) -> Result<Option<Vec<u8>>, ServerError> {
    // Distinguish clean EOF (nothing to read) from a torn frame: pull
    // the first byte separately.
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(1) => break,
            Ok(_) => unreachable!("read into a 1-byte buffer"),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err("read frame header", e)),
        }
    }
    complete_frame(&first, stream).map(Some)
}

/// Write one already-encoded frame.
///
/// # Errors
///
/// [`ServerError::Io`] when the write or flush fails.
pub fn write_frame(stream: &mut impl Write, frame: &[u8]) -> Result<(), ServerError> {
    stream
        .write_all(frame)
        .and_then(|()| stream.flush())
        .map_err(|e| io_err("write frame", e))
}

/// A running campaign service. Dropping (or [`Server::shutdown`])
/// stops the front end, closes live connections, and joins every I/O
/// thread.
#[derive(Debug)]
pub struct Server {
    registry: Arc<CampaignRegistry>,
    frontend: Frontend,
}

impl Server {
    /// Bind `config.listen` and start accepting under the configured
    /// I/O model.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when the address cannot be bound.
    pub fn start(config: ServerConfig) -> Result<Self, ServerError> {
        let registry = Arc::new(CampaignRegistry::new(config.registry));
        let frontend = Frontend::start(
            FrontendConfig {
                listen: config.listen,
                max_connections: config.max_connections,
                io: config.io,
                thread_name: "dptd",
            },
            Arc::clone(&registry) as Arc<dyn crate::frontend::RequestHandler>,
        )?;
        registry.set_conn_stats(frontend.stats(), frontend.io_threads());
        Ok(Self { registry, frontend })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.frontend.local_addr()
    }

    /// The shared campaign registry (e.g. for stats).
    pub fn registry(&self) -> &CampaignRegistry {
        &self.registry
    }

    /// The front end (for I/O-model introspection, e.g. in benches).
    pub fn frontend(&self) -> &Frontend {
        &self.frontend
    }

    /// Stop accepting, close every connection, join all I/O threads,
    /// finalize every campaign (flush + fsync active WAL segments,
    /// release writer locks — see [`CampaignRegistry::finalize`]), and
    /// return the registry's aggregate counters.
    pub fn shutdown(mut self) -> RegistryStats {
        self.frontend.stop();
        // Ordering matters: I/O threads are joined, so no round can
        // commit concurrently with finalization.
        let (flushed, sync_failures) = self.registry.finalize();
        let mut stats = self.registry.stats();
        stats.campaigns_flushed = flushed as u64;
        stats.sync_failures = sync_failures as u64;
        stats
    }
}
