//! The connection front end shared by the campaign server and the
//! cluster node server, in two interchangeable I/O models.
//!
//! Both models speak the identical [`crate::wire`] v1 protocol (8-byte
//! hello exchange, then request/response frames), enforce the same
//! connection budget with typed
//! [`ErrorCode::ServerBusy`](crate::wire::ErrorCode::ServerBusy)
//! refusals, and dispatch every decoded request through one
//! [`RequestHandler`] — so a campaign produces **bit-identical** results
//! whichever front end carried its bytes (pinned by the e2e suites).
//!
//! * [`IoModel::Reactor`] (the default): N reactor threads — one per
//!   core — each multiplexing its share of nonblocking connections with
//!   `poll(2)` readiness, reading through a per-connection incremental
//!   [`FrameDecoder`] so a torn frame never blocks a thread. Thousands
//!   of intermittently-connected submitters cost file descriptors, not
//!   stacks. The reactor owns two per-connection deadlines: a short
//!   **stall** deadline for a peer mid-hello or mid-frame (the
//!   slow-loris shape) and a longer **idle** deadline between frames;
//!   either expiry reclaims the connection slot.
//! * [`IoModel::Threads`]: the original thread-per-connection loop,
//!   kept both as the bit-equivalence baseline and for debuggability.
//!   Every accepted socket gets read/write timeouts equal to the idle
//!   deadline, so a stalled peer pins its worker for at most one
//!   deadline instead of forever.
//!
//! Pipelined submission ([`Request::SubmitReportsStream`]) is handled
//! here rather than in the handlers because its cumulative-ack protocol
//! is **per-connection** state: the front end accepts only the next
//! in-order batch sequence number, translates the batch into an
//! ordinary `SubmitReports` for the handler, and answers every batch
//! frame with a [`Response::SubmitAcked`] — acks stay paired one-to-one
//! with request frames, which is what lets both I/O models (and the
//! blocking client) share one protocol.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::decode::FrameDecoder;
use crate::server::write_frame;
use crate::wire::{self, BatchRefusal, ErrorCode, Request, Response};
use crate::{io_err, ServerError};

/// Something that can answer wire requests — the seam between the
/// transport layer and campaign semantics. The campaign server's
/// registry and the cluster's node state both implement it, which is
/// what lets them share one front end.
pub trait RequestHandler: Send + Sync + 'static {
    /// Answer one request. May block (a round close runs the engine);
    /// the front end accounts for that, not the handler.
    fn handle(&self, request: Request) -> Response;
}

/// Which I/O model the front end runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// Event-driven: N poll-based reactor threads multiplexing
    /// nonblocking connections (the default).
    #[default]
    Reactor,
    /// One blocking worker thread per connection, with socket
    /// read/write timeouts standing in for the reactor's deadlines.
    Threads,
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "reactor" => Ok(IoModel::Reactor),
            "threads" => Ok(IoModel::Threads),
            other => Err(format!(
                "unknown io model `{other}` (expected `reactor` or `threads`)"
            )),
        }
    }
}

impl std::fmt::Display for IoModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoModel::Reactor => "reactor",
            IoModel::Threads => "threads",
        })
    }
}

/// I/O-model selection and connection deadlines — the knobs shared by
/// `dptd serve` and `dptd cluster serve`.
#[derive(Debug, Clone, Copy)]
pub struct IoConfig {
    /// Which front end carries connections.
    pub io_model: IoModel,
    /// Reactor threads under [`IoModel::Reactor`]; `0` = one per
    /// available core (capped at 8). Ignored under threads.
    pub reactor_threads: usize,
    /// How long a connection may sit with **no frame in progress**
    /// before it is reclaimed. Under threads this doubles as the
    /// socket read/write timeout (one knob for both deadline kinds).
    pub idle_timeout: Duration,
    /// How long a connection may sit **mid-hello or mid-frame** —
    /// the slow-loris shape — before it is reclaimed. Reactor only;
    /// must not exceed `idle_timeout`.
    pub stall_timeout: Duration,
}

impl Default for IoConfig {
    /// Reactor, one thread per core, 60 s idle / 10 s stall.
    fn default() -> Self {
        Self {
            io_model: IoModel::Reactor,
            reactor_threads: 0,
            idle_timeout: Duration::from_secs(60),
            stall_timeout: Duration::from_secs(10),
        }
    }
}

/// Front-end configuration: where to listen, how many connections to
/// admit, and the I/O model.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port).
    pub listen: String,
    /// Connection budget: live connections past this are refused with
    /// a typed `ServerBusy` frame, never queued.
    pub max_connections: usize,
    /// I/O model and deadlines.
    pub io: IoConfig,
    /// Thread-name prefix for diagnostics (`"dptd"`, `"dptd-node"`).
    pub thread_name: &'static str,
}

impl Default for FrontendConfig {
    /// Loopback ephemeral port, 64 connections, default I/O config.
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            max_connections: 64,
            io: IoConfig::default(),
            thread_name: "dptd",
        }
    }
}

/// Stop reading new requests from a connection while more than this
/// many unflushed response bytes are queued for it — read backpressure
/// so one slow-reading pipeliner cannot balloon server memory.
const OUTBUF_HIGH_WATER: usize = 1 << 20;

/// The reactor's poll tick: deadline sweeps, stop-flag checks and
/// newly-accepted connections are observed at least this often even
/// when no descriptor turns ready.
const POLL_TICK_MS: i32 = 25;

/// Live connections under the threads model: the stream (so shutdown
/// can force an EOF under a blocked worker) paired with its worker's
/// handle (so shutdown joins).
type ConnectionList = Arc<Mutex<Vec<(Arc<TcpStream>, JoinHandle<()>)>>>;

/// Connection accounting shared by both I/O models. Under the reactor
/// model `live` **is** the shared admission budget (the same atomic
/// every reactor checks at accept), so the gauge can never drift from
/// the number the budget actually enforces. Surfaced by the
/// observability plane as `server.conn.*`.
#[derive(Debug, Default)]
pub struct FrontendStats {
    /// Connections live right now.
    pub live: AtomicUsize,
    /// Connections accepted since the front end started.
    pub accepted: AtomicU64,
    /// Connections refused at accept because the budget was full (or a
    /// worker could not be spawned under the threads model).
    pub refused: AtomicU64,
}

/// A running connection front end. Owners hand it an
/// `Arc<dyn RequestHandler>` at start and call [`Frontend::stop`] (or
/// drop it) to tear down every thread and connection.
#[derive(Debug)]
pub struct Frontend {
    addr: SocketAddr,
    io_model: IoModel,
    io_threads: usize,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    connections: ConnectionList,
    stats: Arc<FrontendStats>,
}

impl Frontend {
    /// Bind `config.listen` and start serving `handler` under the
    /// configured I/O model.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when the address cannot be bound or the
    /// I/O threads cannot be spawned.
    pub fn start(
        config: FrontendConfig,
        handler: Arc<dyn RequestHandler>,
    ) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(
            config
                .listen
                .to_socket_addrs()
                .map_err(|e| io_err("resolve listen address", e))?
                .next()
                .ok_or_else(|| ServerError::Io {
                    op: "resolve listen address",
                    message: format!("`{}` resolves to nothing", config.listen),
                })?,
        )
        .map_err(|e| io_err("bind", e))?;
        let addr = listener.local_addr().map_err(|e| io_err("local addr", e))?;

        let stop = Arc::new(AtomicBool::new(false));
        let connections: ConnectionList = Arc::new(Mutex::new(Vec::new()));
        let max_connections = config.max_connections.max(1);
        let stats = Arc::new(FrontendStats::default());

        let mut threads = Vec::new();
        let io_threads = match config.io.io_model {
            IoModel::Threads => {
                let accept = AcceptLoop {
                    handler,
                    stop: Arc::clone(&stop),
                    connections: Arc::clone(&connections),
                    max_connections,
                    io_timeout: config.io.idle_timeout,
                    thread_name: config.thread_name,
                    stats: Arc::clone(&stats),
                };
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("{}-accept", config.thread_name))
                        .spawn(move || accept.run(listener))
                        .map_err(|e| io_err("spawn acceptor", e))?,
                );
                1
            }
            IoModel::Reactor => {
                listener
                    .set_nonblocking(true)
                    .map_err(|e| io_err("set listener nonblocking", e))?;
                let listener = Arc::new(listener);
                let n = reactor_count(config.io.reactor_threads);
                for i in 0..n {
                    let reactor = Reactor {
                        listener: Arc::clone(&listener),
                        handler: Arc::clone(&handler),
                        stop: Arc::clone(&stop),
                        stats: Arc::clone(&stats),
                        max_connections,
                        idle_timeout: config.io.idle_timeout,
                        stall_timeout: config.io.stall_timeout.min(config.io.idle_timeout),
                    };
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("{}-reactor-{i}", config.thread_name))
                            .spawn(move || reactor.run())
                            .map_err(|e| io_err("spawn reactor", e))?,
                    );
                }
                n
            }
        };

        Ok(Self {
            addr,
            io_model: config.io.io_model,
            io_threads,
            stop,
            threads,
            connections,
            stats,
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which I/O model is serving.
    pub fn io_model(&self) -> IoModel {
        self.io_model
    }

    /// How many I/O threads carry connections: the reactor count, or
    /// `1` (the acceptor) under threads — workers there scale with
    /// connections and are exactly what the reactor model avoids.
    pub fn io_threads(&self) -> usize {
        self.io_threads
    }

    /// Connection accounting, shared with the I/O threads — readable
    /// live while the front end serves.
    pub fn stats(&self) -> Arc<FrontendStats> {
        Arc::clone(&self.stats)
    }

    /// Stop accepting, close every connection, and join every thread.
    /// Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock a blocking acceptor (and hasten a reactor tick) with
        // a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // Threads model: force-close live connections so blocked
        // workers see EOF, then join them.
        let conns = std::mem::take(
            &mut *self
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for (stream, handle) in conns {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = handle.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.stop();
    }
}

/// `0` = one reactor per available core, capped at 8 (loopback serving
/// saturates well before that; the cap keeps idle tick cost bounded).
fn reactor_count(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(1, 8)
}

/// Answer one decoded request, routing pipelined-submit batches through
/// the per-connection cumulative-ack protocol. `next_seq` is the
/// connection's stream cursor: the only batch number accepted is the
/// next in-order one, so the handler — and therefore the campaign —
/// sees reports in exactly the order the client sent them, pipelined or
/// not.
fn dispatch(handler: &dyn RequestHandler, next_seq: &mut u64, request: Request) -> Response {
    match request {
        Request::SubmitReportsStream {
            campaign,
            seq,
            reports,
            ctx,
        } => {
            if seq != *next_seq {
                // Out of order: a window continuation behind an earlier
                // refusal. Retryable — the client rewinds and resends.
                return Response::SubmitAcked {
                    contiguous: *next_seq,
                    queued: 0,
                    refusals: vec![BatchRefusal { seq, code: None }],
                };
            }
            match handler.handle(Request::SubmitReports {
                campaign,
                reports,
                ctx,
            }) {
                Response::Submitted { queued } => {
                    *next_seq += 1;
                    Response::SubmitAcked {
                        contiguous: *next_seq,
                        queued,
                        refusals: Vec::new(),
                    }
                }
                Response::Busy { queued, .. } => Response::SubmitAcked {
                    contiguous: *next_seq,
                    queued,
                    refusals: vec![BatchRefusal { seq, code: None }],
                },
                Response::Error { code, .. } => Response::SubmitAcked {
                    contiguous: *next_seq,
                    queued: 0,
                    refusals: vec![BatchRefusal {
                        seq,
                        code: Some(code),
                    }],
                },
                other => other,
            }
        }
        other => handler.handle(other),
    }
}

fn refuse_busy(stream: &TcpStream, max_connections: usize) {
    let mut s = stream;
    let frame = Response::Error {
        code: ErrorCode::ServerBusy,
        message: format!("server at its {max_connections}-connection budget"),
    }
    .encode();
    let _ = write_frame(&mut s, &frame);
    let _ = stream.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------
// Threads model
// ---------------------------------------------------------------------

struct AcceptLoop {
    handler: Arc<dyn RequestHandler>,
    stop: Arc<AtomicBool>,
    connections: ConnectionList,
    max_connections: usize,
    io_timeout: Duration,
    thread_name: &'static str,
    stats: Arc<FrontendStats>,
}

impl AcceptLoop {
    fn run(&self, listener: TcpListener) {
        for incoming in listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = incoming else { continue };
            let _ = stream.set_nodelay(true);
            // The slow-client fix for this model: every accepted socket
            // gets read/write timeouts, so a peer that goes silent
            // mid-hello or mid-frame pins its worker for at most one
            // deadline before the slot is reclaimed.
            let _ = stream.set_read_timeout(Some(self.io_timeout));
            let _ = stream.set_write_timeout(Some(self.io_timeout));

            // The list is (stream, handle) bookkeeping only; a poisoned
            // guard is recoverable.
            let mut conns = self
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            // Reap finished workers so the budget counts only live
            // connections — this is also what returns the slot of a
            // handshake-failed (bad hello) worker to the budget.
            let mut live = Vec::with_capacity(conns.len());
            for (s, h) in conns.drain(..) {
                if h.is_finished() {
                    let _ = h.join();
                } else {
                    live.push((s, h));
                }
            }
            *conns = live;

            if conns.len() >= self.max_connections {
                // Over the worker budget: refuse with a typed frame
                // instead of queueing or hanging.
                self.stats.refused.fetch_add(1, Ordering::Relaxed);
                refuse_busy(&stream, self.max_connections);
                continue;
            }

            let stream = Arc::new(stream);
            let worker_stream = Arc::clone(&stream);
            let worker_handler = Arc::clone(&self.handler);
            let worker_stats = Arc::clone(&self.stats);
            match std::thread::Builder::new()
                .name(format!("{}-conn", self.thread_name))
                .spawn(move || {
                    serve_blocking(&worker_stream, &*worker_handler);
                    // Close the TCP side eagerly: the acceptor's
                    // bookkeeping still holds the stream handle until
                    // the next reap, and the peer must see EOF when its
                    // worker is done, not later.
                    let _ = worker_stream.shutdown(Shutdown::Both);
                    worker_stats.live.fetch_sub(1, Ordering::SeqCst);
                }) {
                Ok(handle) => {
                    self.stats.live.fetch_add(1, Ordering::SeqCst);
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    conns.push((stream, handle));
                }
                Err(_) => {
                    self.stats.refused.fetch_add(1, Ordering::Relaxed);
                    // Out of threads is load, not a protocol violation:
                    // refuse this connection like an over-budget one
                    // instead of killing the acceptor (and with it every
                    // live connection's shutdown path).
                    let mut s = &*stream;
                    let frame = Response::Error {
                        code: ErrorCode::ServerBusy,
                        message: "server cannot spawn a connection worker".to_string(),
                    }
                    .encode();
                    let _ = write_frame(&mut s, &frame);
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

/// One blocking connection worker: hello exchange, then a
/// request/response loop until the peer closes, dies mid-frame,
/// desynchronises, or trips the socket timeout.
fn serve_blocking(stream: &Arc<TcpStream>, handler: &dyn RequestHandler) {
    let mut reader: &TcpStream = stream;
    let mut writer: &TcpStream = stream;

    // Hello: the client leads; anything else is not our protocol.
    let mut hello = [0u8; wire::HELLO.len()];
    if reader.read_exact(&mut hello).is_err() || hello != wire::HELLO {
        let frame = Response::Error {
            code: ErrorCode::InvalidRequest,
            message: "expected the dptd v1 hello".to_string(),
        }
        .encode();
        let _ = write_frame(&mut writer, &frame);
        return;
    }
    if writer.write_all(&wire::HELLO).is_err() {
        return;
    }

    let mut next_seq = 0u64;
    loop {
        match crate::server::read_frame_body(&mut reader) {
            Ok(None) => return, // clean close
            Ok(Some(body)) => {
                // A well-framed body that fails to decode leaves the
                // stream in sync: reply with a typed error and keep
                // serving.
                let response = match Request::decode(&body) {
                    Ok(request) => dispatch(handler, &mut next_seq, request),
                    Err(e) => Response::Error {
                        code: ErrorCode::InvalidRequest,
                        message: e.to_string(),
                    },
                };
                if write_frame(&mut writer, &response.encode()).is_err() {
                    return;
                }
            }
            Err(ServerError::Wire(e)) => {
                // Header or checksum violation: sync with the peer is
                // lost, so answer once and hang up.
                let frame = Response::Error {
                    code: ErrorCode::InvalidRequest,
                    message: e.to_string(),
                }
                .encode();
                let _ = write_frame(&mut writer, &frame);
                return;
            }
            // I/O failure, a peer that died mid-frame (torn write), or
            // the socket timeout firing on a stalled peer: nothing
            // sensible to reply to, and the slot must come back.
            Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------
// Reactor model
// ---------------------------------------------------------------------

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(s: &T) -> i32 {
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_s: &T) -> i32 {
    // The compat poll fallback claims readiness for any nonnegative fd;
    // nonblocking reads/writes then sort truth from spin.
    0
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded-but-unflushed response bytes.
    outbuf: Vec<u8>,
    out_pos: usize,
    /// Hello bytes received so far (a connection is mid-hello until 8).
    hello_got: usize,
    hello_buf: [u8; 8],
    last_activity: Instant,
    /// Pipelined-submit stream cursor (next in-order batch seq).
    next_seq: u64,
    /// Flush `outbuf`, then begin the lingering close.
    closing: bool,
    /// Write side is shut; discard reads until the peer closes (so a
    /// final error frame is not destroyed by a reset-on-close while
    /// unread request bytes sit in our receive buffer).
    draining: bool,
    /// Remove this connection at the end of the pass.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Self {
            stream,
            decoder: FrameDecoder::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            hello_got: 0,
            hello_buf: [0u8; 8],
            last_activity: now,
            next_seq: 0,
            closing: false,
            draining: false,
            dead: false,
        }
    }

    fn has_output(&self) -> bool {
        self.out_pos < self.outbuf.len()
    }

    /// Mid-hello or mid-frame: the *stall* deadline applies (a draining
    /// connection is also on the short clock — it owes us nothing).
    fn is_stalled_shape(&self) -> bool {
        self.hello_got < wire::HELLO.len() || self.decoder.has_partial() || self.draining
    }

    fn queue(&mut self, frame: &[u8]) {
        self.outbuf.extend_from_slice(frame);
    }

    /// Queue a final error frame and begin the close sequence.
    fn refuse_and_close(&mut self, code: ErrorCode, message: String) {
        let frame = Response::Error { code, message }.encode();
        self.queue(&frame);
        self.closing = true;
    }
}

struct Reactor {
    listener: Arc<TcpListener>,
    handler: Arc<dyn RequestHandler>,
    stop: Arc<AtomicBool>,
    /// Shared across *all* reactors; `stats.live` is the admission
    /// budget.
    stats: Arc<FrontendStats>,
    max_connections: usize,
    idle_timeout: Duration,
    stall_timeout: Duration,
}

impl Reactor {
    fn run(&self) {
        let mut conns: Vec<Conn> = Vec::new();
        let mut pollfds: Vec<libc::pollfd> = Vec::new();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }

            pollfds.clear();
            pollfds.push(libc::pollfd {
                fd: raw_fd(&*self.listener),
                events: libc::POLLIN,
                revents: 0,
            });
            for conn in &conns {
                let mut events = 0;
                let throttled = conn.outbuf.len() - conn.out_pos > OUTBUF_HIGH_WATER;
                if !conn.closing && !throttled || conn.draining {
                    events |= libc::POLLIN;
                }
                if conn.has_output() {
                    events |= libc::POLLOUT;
                }
                pollfds.push(libc::pollfd {
                    fd: raw_fd(&conn.stream),
                    events,
                    revents: 0,
                });
            }

            let rc = unsafe {
                libc::poll(
                    pollfds.as_mut_ptr(),
                    pollfds.len() as libc::nfds_t,
                    POLL_TICK_MS,
                )
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            if rc < 0 {
                // EINTR or a transient failure: treat as an empty tick.
                for slot in &mut pollfds {
                    slot.revents = 0;
                }
            }

            // I/O pass: pollfds[i + 1] describes conns[i]. Connections
            // accepted below are appended past this range and first
            // polled next tick.
            let polled = conns.len();
            let now = Instant::now();
            for (i, conn) in conns.iter_mut().enumerate().take(polled) {
                let revents = pollfds[i + 1].revents;
                if revents & (libc::POLLERR | libc::POLLNVAL) != 0 {
                    conn.dead = true;
                    continue;
                }
                if revents & (libc::POLLIN | libc::POLLHUP) != 0 {
                    if conn.draining {
                        drain_reads(conn);
                    } else {
                        read_and_serve(conn, &*self.handler, now);
                    }
                }
                if !conn.dead && conn.has_output() {
                    flush_output(conn, now);
                }
                if !conn.dead && conn.closing && !conn.draining && !conn.has_output() {
                    // Output flushed: shut our write side and linger
                    // until the peer closes, bounded by the stall
                    // deadline below.
                    conn.draining = true;
                    if conn.stream.shutdown(Shutdown::Write).is_err() {
                        conn.dead = true;
                    }
                }
            }

            // Deadline sweep: reclaim stalled and idle connections.
            for conn in &mut conns {
                if conn.dead {
                    continue;
                }
                let limit = if conn.is_stalled_shape() {
                    self.stall_timeout
                } else {
                    self.idle_timeout
                };
                if now.duration_since(conn.last_activity) > limit {
                    conn.dead = true;
                }
            }

            let before = conns.len();
            conns.retain(|c| !c.dead);
            let reclaimed = before - conns.len();
            if reclaimed > 0 {
                self.stats.live.fetch_sub(reclaimed, Ordering::SeqCst);
            }

            if pollfds[0].revents & libc::POLLIN != 0 {
                self.accept_ready(&mut conns);
            }
        }

        // Shutdown: every reactor closes its own connections.
        let count = conns.len();
        for conn in &conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.stats.live.fetch_sub(count, Ordering::SeqCst);
    }

    /// Accept everything currently pending. All reactors poll the one
    /// listener; losers of an accept race see `WouldBlock`, which is
    /// how connections spread across reactor threads without handoff.
    fn accept_ready(&self, conns: &mut Vec<Conn>) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            let admitted = self
                .stats
                .live
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < self.max_connections).then_some(n + 1)
                })
                .is_ok();
            if !admitted {
                self.stats.refused.fetch_add(1, Ordering::Relaxed);
                refuse_busy(&stream, self.max_connections);
                continue;
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                let _ = stream.shutdown(Shutdown::Both);
                self.stats.live.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
            conns.push(Conn::new(stream, Instant::now()));
        }
    }
}

/// Read to `WouldBlock`, feed the hello then the frame decoder, and
/// serve every complete frame inline.
fn read_and_serve(conn: &mut Conn, handler: &dyn RequestHandler, now: Instant) {
    let mut buf = [0u8; 16 * 1024];
    let mut saw_eof = false;
    loop {
        let budget = conn.decoder.read_budget().min(buf.len());
        if budget == 0 {
            break;
        }
        match (&conn.stream).read(&mut buf[..budget]) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                conn.last_activity = now;
                let mut bytes = &buf[..n];
                if conn.hello_got < wire::HELLO.len() {
                    let take = (wire::HELLO.len() - conn.hello_got).min(bytes.len());
                    conn.hello_buf[conn.hello_got..conn.hello_got + take]
                        .copy_from_slice(&bytes[..take]);
                    conn.hello_got += take;
                    bytes = &bytes[take..];
                    if conn.hello_got == wire::HELLO.len() {
                        if conn.hello_buf != wire::HELLO {
                            conn.refuse_and_close(
                                ErrorCode::InvalidRequest,
                                "expected the dptd v1 hello".to_string(),
                            );
                            return;
                        }
                        conn.queue(wire::HELLO.as_ref());
                    }
                }
                if !bytes.is_empty() {
                    conn.decoder.extend(bytes);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }

    loop {
        match conn.decoder.next_frame() {
            Ok(Some(body)) => {
                // A well-framed body that fails to decode leaves the
                // stream in sync: typed error, keep serving.
                let response = match Request::decode(&body) {
                    Ok(request) => dispatch(handler, &mut conn.next_seq, request),
                    Err(e) => Response::Error {
                        code: ErrorCode::InvalidRequest,
                        message: e.to_string(),
                    },
                };
                conn.queue(&response.encode());
            }
            Ok(None) => break,
            Err(e) => {
                // Framing is lost: answer once, then close.
                conn.refuse_and_close(ErrorCode::InvalidRequest, e.to_string());
                break;
            }
        }
    }

    if saw_eof && !conn.closing {
        if conn.decoder.has_partial() {
            // Torn write then death: nothing sensible to reply to.
            conn.dead = true;
        } else {
            // Clean close at a frame boundary: flush replies, then go.
            conn.closing = true;
        }
    }
}

/// Lingering close: discard request bytes until the peer closes.
fn drain_reads(conn: &mut Conn) {
    let mut buf = [0u8; 4096];
    loop {
        match (&conn.stream).read(&mut buf) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(_) => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Write queued response bytes to `WouldBlock`.
fn flush_output(conn: &mut Conn, now: Instant) {
    while conn.has_output() {
        match (&conn.stream).write(&conn.outbuf[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = now;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.has_output() {
        // Partially flushed: drop the flushed prefix once it is large
        // enough to be worth the memmove.
        if conn.out_pos > 4096 {
            conn.outbuf.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
    } else {
        conn.outbuf.clear();
        conn.out_pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_model_parses_and_displays() {
        assert_eq!("reactor".parse::<IoModel>().unwrap(), IoModel::Reactor);
        assert_eq!("threads".parse::<IoModel>().unwrap(), IoModel::Threads);
        assert!("epoll".parse::<IoModel>().is_err());
        assert_eq!(IoModel::Reactor.to_string(), "reactor");
        assert_eq!(IoModel::Threads.to_string(), "threads");
        assert_eq!(IoModel::default(), IoModel::Reactor);
    }

    #[test]
    fn reactor_count_clamps_and_respects_overrides() {
        assert_eq!(reactor_count(3), 3);
        let auto = reactor_count(0);
        assert!((1..=8).contains(&auto), "auto count {auto} out of range");
    }

    /// A handler that answers everything with `Submitted{queued: 1}`
    /// except `Busy` for a magic campaign id — enough to exercise the
    /// dispatch seam without a registry.
    struct Canned;
    impl RequestHandler for Canned {
        fn handle(&self, request: Request) -> Response {
            match request {
                Request::SubmitReports { campaign, .. } if campaign == "full" => Response::Busy {
                    queued: 9,
                    capacity: 9,
                },
                Request::SubmitReports { campaign, .. } if campaign == "gone" => Response::Error {
                    code: ErrorCode::UnknownCampaign,
                    message: "no such campaign".to_string(),
                },
                Request::SubmitReports { .. } => Response::Submitted { queued: 1 },
                _ => Response::Error {
                    code: ErrorCode::InvalidRequest,
                    message: "unexpected".to_string(),
                },
            }
        }
    }

    fn stream_batch(campaign: &str, seq: u64) -> Request {
        Request::SubmitReportsStream {
            campaign: campaign.to_string(),
            seq,
            reports: Vec::new(),
            ctx: None,
        }
    }

    #[test]
    fn in_order_stream_batches_advance_the_cumulative_ack() {
        let mut next = 0;
        for seq in 0..3 {
            let ack = dispatch(&Canned, &mut next, stream_batch("c", seq));
            assert_eq!(
                ack,
                Response::SubmitAcked {
                    contiguous: seq + 1,
                    queued: 1,
                    refusals: vec![],
                }
            );
        }
        assert_eq!(next, 3);
    }

    #[test]
    fn busy_and_out_of_order_batches_are_retryable_refusal_deltas() {
        let mut next = 5;
        // Backpressure on the in-order batch: refused, cursor holds.
        let ack = dispatch(&Canned, &mut next, stream_batch("full", 5));
        assert_eq!(
            ack,
            Response::SubmitAcked {
                contiguous: 5,
                queued: 9,
                refusals: vec![BatchRefusal { seq: 5, code: None }],
            }
        );
        // The window continuation behind it: out of order, also
        // retryable, cursor still holds.
        let ack = dispatch(&Canned, &mut next, stream_batch("c", 6));
        assert_eq!(
            ack,
            Response::SubmitAcked {
                contiguous: 5,
                queued: 0,
                refusals: vec![BatchRefusal { seq: 6, code: None }],
            }
        );
        assert_eq!(next, 5);
    }

    #[test]
    fn hard_refusals_carry_their_error_code() {
        let mut next = 0;
        let ack = dispatch(&Canned, &mut next, stream_batch("gone", 0));
        assert_eq!(
            ack,
            Response::SubmitAcked {
                contiguous: 0,
                queued: 0,
                refusals: vec![BatchRefusal {
                    seq: 0,
                    code: Some(ErrorCode::UnknownCampaign)
                }],
            }
        );
        assert_eq!(next, 0);
    }
}
