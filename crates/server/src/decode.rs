//! Incremental frame decoding for the event-driven front end.
//!
//! A reactor thread reads whatever bytes a socket has — one byte, half
//! a frame, three frames and a torn tail — and must never block waiting
//! for the rest. [`FrameDecoder`] is the per-connection accumulator
//! that turns those arbitrary read boundaries back into whole frames:
//! bytes go in via [`extend`](FrameDecoder::extend), complete
//! checksummed bodies come out via
//! [`next_frame`](FrameDecoder::next_frame), and a frame split across
//! any number of reads decodes identically to one read off a blocking
//! socket (pinned by `decoder_proptests.rs` at every byte boundary).
//!
//! The decoder is a thin stateful wrapper over [`wire::split_frame`] —
//! the same pure decode the blocking path and the malformed-input
//! proptests use — so every hardening property carries over: a typed
//! [`WireError`] for corruption, no allocation driven by an unvalidated
//! length, no panic on any byte string.

use crate::wire::{self, WireError, FRAME_HEADER_LEN, MAX_FRAME_LEN};

/// How much dead space the read buffer may accumulate before the live
/// tail is compacted to the front. Compaction is O(live bytes), so
/// amortising it against at least a header's worth of consumed frames
/// keeps the decoder linear overall.
const COMPACT_THRESHOLD: usize = 4 * 1024;

/// A per-connection incremental frame decoder.
///
/// Feed it bytes in whatever chunks the socket yields; pull complete
/// frame bodies out. Once a frame is malformed (failed checksum, lying
/// length, oversized) the error is sticky — a connection that has lost
/// framing can never resynchronise, so every later call returns the
/// same error and the caller should hang up.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Accumulated bytes; `start..` is the undecoded tail.
    buf: Vec<u8>,
    /// Offset of the first undecoded byte.
    start: usize,
    /// The first hard decode error, latched.
    poisoned: Option<WireError>,
}

impl FrameDecoder {
    /// A fresh decoder with nothing buffered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the connection.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            return;
        }
        self.compact_if_worthwhile();
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame body, if the buffer holds one.
    ///
    /// `Ok(None)` means "more bytes needed" — the connection is healthy,
    /// just mid-frame. `Ok(Some(body))` is one decoded, checksum-valid
    /// frame body in arrival order.
    ///
    /// # Errors
    ///
    /// Any non-truncation [`WireError`] from the underlying
    /// [`wire::split_frame`]; the error latches and the connection
    /// should be closed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        match wire::split_frame(&self.buf[self.start..]) {
            Ok((body, consumed)) => {
                let body = body.to_vec();
                self.start += consumed;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                Ok(Some(body))
            }
            Err(WireError::Truncated { .. }) => Ok(None),
            Err(err) => {
                self.poisoned = Some(err.clone());
                Err(err)
            }
        }
    }

    /// Whether bytes of an incomplete frame are buffered — the
    /// distinction the reactor's deadlines care about: a connection
    /// holding half a frame is *stalled* (short deadline), an empty one
    /// is merely *idle* (long deadline).
    pub fn has_partial(&self) -> bool {
        self.start < self.buf.len()
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether a hard decode error has latched.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Upper bound on bytes worth reading right now: enough to finish
    /// the frame in progress (or start a new one) without letting one
    /// connection buffer unboundedly past [`MAX_FRAME_LEN`].
    pub fn read_budget(&self) -> usize {
        (MAX_FRAME_LEN + FRAME_HEADER_LEN).saturating_sub(self.buffered())
    }

    fn compact_if_worthwhile(&mut self) {
        if self.start >= COMPACT_THRESHOLD && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Request;

    fn frames() -> Vec<Vec<u8>> {
        vec![
            Request::QueryTruths {
                campaign: "a".to_string(),
            }
            .encode(),
            Request::CloseRound {
                campaign: "b".to_string(),
                epoch: 3,
            }
            .encode(),
            Request::QueryBudget {
                campaign: "c".to_string(),
            }
            .encode(),
        ]
    }

    #[test]
    fn one_byte_at_a_time_yields_every_frame_in_order() {
        let frames = frames();
        let stream: Vec<u8> = frames.concat();
        let mut decoder = FrameDecoder::new();
        let mut out = Vec::new();
        for &b in &stream {
            decoder.extend(&[b]);
            while let Some(body) = decoder.next_frame().unwrap() {
                out.push(body);
            }
        }
        let expected: Vec<Vec<u8>> = frames
            .iter()
            .map(|f| f[FRAME_HEADER_LEN..].to_vec())
            .collect();
        assert_eq!(out, expected);
        assert!(!decoder.has_partial());
    }

    #[test]
    fn many_frames_in_one_read_drain_without_more_input() {
        let stream: Vec<u8> = frames().concat();
        let mut decoder = FrameDecoder::new();
        decoder.extend(&stream);
        let mut n = 0;
        while decoder.next_frame().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn partial_frames_report_stalled_not_idle() {
        let frame = frames().remove(0);
        let mut decoder = FrameDecoder::new();
        assert!(!decoder.has_partial(), "empty decoder is idle");
        decoder.extend(&frame[..frame.len() - 1]);
        assert_eq!(decoder.next_frame().unwrap(), None);
        assert!(decoder.has_partial(), "a torn frame is a stall");
        decoder.extend(&frame[frame.len() - 1..]);
        assert!(decoder.next_frame().unwrap().is_some());
        assert!(!decoder.has_partial());
    }

    #[test]
    fn corruption_latches_and_repeats() {
        let mut frame = frames().remove(0);
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let mut decoder = FrameDecoder::new();
        decoder.extend(&frame);
        assert_eq!(decoder.next_frame(), Err(WireError::Checksum));
        assert!(decoder.is_poisoned());
        // Later (even well-formed) bytes cannot resynchronise the stream.
        decoder.extend(&frames()[1]);
        assert_eq!(decoder.next_frame(), Err(WireError::Checksum));
    }

    #[test]
    fn compaction_preserves_the_undecoded_tail() {
        // Enough small frames to push `start` past the compaction
        // threshold, with a torn frame held across the boundary.
        let small = Request::QueryTruths {
            campaign: "x".to_string(),
        }
        .encode();
        let mut decoder = FrameDecoder::new();
        let mut decoded = 0;
        for _ in 0..1024 {
            decoder.extend(&small);
            while decoder.next_frame().unwrap().is_some() {
                decoded += 1;
            }
        }
        // Tear one frame across two extends with decode attempts between.
        decoder.extend(&small[..5]);
        assert_eq!(decoder.next_frame().unwrap(), None);
        decoder.extend(&small[5..]);
        assert!(decoder.next_frame().unwrap().is_some());
        assert_eq!(decoded, 1024);
    }

    #[test]
    fn read_budget_is_bounded_by_the_frame_cap() {
        let mut decoder = FrameDecoder::new();
        assert_eq!(decoder.read_budget(), MAX_FRAME_LEN + FRAME_HEADER_LEN);
        decoder.extend(&[0u8; 7]);
        assert_eq!(decoder.read_budget(), MAX_FRAME_LEN + FRAME_HEADER_LEN - 7);
    }
}
