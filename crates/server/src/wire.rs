//! The campaign service's binary wire protocol (version 1).
//!
//! Everything on the socket is a **frame**: a fixed 16-byte header
//! followed by a checksummed body, mirroring the engine's write-ahead
//! log framing so both binary formats in the workspace share one
//! discipline (length prefix with an XOR self-check, FNV-1a checksum,
//! size-bounded decode).
//!
//! # On-the-wire layout (version 1, pinned by a golden test)
//!
//! ```text
//! hello  := "DPTDNET" 0x01                    (8 bytes, client → server,
//!                                              echoed back on accept)
//! frame  := body_len:u32 len_check:u32 checksum:u64 body
//! body   := kind:u8 payload                   (all little-endian)
//! ```
//!
//! `len_check` is `body_len ^ "NET1"`; `checksum` is FNV-1a over the
//! body. A header whose self-check fails, a body whose checksum fails,
//! or a length past [`MAX_FRAME_LEN`] is a typed [`WireError`] — never a
//! panic, and never an allocation driven by an unvalidated length: every
//! count a payload claims is bounded against the bytes actually present
//! before any `Vec` is sized (the same hardening as the WAL decode).
//!
//! Request kinds are `0x01..`, response kinds `0x81..`; an unknown kind
//! is [`WireError::UnknownKind`]. Strings (campaign ids) are
//! length-prefixed UTF-8, bounded by [`MAX_CAMPAIGN_ID_LEN`] and
//! restricted to `[A-Za-z0-9._-]` (they name per-campaign WAL
//! directories, so path separators must be unrepresentable).

use std::fmt;

use dptd_core::roles::PerturbedReport;
use dptd_obs::{
    HistogramSnapshot, MetricValue, MetricsSnapshot, SpanContext, TraceEvent, NUM_BUCKETS,
};
use dptd_protocol::message::StampedReport;
use dptd_stats::digest::Fnv1a;

/// The 8-byte connection hello: 7 ASCII magic bytes plus the protocol
/// version. Sent by the client on connect, echoed by the server.
pub const HELLO: [u8; 8] = *b"DPTDNET\x01";

/// Bytes of frame overhead before each body (length prefix, length
/// self-check, checksum).
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 8;

/// Upper bound on a frame body. Large submissions must be chunked by the
/// client ([`crate::client::Client::submit_chunked`]); the bound is what
/// lets the server reject a length-lying header before allocating.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Upper bound on a campaign id, in bytes.
pub const MAX_CAMPAIGN_ID_LEN: usize = 64;

/// XOR mask for the frame header's length self-check.
const LEN_XOR: u32 = u32::from_le_bytes(*b"NET1");

/// Typed wire-level failures. Every way a byte stream can be malformed
/// maps here; the codec never panics and never over-allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does (stream truncated mid-frame
    /// — e.g. a peer that died mid-write).
    Truncated {
        /// Bytes the frame needs.
        needed: usize,
        /// Bytes present.
        have: usize,
    },
    /// The header claims a body larger than [`MAX_FRAME_LEN`].
    TooLarge {
        /// The claimed body length.
        claimed: u64,
    },
    /// The length prefix failed its XOR self-check — a corrupted or
    /// non-protocol header.
    LenCheck,
    /// The body checksum did not match its header.
    Checksum,
    /// The body's kind byte names no known message.
    UnknownKind(
        /// The offending kind byte.
        u8,
    ),
    /// The payload violates its kind's structure (a claimed count larger
    /// than the bytes present, an over-long or ill-charactered campaign
    /// id, trailing bytes, …).
    Malformed(
        /// What was wrong.
        &'static str,
    ),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "frame truncated: needs {needed} bytes, got {have}")
            }
            WireError::TooLarge { claimed } => {
                write!(
                    f,
                    "frame body of {claimed} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            WireError::LenCheck => write!(f, "frame length prefix failed its self-check"),
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::UnknownKind(kind) => write!(f, "unknown frame kind 0x{kind:02x}"),
            WireError::Malformed(reason) => write!(f, "malformed frame payload: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why the server refused a request, as a stable wire-level code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// No campaign under that id.
    UnknownCampaign = 1,
    /// A live campaign already holds that id.
    CampaignExists = 2,
    /// The request was structurally valid but semantically wrong (wrong
    /// epoch, bad sizing, ill-formed campaign id, …).
    InvalidRequest = 3,
    /// The round starved: after deadline/dedup/refusal filtering some
    /// object had no surviving report.
    InsufficientCoverage = 4,
    /// Every submitting user's privacy budget is exhausted — the
    /// [`dptd_protocol::budget::BudgetAccountant`] refused them all.
    BudgetExhausted = 5,
    /// The campaign's write-ahead log refused the operation (locked by
    /// another writer, corrupt, policy mismatch, or durability was
    /// requested on a server with no WAL root).
    WalRefused = 6,
    /// The server is at its connection worker budget.
    ServerBusy = 7,
    /// Anything else (engine/internal failures).
    Internal = 8,
    /// The campaign is quarantined: a worker panicked while holding its
    /// state lock, so the in-memory state cannot be trusted mid-round.
    /// Requests on the campaign are refused instead of risking a
    /// corrupted merge; recreate the campaign (or restart the server,
    /// replaying its WAL) to recover.
    CampaignQuarantined = 9,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_u8(code: u8) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::UnknownCampaign,
            2 => ErrorCode::CampaignExists,
            3 => ErrorCode::InvalidRequest,
            4 => ErrorCode::InsufficientCoverage,
            5 => ErrorCode::BudgetExhausted,
            6 => ErrorCode::WalRefused,
            7 => ErrorCode::ServerBusy,
            8 => ErrorCode::Internal,
            9 => ErrorCode::CampaignQuarantined,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::UnknownCampaign => "unknown-campaign",
            ErrorCode::CampaignExists => "campaign-exists",
            ErrorCode::InvalidRequest => "invalid-request",
            ErrorCode::InsufficientCoverage => "insufficient-coverage",
            ErrorCode::BudgetExhausted => "budget-exhausted",
            ErrorCode::WalRefused => "wal-refused",
            ErrorCode::ServerBusy => "server-busy",
            ErrorCode::Internal => "internal",
            ErrorCode::CampaignQuarantined => "campaign-quarantined",
        };
        write!(f, "{name}")
    }
}

/// A store operation replicated from a primary's WAL directory to its
/// follower, in commit order. The four variants mirror the four
/// mutating methods of the engine's `StoreFs` trait, so a follower that
/// applies them in sequence reconstructs the primary's directory byte
/// for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum StoreOp {
    /// Append bytes to a (possibly new) file.
    Append = 0,
    /// Replace a file's contents all-or-nothing.
    WriteAtomic = 1,
    /// Shrink a file to `arg` bytes.
    Truncate = 2,
    /// Delete a file.
    Remove = 3,
}

impl StoreOp {
    /// Decode a wire byte.
    pub fn from_u8(op: u8) -> Option<Self> {
        Some(match op {
            0 => StoreOp::Append,
            1 => StoreOp::WriteAtomic,
            2 => StoreOp::Truncate,
            3 => StoreOp::Remove,
            _ => return None,
        })
    }
}

/// A campaign's engine counters as reported over the wire — the
/// remotely observable subset of the engine's `EngineMetrics` plus the
/// registry's current submission-queue depth. Latency quantiles are in
/// nanoseconds (`0` before any ingest has been timed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsReport {
    /// Reports offered to the engine.
    pub reports_submitted: u64,
    /// Reports that survived dedup/deadline and were aggregated.
    pub reports_accepted: u64,
    /// Duplicates discarded (first-wins).
    pub duplicates_discarded: u64,
    /// Reports dropped as late.
    pub late_dropped: u64,
    /// Reports dropped as out-of-order.
    pub out_of_order_dropped: u64,
    /// Times a producer stalled on a full shard queue.
    pub backpressure_stalls: u64,
    /// Epochs merged into the estimator.
    pub epochs_merged: u64,
    /// High-water mark of the engine's shard queues.
    pub max_queue_depth: u64,
    /// Reports currently buffered for the next close (pending plus the
    /// one-round lookahead).
    pub queue_depth: u64,
    /// Accepted reports per second of engine wall time.
    pub throughput_rps: f64,
    /// Median ingest latency, nanoseconds.
    pub ingest_p50_ns: u64,
    /// 99th-percentile ingest latency, nanoseconds.
    pub ingest_p99_ns: u64,
    /// Connections live on the serving front end right now (a
    /// server-wide gauge, repeated in every campaign's report).
    pub conn_live: u64,
    /// Connections accepted since the server started.
    pub conn_accepted: u64,
    /// Connections refused at accept because the front end was at its
    /// connection budget.
    pub conn_refused: u64,
    /// I/O threads the front end is running.
    pub io_threads: u64,
}

/// Sizing and privacy policy for a campaign created over the wire —
/// everything the server needs to build the engine, the campaign driver
/// and (optionally) the per-campaign write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSpec {
    /// Population size.
    pub num_users: u64,
    /// Objects per round.
    pub num_objects: u64,
    /// Engine ingestion shards.
    pub num_shards: u64,
    /// Engine drain workers (0 = auto).
    pub workers: u64,
    /// Engine per-shard queue depth.
    pub engine_queue: u64,
    /// Per-round submission deadline (virtual µs).
    pub deadline_us: u64,
    /// Cap on reports buffered between `SubmitReports` and `CloseRound`;
    /// past it the server replies `Busy` instead of growing the queue.
    pub submission_capacity: u64,
    /// ε one aggregated report costs its user.
    pub per_round_epsilon: f64,
    /// δ one aggregated report costs its user.
    pub per_round_delta: f64,
    /// The campaign-wide ε ceiling per user.
    pub budget_epsilon: f64,
    /// The campaign-wide δ ceiling per user.
    pub budget_delta: f64,
    /// Opaque fingerprint of the input stream driving this campaign
    /// (`0` when unused). Stamped into every durable WAL record: a
    /// re-create that would resume the log under a **different** stream
    /// (e.g. `dptd submit` with a new `--seed`) is refused instead of
    /// silently replaying the ledger against reports it never
    /// accounted — the same guard `dptd campaign --wal` applies.
    pub stream_tag: u64,
    /// Whether the campaign logs every round to its own WAL directory
    /// under the server's WAL root (and resumes from it when re-created).
    pub durable: bool,
}

/// A client→server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a new campaign (or resume a durable one from its WAL).
    CreateCampaign {
        /// The campaign id (also its WAL directory name when durable).
        campaign: String,
        /// Sizing and privacy policy.
        spec: CampaignSpec,
    },
    /// Append a batch of stamped reports to the campaign's bounded
    /// submission queue. All reports must carry the campaign's next
    /// epoch; the batch is taken atomically or refused (`Busy`).
    SubmitReports {
        /// Target campaign.
        campaign: String,
        /// The batch, in stream order.
        reports: Vec<StampedReport>,
        /// Optional trace-context extension: the sender's current span,
        /// so the server's queue/merge spans causally link to the
        /// client's submit span. `None` encodes byte-identically to the
        /// pre-extension frame, so untraced peers interoperate.
        ctx: Option<SpanContext>,
    },
    /// Execute the campaign's next round over everything submitted since
    /// the previous close.
    CloseRound {
        /// Target campaign.
        campaign: String,
        /// The epoch being closed (must be the campaign's next epoch —
        /// a stale retry is refused instead of silently re-running).
        epoch: u64,
    },
    /// Read the latest truths and the current weights digest.
    QueryTruths {
        /// Target campaign.
        campaign: String,
    },
    /// Read the privacy-budget ledger.
    QueryBudget {
        /// Target campaign.
        campaign: String,
    },
    /// Read the campaign's engine metrics (throughput, latency
    /// quantiles, drop counters, queue depth).
    QueryMetrics {
        /// Target campaign.
        campaign: String,
    },
    /// Identify this connection as a cluster peer. A coordinator sends
    /// it after the hello so a node can confirm the partition geometry
    /// both sides assume; a plain campaign server refuses it.
    NodeHello {
        /// The node's index in the cluster's partition map.
        node_id: u32,
        /// Total nodes the sender believes the cluster has.
        num_nodes: u32,
    },
    /// Phase one of the cluster's two-phase round barrier: drain the
    /// node's submission queue for `epoch`, filter it exactly as a
    /// round close would (refusal withhold → deadline → first-wins
    /// dedup), and return the surviving claims **without** touching
    /// durable state. The coordinator merges all nodes' claims before
    /// anything commits.
    CloseRoundPrepare {
        /// Target campaign.
        campaign: String,
        /// The epoch being closed (must be the node's next epoch).
        epoch: u64,
        /// Node-local user ids whose budget the coordinator's global
        /// ledger says is exhausted — their reports are withheld before
        /// the deadline cut, matching the driver's refusal order.
        refused: Vec<u64>,
        /// Optional trace-context extension: the coordinator's barrier
        /// span, so the node's drain span parents under it in a merged
        /// timeline. `None` is byte-identical to the pre-extension frame.
        ctx: Option<SpanContext>,
    },
    /// Phase two of the barrier: durably append the node's slice of the
    /// merged round to its WAL. Idempotent — re-sending the previous
    /// epoch's byte-identical record is acknowledged without a second
    /// append, so a coordinator that died between commit fan-out and
    /// its own state advance can safely re-drive the barrier.
    CloseRoundCommit {
        /// Target campaign.
        campaign: String,
        /// The epoch being committed.
        epoch: u64,
        /// Estimator batches merged globally after this round.
        batches_seen: u64,
        /// Node-local ids accepted this round, ascending.
        accepted_users: Vec<u64>,
        /// The node's slice of the post-round cumulative losses, one
        /// per local user.
        cumulative_losses: Vec<f64>,
        /// The node's slice of the post-round debit ledger, one per
        /// local user.
        rounds_debited: Vec<u32>,
        /// Optional trace-context extension (see
        /// [`Request::CloseRoundPrepare::ctx`]).
        ctx: Option<SpanContext>,
    },
    /// Stream one committed store operation to a follower, in commit
    /// order. The follower applies it under its replica root and acks
    /// with the same sequence number.
    ReplicateSegment {
        /// The campaign whose WAL directory is being replicated.
        campaign: String,
        /// Position of this operation in the primary's commit order
        /// (strictly increasing from 0).
        seq: u64,
        /// Which store mutation to apply.
        op: StoreOp,
        /// The file within the campaign's directory.
        name: String,
        /// Operand for [`StoreOp::Truncate`] (the new length); `0`
        /// otherwise.
        arg: u64,
        /// Payload for [`StoreOp::Append`] / [`StoreOp::WriteAtomic`];
        /// empty otherwise.
        bytes: Vec<u8>,
    },
    /// Read a node's durable round ledger — what a fresh coordinator
    /// needs to rebuild global state after failover.
    QueryLedger {
        /// Target campaign.
        campaign: String,
        /// Epoch to read the ledger *as of*: the node answers with its
        /// state after committing `upto` (or refuses if it never did).
        /// `u64::MAX` means "your latest".
        upto: u64,
    },
    /// One batch of a **pipelined** submission stream. Unlike
    /// [`Request::SubmitReports`] the client does not wait for the
    /// previous batch's reply before sending the next: it keeps a window
    /// of batches in flight, each stamped with a per-connection sequence
    /// number (strictly increasing over *accepted* batches), and the
    /// server answers every batch with a cumulative
    /// [`Response::SubmitAcked`]. The connection front end accepts only
    /// the next in-order sequence number, so the submission queue sees
    /// the exact byte order the client sent — pipelining never perturbs
    /// campaign results.
    SubmitReportsStream {
        /// Target campaign.
        campaign: String,
        /// This batch's position in the connection's stream. The first
        /// batch on a connection is `0`; a refused batch is retried
        /// under the **same** number.
        seq: u64,
        /// The batch, in stream order.
        reports: Vec<StampedReport>,
        /// Optional trace-context extension (see
        /// [`Request::SubmitReports::ctx`]).
        ctx: Option<SpanContext>,
    },
    /// Read the server's full observability snapshot: every registry
    /// metric (connection gauges, per-campaign stage-busy counters,
    /// error-code frequencies, WAL bytes) plus per-campaign ingest
    /// histograms — the frame behind `dptd status --connect`. Unlike
    /// [`Request::QueryMetrics`] it is server-wide, not per-campaign.
    QueryStatus,
    /// Read the process's retained trace rings — every event the
    /// per-thread buffers still hold, plus the wall-clock anchor that
    /// lets a coordinator align timelines from different machines. The
    /// frame behind `dptd cluster trace`.
    QueryTrace,
}

/// One refused batch inside a [`Response::SubmitAcked`], carried as a
/// delta against the cumulative ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRefusal {
    /// The refused batch's sequence number.
    pub seq: u64,
    /// Why it was refused. `None` is retryable backpressure (the queue
    /// was full, or the batch arrived out of order behind another
    /// refusal): resend from this sequence number once the earlier
    /// refusal clears. `Some(code)` is a hard refusal.
    pub code: Option<ErrorCode>,
}

/// A server→client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Campaign registered.
    Created {
        /// Rounds already durably committed (non-zero only when a
        /// durable campaign resumed from its WAL).
        resumed_rounds: u64,
    },
    /// Batch accepted into the submission queue.
    Submitted {
        /// Reports now pending for the next close.
        queued: u64,
    },
    /// Backpressure: the submission queue cannot take the batch. Nothing
    /// was enqueued — the client must retry after a `CloseRound` drains
    /// the queue (the server never buffers unboundedly).
    Busy {
        /// Reports currently pending.
        queued: u64,
        /// The queue's capacity.
        capacity: u64,
    },
    /// A round executed.
    RoundClosed {
        /// The epoch that closed.
        epoch: u64,
        /// Reports aggregated.
        accepted: u64,
        /// Users refused because their budget was exhausted.
        refused: u64,
        /// Duplicates discarded (first-wins).
        duplicates: u64,
        /// Reports dropped as late.
        late: u64,
        /// Estimated truths for the round's objects.
        truths: Vec<f64>,
        /// FNV-1a digest of the post-round weights' bit patterns — the
        /// same digest `dptd campaign` prints, so wire and in-process
        /// runs diff from the shell.
        weights_digest: u64,
        /// Worst cumulative ε across the population after the round.
        max_spent_epsilon: f64,
        /// Worst cumulative δ across the population after the round.
        max_spent_delta: f64,
    },
    /// Current truths.
    Truths {
        /// Rounds completed so far.
        rounds_run: u64,
        /// Truths from the last closed round (empty before the first).
        truths: Vec<f64>,
        /// FNV-1a digest of the current weights.
        weights_digest: u64,
    },
    /// The privacy ledger.
    Budget {
        /// Users whose budget affords no further round.
        exhausted: u64,
        /// Worst cumulative ε spent.
        max_spent_epsilon: f64,
        /// Worst cumulative δ spent.
        max_spent_delta: f64,
        /// Per-user debit counts, user order — the exact snapshot
        /// [`dptd_protocol::budget::BudgetAccountant::debits_by_user`]
        /// exposes, so a wire ledger can be compared bit-for-bit with an
        /// in-process one.
        debits: Vec<u32>,
    },
    /// The request was refused.
    Error {
        /// Stable machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The campaign's engine counters.
    Metrics {
        /// The observable metrics snapshot (boxed — it is by far the
        /// widest variant, and responses travel through `Result` errors).
        metrics: Box<MetricsReport>,
    },
    /// The node accepts the peer handshake.
    NodeWelcome {
        /// The node's own index (must match the `NodeHello`).
        node_id: u32,
    },
    /// Phase-one result: the node's filtered claims for the epoch.
    Prepared {
        /// The epoch that was drained.
        epoch: u64,
        /// Duplicates discarded by the node's first-wins filter.
        duplicates: u64,
        /// Reports the node dropped as late.
        late: u64,
        /// Distinct refused users that actually submitted this epoch.
        refused_seen: u64,
        /// Surviving reports in ascending local-user order. `user` is
        /// the **node-local** dense id; the coordinator maps it back to
        /// the global id through the partition map.
        claims: Vec<PerturbedReport>,
    },
    /// Phase-two result: the node's WAL holds the epoch.
    Committed {
        /// The epoch now durable.
        epoch: u64,
        /// Whether a record was appended (`false` = the byte-identical
        /// record was already the node's latest — an idempotent retry).
        appended: bool,
    },
    /// The follower applied the replicated store operation.
    Replicated {
        /// Echo of the operation's sequence number.
        seq: u64,
    },
    /// Cumulative acknowledgement of a pipelined submission stream: one
    /// is sent for every [`Request::SubmitReportsStream`] frame, in
    /// order, so a client with `W` batches in flight reads `W` acks.
    SubmitAcked {
        /// Batches accepted contiguously from sequence `0` — equally,
        /// the next sequence number the server will accept. Everything
        /// below it is durably queued and will never be re-requested.
        contiguous: u64,
        /// Reports pending for the next close after the most recently
        /// accepted batch (the same counter as
        /// [`Response::Submitted::queued`]).
        queued: u64,
        /// Batches refused since the previous ack, as deltas. Empty
        /// when this ack's own batch was accepted.
        refusals: Vec<BatchRefusal>,
    },
    /// A node's durable round ledger.
    Ledger {
        /// The next epoch the node would commit.
        next_epoch: u64,
        /// Estimator batches reflected in the slices below.
        batches_seen: u64,
        /// Per-local-user debit counts.
        rounds_debited: Vec<u32>,
        /// Per-local-user cumulative losses.
        cumulative_losses: Vec<f64>,
    },
    /// The server's full observability snapshot (reply to
    /// [`Request::QueryStatus`]).
    Status {
        /// Every metric the server's registry holds, sorted by name.
        snapshot: dptd_obs::MetricsSnapshot,
    },
    /// The process's retained trace rings (reply to
    /// [`Request::QueryTrace`]).
    TraceDump {
        /// Wall-clock nanoseconds since the Unix epoch at the process's
        /// trace epoch — `ts_ns + anchor_ns` places an event on the
        /// shared wall clock, which is how a coordinator aligns rings
        /// from different processes into one timeline.
        anchor_ns: u64,
        /// Per-ring truncation: `(tid, events_overwritten)` for every
        /// ring that wrapped, so a merged timeline can say what is
        /// missing instead of silently looking complete.
        dropped: Vec<(u64, u64)>,
        /// The retained events, oldest-first per ring.
        events: Vec<TraceEvent>,
    },
}

const KIND_CREATE: u8 = 0x01;
const KIND_SUBMIT: u8 = 0x02;
const KIND_CLOSE: u8 = 0x03;
const KIND_QUERY_TRUTHS: u8 = 0x04;
const KIND_QUERY_BUDGET: u8 = 0x05;
const KIND_QUERY_METRICS: u8 = 0x06;
const KIND_NODE_HELLO: u8 = 0x07;
const KIND_CLOSE_PREPARE: u8 = 0x08;
const KIND_CLOSE_COMMIT: u8 = 0x09;
const KIND_REPLICATE: u8 = 0x0a;
const KIND_QUERY_LEDGER: u8 = 0x0b;
const KIND_SUBMIT_STREAM: u8 = 0x0c;
const KIND_QUERY_STATUS: u8 = 0x0d;
const KIND_QUERY_TRACE: u8 = 0x0e;
const KIND_CREATED: u8 = 0x81;
const KIND_SUBMITTED: u8 = 0x82;
const KIND_BUSY: u8 = 0x83;
const KIND_ROUND_CLOSED: u8 = 0x84;
const KIND_TRUTHS: u8 = 0x85;
const KIND_BUDGET: u8 = 0x86;
const KIND_ERROR: u8 = 0x87;
const KIND_METRICS: u8 = 0x88;
const KIND_NODE_WELCOME: u8 = 0x89;
const KIND_PREPARED: u8 = 0x8a;
const KIND_COMMITTED: u8 = 0x8b;
const KIND_REPLICATED: u8 = 0x8c;
const KIND_LEDGER: u8 = 0x8d;
const KIND_SUBMIT_ACKED: u8 = 0x8e;
const KIND_STATUS: u8 = 0x8f;
const KIND_TRACE_DUMP: u8 = 0x90;

fn checksum(body: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    for &b in body {
        h.write_u8(b);
    }
    h.finish()
}

/// Wrap an encoded body in the v1 frame header.
fn frame(body: Vec<u8>) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_FRAME_LEN, "oversized frame produced");
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&((body.len() as u32) ^ LEN_XOR).to_le_bytes());
    out.extend_from_slice(&checksum(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Split one frame off the front of `buf`.
///
/// Returns the frame body and the total bytes consumed. This is the pure
/// decode the socket layer and the malformed-input proptests share: any
/// byte string either yields a body, a typed [`WireError`], or
/// [`WireError::Truncated`] (more bytes needed) — never a panic, and the
/// body allocation is bounded by the bytes actually present.
///
/// # Errors
///
/// [`WireError::Truncated`] when `buf` holds less than a full frame;
/// [`WireError::LenCheck`], [`WireError::TooLarge`], or
/// [`WireError::Checksum`] for an invalid header or body.
pub fn split_frame(buf: &[u8]) -> Result<(&[u8], usize), WireError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(WireError::Truncated {
            needed: FRAME_HEADER_LEN,
            have: buf.len(),
        });
    }
    let body_len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    let len_check = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if body_len ^ LEN_XOR != len_check {
        return Err(WireError::LenCheck);
    }
    if body_len as usize > MAX_FRAME_LEN {
        return Err(WireError::TooLarge {
            claimed: u64::from(body_len),
        });
    }
    let stored_sum = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let total = FRAME_HEADER_LEN + body_len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    let body = &buf[FRAME_HEADER_LEN..total];
    if checksum(body) != stored_sum {
        return Err(WireError::Checksum);
    }
    Ok((body, total))
}

/// Validate a campaign id: non-empty, at most [`MAX_CAMPAIGN_ID_LEN`]
/// bytes, characters from `[A-Za-z0-9._-]`, not starting with a dot.
/// Ids name per-campaign WAL directories, so nothing path-like may pass.
///
/// # Errors
///
/// [`WireError::Malformed`] describing the violated rule.
pub fn validate_campaign_id(id: &str) -> Result<(), WireError> {
    if id.is_empty() {
        return Err(WireError::Malformed("campaign id is empty"));
    }
    if id.len() > MAX_CAMPAIGN_ID_LEN {
        return Err(WireError::Malformed("campaign id too long"));
    }
    if id.starts_with('.') {
        return Err(WireError::Malformed("campaign id starts with a dot"));
    }
    if !id
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return Err(WireError::Malformed(
            "campaign id may only use [A-Za-z0-9._-]",
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Body writer/reader
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(kind: u8) -> Self {
        Self { buf: vec![kind] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Malformed("payload shorter than its fields"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A claimed element count, bounded by the bytes still present: each
    /// element needs at least `min_elem_bytes`, so a count the remaining
    /// buffer cannot possibly hold is malformed — checked **before** any
    /// allocation sized by it.
    fn bounded_count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let claimed = self.u32()? as usize;
        let need = claimed
            .checked_mul(min_elem_bytes)
            .ok_or(WireError::Malformed("element count overflows"))?;
        if self.buf.len() < need {
            return Err(WireError::Malformed(
                "claimed count larger than the payload",
            ));
        }
        Ok(claimed)
    }
    fn str(&mut self) -> Result<String, WireError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().expect("2")) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string is not UTF-8"))
    }
    fn campaign_id(&mut self) -> Result<String, WireError> {
        let id = self.str()?;
        validate_campaign_id(&id)?;
        Ok(id)
    }
    fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after the payload"))
        }
    }
}

/// Minimum encoded size of one [`StampedReport`] (epoch + sent_at + user
/// + value count, with zero values).
const MIN_REPORT_BYTES: usize = 8 + 8 + 8 + 4;
/// Encoded size of one report value (object:u32 + value:f64).
const VALUE_BYTES: usize = 4 + 8;

fn write_report(w: &mut Writer, r: &StampedReport) {
    w.u64(r.epoch);
    w.u64(r.sent_at_us);
    w.u64(r.report.user as u64);
    w.u32(r.report.values.len() as u32);
    for &(object, value) in &r.report.values {
        w.u32(object as u32);
        w.f64(value);
    }
}

fn read_report(r: &mut Reader<'_>) -> Result<StampedReport, WireError> {
    let epoch = r.u64()?;
    let sent_at_us = r.u64()?;
    let user = usize::try_from(r.u64()?).map_err(|_| WireError::Malformed("user overflows"))?;
    let nvals = r.bounded_count(VALUE_BYTES)?;
    let mut values = Vec::with_capacity(nvals);
    for _ in 0..nvals {
        let object =
            usize::try_from(r.u32()?).map_err(|_| WireError::Malformed("object overflows"))?;
        values.push((object, r.f64()?));
    }
    Ok(StampedReport {
        epoch,
        sent_at_us,
        report: PerturbedReport { user, values },
    })
}

fn write_f64s(w: &mut Writer, vs: &[f64]) {
    w.u32(vs.len() as u32);
    for &v in vs {
        w.f64(v);
    }
}

fn read_f64s(r: &mut Reader<'_>) -> Result<Vec<f64>, WireError> {
    let n = r.bounded_count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.f64()?);
    }
    Ok(out)
}

fn write_u64s(w: &mut Writer, vs: &[u64]) {
    w.u32(vs.len() as u32);
    for &v in vs {
        w.u64(v);
    }
}

fn read_u64s(r: &mut Reader<'_>) -> Result<Vec<u64>, WireError> {
    let n = r.bounded_count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

fn write_u32s(w: &mut Writer, vs: &[u32]) {
    w.u32(vs.len() as u32);
    for &v in vs {
        w.u32(v);
    }
}

fn read_u32s(r: &mut Reader<'_>) -> Result<Vec<u32>, WireError> {
    let n = r.bounded_count(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

/// Minimum encoded size of one prepared claim (user + value count, with
/// zero values).
const MIN_CLAIM_BYTES: usize = 8 + 4;

/// Encoded size of one [`BatchRefusal`] (seq:u64 + code:u8).
const MIN_REFUSAL_BYTES: usize = 8 + 1;

fn write_claim(w: &mut Writer, c: &PerturbedReport) {
    w.u64(c.user as u64);
    w.u32(c.values.len() as u32);
    for &(object, value) in &c.values {
        w.u32(object as u32);
        w.f64(value);
    }
}

fn read_claim(r: &mut Reader<'_>) -> Result<PerturbedReport, WireError> {
    let user = usize::try_from(r.u64()?).map_err(|_| WireError::Malformed("user overflows"))?;
    let nvals = r.bounded_count(VALUE_BYTES)?;
    let mut values = Vec::with_capacity(nvals);
    for _ in 0..nvals {
        let object =
            usize::try_from(r.u32()?).map_err(|_| WireError::Malformed("object overflows"))?;
        values.push((object, r.f64()?));
    }
    Ok(PerturbedReport { user, values })
}

/// Encoded size of the optional trace-context extension (trace id +
/// span id). When present it is always the **last** 16 bytes of the
/// payload — decoders read it iff bytes remain after the v1 fields, so
/// an absent context keeps the frame byte-identical to the
/// pre-extension layout and old peers interoperate untraced.
const CTX_BYTES: usize = 8 + 8;

fn write_opt_ctx(w: &mut Writer, ctx: Option<SpanContext>) {
    if let Some(c) = ctx {
        w.u64(c.trace_id);
        w.u64(c.span_id);
    }
}

fn read_opt_ctx(r: &mut Reader<'_>) -> Result<Option<SpanContext>, WireError> {
    if r.buf.is_empty() {
        return Ok(None);
    }
    if r.buf.len() != CTX_BYTES {
        return Err(WireError::Malformed(
            "trace-context extension is not 16 bytes",
        ));
    }
    Ok(Some(SpanContext {
        trace_id: r.u64()?,
        span_id: r.u64()?,
    }))
}

/// Encoded size of one trace event (tid + ts + phase + code + arg +
/// trace/span/parent ids).
const TRACE_EVENT_BYTES: usize = 8 + 8 + 1 + 4 + 8 + 8 + 8 + 8;
/// Encoded size of one per-ring truncation pair (tid + dropped).
const TRACE_DROP_BYTES: usize = 8 + 8;

fn write_trace_event(w: &mut Writer, e: &TraceEvent) {
    w.u64(e.tid);
    w.u64(e.ts_ns);
    w.u8(e.phase as u8);
    w.u32(e.code);
    w.u64(e.arg);
    w.u64(e.trace_id);
    w.u64(e.span_id);
    w.u64(e.parent_span);
}

fn read_trace_event(r: &mut Reader<'_>) -> Result<TraceEvent, WireError> {
    let tid = r.u64()?;
    let ts_ns = r.u64()?;
    let phase = match r.u8()? {
        b'B' => 'B',
        b'E' => 'E',
        b'i' => 'i',
        _ => return Err(WireError::Malformed("unknown trace event phase")),
    };
    Ok(TraceEvent {
        tid,
        ts_ns,
        phase,
        code: r.u32()?,
        arg: r.u64()?,
        trace_id: r.u64()?,
        span_id: r.u64()?,
        parent_span: r.u64()?,
    })
}

/// Validate a replicated store file name: same path-safe charset as a
/// campaign id (the follower joins it onto its replica directory, so
/// nothing path-like may pass).
fn validate_store_name(name: &str) -> Result<(), WireError> {
    validate_campaign_id(name).map_err(|_| WireError::Malformed("store file name is not path-safe"))
}

impl CampaignSpec {
    fn write(&self, w: &mut Writer) {
        w.u64(self.num_users);
        w.u64(self.num_objects);
        w.u64(self.num_shards);
        w.u64(self.workers);
        w.u64(self.engine_queue);
        w.u64(self.deadline_us);
        w.u64(self.submission_capacity);
        w.f64(self.per_round_epsilon);
        w.f64(self.per_round_delta);
        w.f64(self.budget_epsilon);
        w.f64(self.budget_delta);
        w.u64(self.stream_tag);
        w.u8(u8::from(self.durable));
    }

    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            num_users: r.u64()?,
            num_objects: r.u64()?,
            num_shards: r.u64()?,
            workers: r.u64()?,
            engine_queue: r.u64()?,
            deadline_us: r.u64()?,
            submission_capacity: r.u64()?,
            per_round_epsilon: r.f64()?,
            per_round_delta: r.f64()?,
            budget_epsilon: r.f64()?,
            budget_delta: r.f64()?,
            stream_tag: r.u64()?,
            durable: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("durable flag is not 0/1")),
            },
        })
    }
}

impl MetricsReport {
    fn write(&self, w: &mut Writer) {
        w.u64(self.reports_submitted);
        w.u64(self.reports_accepted);
        w.u64(self.duplicates_discarded);
        w.u64(self.late_dropped);
        w.u64(self.out_of_order_dropped);
        w.u64(self.backpressure_stalls);
        w.u64(self.epochs_merged);
        w.u64(self.max_queue_depth);
        w.u64(self.queue_depth);
        w.f64(self.throughput_rps);
        w.u64(self.ingest_p50_ns);
        w.u64(self.ingest_p99_ns);
        w.u64(self.conn_live);
        w.u64(self.conn_accepted);
        w.u64(self.conn_refused);
        w.u64(self.io_threads);
    }

    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            reports_submitted: r.u64()?,
            reports_accepted: r.u64()?,
            duplicates_discarded: r.u64()?,
            late_dropped: r.u64()?,
            out_of_order_dropped: r.u64()?,
            backpressure_stalls: r.u64()?,
            epochs_merged: r.u64()?,
            max_queue_depth: r.u64()?,
            queue_depth: r.u64()?,
            throughput_rps: r.f64()?,
            ingest_p50_ns: r.u64()?,
            ingest_p99_ns: r.u64()?,
            conn_live: r.u64()?,
            conn_accepted: r.u64()?,
            conn_refused: r.u64()?,
            io_threads: r.u64()?,
        })
    }
}

/// Metric-value tags inside a [`Response::Status`] snapshot entry.
const VALUE_TAG_COUNTER: u8 = 0;
const VALUE_TAG_GAUGE: u8 = 1;
const VALUE_TAG_HISTOGRAM: u8 = 2;

/// Minimum encoded size of one snapshot entry (name length prefix +
/// value tag, with an empty name and a counter value's u64 to follow —
/// the tag byte plus the counter payload is the smallest value).
const MIN_SNAPSHOT_ENTRY_BYTES: usize = 2 + 1 + 8;
/// Encoded size of one sparse histogram bucket (index:u32 + count:u64).
const SNAPSHOT_BUCKET_BYTES: usize = 4 + 8;

fn write_hist_snapshot(w: &mut Writer, h: &HistogramSnapshot) {
    w.u64(h.count);
    w.u64(h.total_ns);
    w.u64(h.max_ns);
    w.u32(h.buckets.len() as u32);
    for &(idx, n) in &h.buckets {
        w.u32(idx);
        w.u64(n);
    }
}

fn read_hist_snapshot(r: &mut Reader<'_>) -> Result<HistogramSnapshot, WireError> {
    let count = r.u64()?;
    let total_ns = r.u64()?;
    let max_ns = r.u64()?;
    let nbuckets = r.bounded_count(SNAPSHOT_BUCKET_BYTES)?;
    let mut buckets = Vec::with_capacity(nbuckets);
    let mut prev: Option<u32> = None;
    for _ in 0..nbuckets {
        let idx = r.u32()?;
        if idx as usize >= NUM_BUCKETS {
            return Err(WireError::Malformed("histogram bucket index out of range"));
        }
        if prev.is_some_and(|p| idx <= p) {
            return Err(WireError::Malformed(
                "histogram bucket indices not strictly increasing",
            ));
        }
        prev = Some(idx);
        buckets.push((idx, r.u64()?));
    }
    Ok(HistogramSnapshot {
        count,
        total_ns,
        max_ns,
        buckets,
    })
}

fn write_snapshot(w: &mut Writer, s: &MetricsSnapshot) {
    w.u32(s.entries.len() as u32);
    for (name, value) in &s.entries {
        w.str(name);
        match value {
            MetricValue::Counter(v) => {
                w.u8(VALUE_TAG_COUNTER);
                w.u64(*v);
            }
            MetricValue::Gauge(v) => {
                w.u8(VALUE_TAG_GAUGE);
                w.u64(*v);
            }
            MetricValue::Histogram(h) => {
                w.u8(VALUE_TAG_HISTOGRAM);
                write_hist_snapshot(w, h);
            }
        }
    }
}

fn read_snapshot(r: &mut Reader<'_>) -> Result<MetricsSnapshot, WireError> {
    let n = r.bounded_count(MIN_SNAPSHOT_ENTRY_BYTES)?;
    let mut out = MetricsSnapshot::new();
    for _ in 0..n {
        let name = r.str()?;
        let value = match r.u8()? {
            VALUE_TAG_COUNTER => MetricValue::Counter(r.u64()?),
            VALUE_TAG_GAUGE => MetricValue::Gauge(r.u64()?),
            VALUE_TAG_HISTOGRAM => MetricValue::Histogram(read_hist_snapshot(r)?),
            _ => return Err(WireError::Malformed("unknown metric value tag")),
        };
        out.set(name, value);
    }
    Ok(out)
}

impl Request {
    /// Encode as one complete frame (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w;
        match self {
            Request::CreateCampaign { campaign, spec } => {
                w = Writer::new(KIND_CREATE);
                w.str(campaign);
                spec.write(&mut w);
            }
            Request::SubmitReports {
                campaign,
                reports,
                ctx,
            } => {
                w = Writer::new(KIND_SUBMIT);
                w.str(campaign);
                w.u32(reports.len() as u32);
                for r in reports {
                    write_report(&mut w, r);
                }
                write_opt_ctx(&mut w, *ctx);
            }
            Request::CloseRound { campaign, epoch } => {
                w = Writer::new(KIND_CLOSE);
                w.str(campaign);
                w.u64(*epoch);
            }
            Request::QueryTruths { campaign } => {
                w = Writer::new(KIND_QUERY_TRUTHS);
                w.str(campaign);
            }
            Request::QueryBudget { campaign } => {
                w = Writer::new(KIND_QUERY_BUDGET);
                w.str(campaign);
            }
            Request::QueryMetrics { campaign } => {
                w = Writer::new(KIND_QUERY_METRICS);
                w.str(campaign);
            }
            Request::NodeHello { node_id, num_nodes } => {
                w = Writer::new(KIND_NODE_HELLO);
                w.u32(*node_id);
                w.u32(*num_nodes);
            }
            Request::CloseRoundPrepare {
                campaign,
                epoch,
                refused,
                ctx,
            } => {
                w = Writer::new(KIND_CLOSE_PREPARE);
                w.str(campaign);
                w.u64(*epoch);
                write_u64s(&mut w, refused);
                write_opt_ctx(&mut w, *ctx);
            }
            Request::CloseRoundCommit {
                campaign,
                epoch,
                batches_seen,
                accepted_users,
                cumulative_losses,
                rounds_debited,
                ctx,
            } => {
                w = Writer::new(KIND_CLOSE_COMMIT);
                w.str(campaign);
                w.u64(*epoch);
                w.u64(*batches_seen);
                write_u64s(&mut w, accepted_users);
                write_f64s(&mut w, cumulative_losses);
                write_u32s(&mut w, rounds_debited);
                write_opt_ctx(&mut w, *ctx);
            }
            Request::ReplicateSegment {
                campaign,
                seq,
                op,
                name,
                arg,
                bytes,
            } => {
                w = Writer::new(KIND_REPLICATE);
                w.str(campaign);
                w.u64(*seq);
                w.u8(*op as u8);
                w.str(name);
                w.u64(*arg);
                w.u32(bytes.len() as u32);
                w.buf.extend_from_slice(bytes);
            }
            Request::QueryLedger { campaign, upto } => {
                w = Writer::new(KIND_QUERY_LEDGER);
                w.str(campaign);
                w.u64(*upto);
            }
            Request::SubmitReportsStream {
                campaign,
                seq,
                reports,
                ctx,
            } => {
                w = Writer::new(KIND_SUBMIT_STREAM);
                w.str(campaign);
                w.u64(*seq);
                w.u32(reports.len() as u32);
                for r in reports {
                    write_report(&mut w, r);
                }
                write_opt_ctx(&mut w, *ctx);
            }
            Request::QueryStatus => {
                w = Writer::new(KIND_QUERY_STATUS);
            }
            Request::QueryTrace => {
                w = Writer::new(KIND_QUERY_TRACE);
            }
        }
        frame(w.buf)
    }

    /// Decode a frame body (as returned by [`split_frame`]).
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownKind`] for a non-request kind,
    /// [`WireError::Malformed`] for structural violations.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { buf: body };
        let kind = r.u8()?;
        let req = match kind {
            KIND_CREATE => Request::CreateCampaign {
                campaign: r.campaign_id()?,
                spec: CampaignSpec::read(&mut r)?,
            },
            KIND_SUBMIT => {
                let campaign = r.campaign_id()?;
                let count = r.bounded_count(MIN_REPORT_BYTES)?;
                let mut reports = Vec::with_capacity(count);
                for _ in 0..count {
                    reports.push(read_report(&mut r)?);
                }
                Request::SubmitReports {
                    campaign,
                    reports,
                    ctx: read_opt_ctx(&mut r)?,
                }
            }
            KIND_CLOSE => Request::CloseRound {
                campaign: r.campaign_id()?,
                epoch: r.u64()?,
            },
            KIND_QUERY_TRUTHS => Request::QueryTruths {
                campaign: r.campaign_id()?,
            },
            KIND_QUERY_BUDGET => Request::QueryBudget {
                campaign: r.campaign_id()?,
            },
            KIND_QUERY_METRICS => Request::QueryMetrics {
                campaign: r.campaign_id()?,
            },
            KIND_NODE_HELLO => Request::NodeHello {
                node_id: r.u32()?,
                num_nodes: r.u32()?,
            },
            KIND_CLOSE_PREPARE => Request::CloseRoundPrepare {
                campaign: r.campaign_id()?,
                epoch: r.u64()?,
                refused: read_u64s(&mut r)?,
                ctx: read_opt_ctx(&mut r)?,
            },
            KIND_CLOSE_COMMIT => Request::CloseRoundCommit {
                campaign: r.campaign_id()?,
                epoch: r.u64()?,
                batches_seen: r.u64()?,
                accepted_users: read_u64s(&mut r)?,
                cumulative_losses: read_f64s(&mut r)?,
                rounds_debited: read_u32s(&mut r)?,
                ctx: read_opt_ctx(&mut r)?,
            },
            KIND_REPLICATE => {
                let campaign = r.campaign_id()?;
                let seq = r.u64()?;
                let op = StoreOp::from_u8(r.u8()?)
                    .ok_or(WireError::Malformed("unknown store operation"))?;
                let name = r.str()?;
                validate_store_name(&name)?;
                let arg = r.u64()?;
                let n = r.bounded_count(1)?;
                let bytes = r.take(n)?.to_vec();
                Request::ReplicateSegment {
                    campaign,
                    seq,
                    op,
                    name,
                    arg,
                    bytes,
                }
            }
            KIND_QUERY_LEDGER => Request::QueryLedger {
                campaign: r.campaign_id()?,
                upto: r.u64()?,
            },
            KIND_SUBMIT_STREAM => {
                let campaign = r.campaign_id()?;
                let seq = r.u64()?;
                let count = r.bounded_count(MIN_REPORT_BYTES)?;
                let mut reports = Vec::with_capacity(count);
                for _ in 0..count {
                    reports.push(read_report(&mut r)?);
                }
                Request::SubmitReportsStream {
                    campaign,
                    seq,
                    reports,
                    ctx: read_opt_ctx(&mut r)?,
                }
            }
            KIND_QUERY_STATUS => Request::QueryStatus,
            KIND_QUERY_TRACE => Request::QueryTrace,
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode as one complete frame (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w;
        match self {
            Response::Created { resumed_rounds } => {
                w = Writer::new(KIND_CREATED);
                w.u64(*resumed_rounds);
            }
            Response::Submitted { queued } => {
                w = Writer::new(KIND_SUBMITTED);
                w.u64(*queued);
            }
            Response::Busy { queued, capacity } => {
                w = Writer::new(KIND_BUSY);
                w.u64(*queued);
                w.u64(*capacity);
            }
            Response::RoundClosed {
                epoch,
                accepted,
                refused,
                duplicates,
                late,
                truths,
                weights_digest,
                max_spent_epsilon,
                max_spent_delta,
            } => {
                w = Writer::new(KIND_ROUND_CLOSED);
                w.u64(*epoch);
                w.u64(*accepted);
                w.u64(*refused);
                w.u64(*duplicates);
                w.u64(*late);
                write_f64s(&mut w, truths);
                w.u64(*weights_digest);
                w.f64(*max_spent_epsilon);
                w.f64(*max_spent_delta);
            }
            Response::Truths {
                rounds_run,
                truths,
                weights_digest,
            } => {
                w = Writer::new(KIND_TRUTHS);
                w.u64(*rounds_run);
                write_f64s(&mut w, truths);
                w.u64(*weights_digest);
            }
            Response::Budget {
                exhausted,
                max_spent_epsilon,
                max_spent_delta,
                debits,
            } => {
                w = Writer::new(KIND_BUDGET);
                w.u64(*exhausted);
                w.f64(*max_spent_epsilon);
                w.f64(*max_spent_delta);
                w.u32(debits.len() as u32);
                for &d in debits {
                    w.u32(d);
                }
            }
            Response::Error { code, message } => {
                w = Writer::new(KIND_ERROR);
                w.u8(*code as u8);
                w.str(message);
            }
            Response::Metrics { metrics } => {
                w = Writer::new(KIND_METRICS);
                metrics.write(&mut w);
            }
            Response::NodeWelcome { node_id } => {
                w = Writer::new(KIND_NODE_WELCOME);
                w.u32(*node_id);
            }
            Response::Prepared {
                epoch,
                duplicates,
                late,
                refused_seen,
                claims,
            } => {
                w = Writer::new(KIND_PREPARED);
                w.u64(*epoch);
                w.u64(*duplicates);
                w.u64(*late);
                w.u64(*refused_seen);
                w.u32(claims.len() as u32);
                for c in claims {
                    write_claim(&mut w, c);
                }
            }
            Response::Committed { epoch, appended } => {
                w = Writer::new(KIND_COMMITTED);
                w.u64(*epoch);
                w.u8(u8::from(*appended));
            }
            Response::Replicated { seq } => {
                w = Writer::new(KIND_REPLICATED);
                w.u64(*seq);
            }
            Response::SubmitAcked {
                contiguous,
                queued,
                refusals,
            } => {
                w = Writer::new(KIND_SUBMIT_ACKED);
                w.u64(*contiguous);
                w.u64(*queued);
                w.u32(refusals.len() as u32);
                for refusal in refusals {
                    w.u64(refusal.seq);
                    w.u8(refusal.code.map_or(0, |c| c as u8));
                }
            }
            Response::Ledger {
                next_epoch,
                batches_seen,
                rounds_debited,
                cumulative_losses,
            } => {
                w = Writer::new(KIND_LEDGER);
                w.u64(*next_epoch);
                w.u64(*batches_seen);
                write_u32s(&mut w, rounds_debited);
                write_f64s(&mut w, cumulative_losses);
            }
            Response::Status { snapshot } => {
                w = Writer::new(KIND_STATUS);
                write_snapshot(&mut w, snapshot);
            }
            Response::TraceDump {
                anchor_ns,
                dropped,
                events,
            } => {
                w = Writer::new(KIND_TRACE_DUMP);
                w.u64(*anchor_ns);
                w.u32(dropped.len() as u32);
                for &(tid, n) in dropped {
                    w.u64(tid);
                    w.u64(n);
                }
                w.u32(events.len() as u32);
                for e in events {
                    write_trace_event(&mut w, e);
                }
            }
        }
        frame(w.buf)
    }

    /// Decode a frame body (as returned by [`split_frame`]).
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownKind`] for a non-response kind,
    /// [`WireError::Malformed`] for structural violations.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { buf: body };
        let kind = r.u8()?;
        let resp = match kind {
            KIND_CREATED => Response::Created {
                resumed_rounds: r.u64()?,
            },
            KIND_SUBMITTED => Response::Submitted { queued: r.u64()? },
            KIND_BUSY => Response::Busy {
                queued: r.u64()?,
                capacity: r.u64()?,
            },
            KIND_ROUND_CLOSED => Response::RoundClosed {
                epoch: r.u64()?,
                accepted: r.u64()?,
                refused: r.u64()?,
                duplicates: r.u64()?,
                late: r.u64()?,
                truths: read_f64s(&mut r)?,
                weights_digest: r.u64()?,
                max_spent_epsilon: r.f64()?,
                max_spent_delta: r.f64()?,
            },
            KIND_TRUTHS => Response::Truths {
                rounds_run: r.u64()?,
                truths: read_f64s(&mut r)?,
                weights_digest: r.u64()?,
            },
            KIND_BUDGET => {
                let exhausted = r.u64()?;
                let max_spent_epsilon = r.f64()?;
                let max_spent_delta = r.f64()?;
                let n = r.bounded_count(4)?;
                let mut debits = Vec::with_capacity(n);
                for _ in 0..n {
                    debits.push(r.u32()?);
                }
                Response::Budget {
                    exhausted,
                    max_spent_epsilon,
                    max_spent_delta,
                    debits,
                }
            }
            KIND_ERROR => Response::Error {
                code: ErrorCode::from_u8(r.u8()?)
                    .ok_or(WireError::Malformed("unknown error code"))?,
                message: r.str()?,
            },
            KIND_METRICS => Response::Metrics {
                metrics: Box::new(MetricsReport::read(&mut r)?),
            },
            KIND_NODE_WELCOME => Response::NodeWelcome { node_id: r.u32()? },
            KIND_PREPARED => {
                let epoch = r.u64()?;
                let duplicates = r.u64()?;
                let late = r.u64()?;
                let refused_seen = r.u64()?;
                let count = r.bounded_count(MIN_CLAIM_BYTES)?;
                let mut claims = Vec::with_capacity(count);
                for _ in 0..count {
                    claims.push(read_claim(&mut r)?);
                }
                Response::Prepared {
                    epoch,
                    duplicates,
                    late,
                    refused_seen,
                    claims,
                }
            }
            KIND_COMMITTED => Response::Committed {
                epoch: r.u64()?,
                appended: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("appended flag is not 0/1")),
                },
            },
            KIND_REPLICATED => Response::Replicated { seq: r.u64()? },
            KIND_SUBMIT_ACKED => {
                let contiguous = r.u64()?;
                let queued = r.u64()?;
                let n = r.bounded_count(MIN_REFUSAL_BYTES)?;
                let mut refusals = Vec::with_capacity(n);
                for _ in 0..n {
                    let seq = r.u64()?;
                    let code = match r.u8()? {
                        0 => None,
                        byte => Some(
                            ErrorCode::from_u8(byte)
                                .ok_or(WireError::Malformed("unknown refusal code"))?,
                        ),
                    };
                    refusals.push(BatchRefusal { seq, code });
                }
                Response::SubmitAcked {
                    contiguous,
                    queued,
                    refusals,
                }
            }
            KIND_LEDGER => Response::Ledger {
                next_epoch: r.u64()?,
                batches_seen: r.u64()?,
                rounds_debited: read_u32s(&mut r)?,
                cumulative_losses: read_f64s(&mut r)?,
            },
            KIND_STATUS => Response::Status {
                snapshot: read_snapshot(&mut r)?,
            },
            KIND_TRACE_DUMP => {
                let anchor_ns = r.u64()?;
                let ndropped = r.bounded_count(TRACE_DROP_BYTES)?;
                let mut dropped = Vec::with_capacity(ndropped);
                for _ in 0..ndropped {
                    dropped.push((r.u64()?, r.u64()?));
                }
                let nevents = r.bounded_count(TRACE_EVENT_BYTES)?;
                let mut events = Vec::with_capacity(nevents);
                for _ in 0..nevents {
                    events.push(read_trace_event(&mut r)?);
                }
                Response::TraceDump {
                    anchor_ns,
                    dropped,
                    events,
                }
            }
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            num_users: 100,
            num_objects: 4,
            num_shards: 8,
            workers: 0,
            engine_queue: 4096,
            deadline_us: 1_000_000,
            submission_capacity: 65_536,
            per_round_epsilon: 0.5,
            per_round_delta: 0.02,
            budget_epsilon: 5.0,
            budget_delta: 0.2,
            stream_tag: 0x5EED_5EED,
            durable: true,
        }
    }

    fn stamped(
        epoch: u64,
        user: usize,
        sent_at_us: u64,
        values: Vec<(usize, f64)>,
    ) -> StampedReport {
        StampedReport {
            epoch,
            sent_at_us,
            report: PerturbedReport { user, values },
        }
    }

    fn roundtrip_request(req: Request) {
        let bytes = req.encode();
        let (body, consumed) = split_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(Request::decode(body).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = resp.encode();
        let (body, consumed) = split_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(Response::decode(body).unwrap(), resp);
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip_request(Request::CreateCampaign {
            campaign: "air-quality_7".to_string(),
            spec: spec(),
        });
        roundtrip_request(Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![
                stamped(3, 0, 10, vec![(0, 1.5), (2, -0.5)]),
                stamped(3, 1, 20, vec![]),
            ],
            ctx: None,
        });
        roundtrip_request(Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![stamped(3, 0, 10, vec![(0, 1.5)])],
            ctx: Some(SpanContext {
                trace_id: 0xDEAD_BEEF_CAFE_F00D,
                span_id: 0x0123_4567_89AB_CDEF,
            }),
        });
        roundtrip_request(Request::CloseRound {
            campaign: "c".to_string(),
            epoch: 9,
        });
        roundtrip_request(Request::QueryTruths {
            campaign: "c".to_string(),
        });
        roundtrip_request(Request::QueryBudget {
            campaign: "c".to_string(),
        });

        roundtrip_response(Response::Created { resumed_rounds: 2 });
        roundtrip_response(Response::Submitted { queued: 17 });
        roundtrip_response(Response::Busy {
            queued: 64,
            capacity: 64,
        });
        roundtrip_response(Response::RoundClosed {
            epoch: 4,
            accepted: 90,
            refused: 3,
            duplicates: 2,
            late: 1,
            truths: vec![20.5, 19.75],
            weights_digest: 0xDEAD_BEEF,
            max_spent_epsilon: 2.5,
            max_spent_delta: 0.1,
        });
        roundtrip_response(Response::Truths {
            rounds_run: 4,
            truths: vec![1.0],
            weights_digest: 7,
        });
        roundtrip_response(Response::Budget {
            exhausted: 5,
            max_spent_epsilon: 5.0,
            max_spent_delta: 0.2,
            debits: vec![10, 0, 3],
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::BudgetExhausted,
            message: "everyone is out of budget".to_string(),
        });
    }

    #[test]
    fn every_cluster_message_roundtrips() {
        roundtrip_request(Request::QueryMetrics {
            campaign: "c".to_string(),
        });
        roundtrip_request(Request::NodeHello {
            node_id: 2,
            num_nodes: 5,
        });
        roundtrip_request(Request::CloseRoundPrepare {
            campaign: "c".to_string(),
            epoch: 3,
            refused: vec![0, 7, 12],
            ctx: None,
        });
        roundtrip_request(Request::CloseRoundPrepare {
            campaign: "c".to_string(),
            epoch: 3,
            refused: vec![],
            ctx: Some(SpanContext {
                trace_id: 17,
                span_id: 92,
            }),
        });
        roundtrip_request(Request::CloseRoundCommit {
            campaign: "c".to_string(),
            epoch: 3,
            batches_seen: 4,
            accepted_users: vec![1, 2],
            cumulative_losses: vec![0.5, -1.25, 3.0e-300],
            rounds_debited: vec![2, 0, 1],
            ctx: None,
        });
        roundtrip_request(Request::CloseRoundCommit {
            campaign: "c".to_string(),
            epoch: 3,
            batches_seen: 4,
            accepted_users: vec![1, 2],
            cumulative_losses: vec![0.5],
            rounds_debited: vec![2],
            ctx: Some(SpanContext {
                trace_id: u64::MAX,
                span_id: 1,
            }),
        });
        roundtrip_request(Request::ReplicateSegment {
            campaign: "c".to_string(),
            seq: 42,
            op: StoreOp::Append,
            name: "segment-000.wal".to_string(),
            arg: 0,
            bytes: vec![0xde, 0xad, 0xbe, 0xef],
        });
        roundtrip_request(Request::ReplicateSegment {
            campaign: "c".to_string(),
            seq: 43,
            op: StoreOp::Truncate,
            name: "MANIFEST".to_string(),
            arg: 128,
            bytes: vec![],
        });
        roundtrip_request(Request::QueryLedger {
            campaign: "c".to_string(),
            upto: u64::MAX,
        });

        roundtrip_response(Response::Metrics {
            metrics: Box::new(MetricsReport {
                reports_submitted: 1000,
                reports_accepted: 990,
                duplicates_discarded: 7,
                late_dropped: 3,
                out_of_order_dropped: 0,
                backpressure_stalls: 2,
                epochs_merged: 5,
                max_queue_depth: 512,
                queue_depth: 17,
                throughput_rps: 12_345.5,
                ingest_p50_ns: 1_800,
                ingest_p99_ns: 95_000,
                conn_live: 3,
                conn_accepted: 40,
                conn_refused: 2,
                io_threads: 4,
            }),
        });
        roundtrip_response(Response::NodeWelcome { node_id: 2 });
        roundtrip_response(Response::Prepared {
            epoch: 3,
            duplicates: 2,
            late: 1,
            refused_seen: 1,
            claims: vec![
                PerturbedReport {
                    user: 0,
                    values: vec![(0, 1.5), (3, -0.25)],
                },
                PerturbedReport {
                    user: 4,
                    values: vec![],
                },
            ],
        });
        roundtrip_response(Response::Committed {
            epoch: 3,
            appended: true,
        });
        roundtrip_response(Response::Committed {
            epoch: 2,
            appended: false,
        });
        roundtrip_response(Response::Replicated { seq: 42 });
        roundtrip_response(Response::Ledger {
            next_epoch: 4,
            batches_seen: 4,
            rounds_debited: vec![2, 0, 1],
            cumulative_losses: vec![0.5, 0.0, -3.5],
        });
    }

    #[test]
    fn every_streaming_message_roundtrips() {
        roundtrip_request(Request::SubmitReportsStream {
            campaign: "c".to_string(),
            seq: 17,
            reports: vec![
                stamped(3, 0, 10, vec![(0, 1.5), (2, -0.5)]),
                stamped(3, 1, 20, vec![]),
            ],
            ctx: None,
        });
        roundtrip_request(Request::SubmitReportsStream {
            campaign: "c".to_string(),
            seq: 18,
            reports: vec![stamped(3, 1, 20, vec![])],
            ctx: Some(SpanContext {
                trace_id: 0xF00D,
                span_id: 0xBEEF,
            }),
        });
        roundtrip_response(Response::SubmitAcked {
            contiguous: 18,
            queued: 512,
            refusals: vec![],
        });
        roundtrip_response(Response::SubmitAcked {
            contiguous: 18,
            queued: 512,
            refusals: vec![
                BatchRefusal {
                    seq: 18,
                    code: None,
                },
                BatchRefusal {
                    seq: 19,
                    code: Some(ErrorCode::BudgetExhausted),
                },
            ],
        });
    }

    #[test]
    fn every_status_message_roundtrips() {
        roundtrip_request(Request::QueryStatus);

        roundtrip_response(Response::Status {
            snapshot: MetricsSnapshot::new(),
        });

        let mut snap = MetricsSnapshot::new();
        snap.set("server.conn.live".to_string(), MetricValue::Gauge(3));
        snap.set("server.requests".to_string(), MetricValue::Counter(512));
        snap.set(
            "campaign.air.ingest_latency".to_string(),
            MetricValue::Histogram(HistogramSnapshot {
                count: 4,
                total_ns: 10_000,
                max_ns: 4_000,
                buckets: vec![(17, 1), (42, 2), (99, 1)],
            }),
        );
        roundtrip_response(Response::Status { snapshot: snap });
    }

    #[test]
    fn status_snapshot_refuses_malformed_payloads() {
        // Unknown value tag.
        let mut w = Writer::new(KIND_STATUS);
        w.u32(1);
        w.str("m");
        w.u8(9);
        w.u64(0);
        assert_eq!(
            Response::decode(&w.buf),
            Err(WireError::Malformed("unknown metric value tag"))
        );

        // Bucket index past the shared layout.
        let mut w = Writer::new(KIND_STATUS);
        w.u32(1);
        w.str("h");
        w.u8(VALUE_TAG_HISTOGRAM);
        w.u64(1);
        w.u64(10);
        w.u64(10);
        w.u32(1);
        w.u32(NUM_BUCKETS as u32);
        w.u64(1);
        assert_eq!(
            Response::decode(&w.buf),
            Err(WireError::Malformed("histogram bucket index out of range"))
        );

        // Bucket indices must be strictly increasing (canonical sparse
        // form — a duplicate would double-count on merge).
        let mut w = Writer::new(KIND_STATUS);
        w.u32(1);
        w.str("h");
        w.u8(VALUE_TAG_HISTOGRAM);
        w.u64(2);
        w.u64(20);
        w.u64(10);
        w.u32(2);
        w.u32(7);
        w.u64(1);
        w.u32(7);
        w.u64(1);
        assert_eq!(
            Response::decode(&w.buf),
            Err(WireError::Malformed(
                "histogram bucket indices not strictly increasing"
            ))
        );
    }

    #[test]
    fn golden_status_wire_layout_is_pinned() {
        // The status frames share the v1 framing; a change to either
        // payload is a format break (bump the HELLO version byte and
        // keep v1 decoders).
        let bytes = Request::QueryStatus.encode();
        // body := kind(0x0d)  → 1 byte
        let body = vec![0x0d];
        let golden: Vec<u8> = [
            1u32.to_le_bytes().to_vec(),
            (1u32 ^ u32::from_le_bytes(*b"NET1")).to_le_bytes().to_vec(),
            checksum(&body).to_le_bytes().to_vec(),
            body,
        ]
        .concat();
        assert_eq!(bytes, golden, "QueryStatus wire layout changed");
        assert_eq!(
            u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            0xaf63_c04c_8601_bcf8,
            "QueryStatus checksum constant changed: {:#x}",
            u64::from_le_bytes(bytes[8..16].try_into().unwrap())
        );

        let mut snap = MetricsSnapshot::new();
        snap.set("c".to_string(), MetricValue::Counter(7));
        snap.set(
            "h".to_string(),
            MetricValue::Histogram(HistogramSnapshot {
                count: 1,
                total_ns: 32,
                max_ns: 32,
                buckets: vec![(80, 1)],
            }),
        );
        let bytes = Response::Status { snapshot: snap }.encode();
        // body := kind(0x8f) nentries:u32
        //         namelen:u16 "c" tag(0x00) value:u64
        //         namelen:u16 "h" tag(0x02) count:u64 total:u64 max:u64
        //         nbuckets:u32 idx:u32 bucket_count:u64
        let body: Vec<u8> = [
            vec![0x8f],
            2u32.to_le_bytes().to_vec(),
            1u16.to_le_bytes().to_vec(),
            b"c".to_vec(),
            vec![0x00],
            7u64.to_le_bytes().to_vec(),
            1u16.to_le_bytes().to_vec(),
            b"h".to_vec(),
            vec![0x02],
            1u64.to_le_bytes().to_vec(),
            32u64.to_le_bytes().to_vec(),
            32u64.to_le_bytes().to_vec(),
            1u32.to_le_bytes().to_vec(),
            80u32.to_le_bytes().to_vec(),
            1u64.to_le_bytes().to_vec(),
        ]
        .concat();
        let golden: Vec<u8> = [
            (body.len() as u32).to_le_bytes().to_vec(),
            ((body.len() as u32) ^ u32::from_le_bytes(*b"NET1"))
                .to_le_bytes()
                .to_vec(),
            checksum(&body).to_le_bytes().to_vec(),
            body,
        ]
        .concat();
        assert_eq!(bytes, golden, "Status wire layout changed");
    }

    #[test]
    fn every_trace_message_roundtrips() {
        roundtrip_request(Request::QueryTrace);
        roundtrip_response(Response::TraceDump {
            anchor_ns: 0,
            dropped: vec![],
            events: vec![],
        });
        roundtrip_response(Response::TraceDump {
            anchor_ns: 1_700_000_000_000_000_000,
            dropped: vec![(1, 0), (3, 4096)],
            events: vec![
                TraceEvent {
                    tid: 1,
                    ts_ns: 1_500,
                    phase: 'B',
                    code: 1,
                    arg: 7,
                    trace_id: 0xABC,
                    span_id: 0x11,
                    parent_span: 0,
                },
                TraceEvent {
                    tid: 1,
                    ts_ns: 2_000,
                    phase: 'i',
                    code: 4,
                    arg: 128,
                    trace_id: 0xABC,
                    span_id: 0,
                    parent_span: 0x11,
                },
                TraceEvent {
                    tid: 1,
                    ts_ns: 2_250,
                    phase: 'E',
                    code: 1,
                    arg: 7,
                    trace_id: 0xABC,
                    span_id: 0x11,
                    parent_span: 0,
                },
            ],
        });
    }

    #[test]
    fn golden_trace_wire_layout_is_pinned() {
        // The trace frames share the v1 framing; a change to either
        // payload is a format break (bump the HELLO version byte and
        // keep v1 decoders).
        let bytes = Request::QueryTrace.encode();
        // body := kind(0x0e)  → 1 byte
        let body = vec![0x0e];
        let golden: Vec<u8> = [
            1u32.to_le_bytes().to_vec(),
            (1u32 ^ u32::from_le_bytes(*b"NET1")).to_le_bytes().to_vec(),
            checksum(&body).to_le_bytes().to_vec(),
            body,
        ]
        .concat();
        assert_eq!(bytes, golden, "QueryTrace wire layout changed");

        let bytes = Response::TraceDump {
            anchor_ns: 99,
            dropped: vec![(2, 5)],
            events: vec![TraceEvent {
                tid: 2,
                ts_ns: 1_500,
                phase: 'B',
                code: 1,
                arg: 7,
                trace_id: 0xABC,
                span_id: 0x11,
                parent_span: 0x22,
            }],
        }
        .encode();
        // body := kind(0x90) anchor:u64 ndropped:u32 tid:u64 n:u64
        //         nevents:u32 tid:u64 ts:u64 phase:u8 code:u32 arg:u64
        //         trace:u64 span:u64 parent:u64
        let body: Vec<u8> = [
            vec![0x90],
            99u64.to_le_bytes().to_vec(),
            1u32.to_le_bytes().to_vec(),
            2u64.to_le_bytes().to_vec(),
            5u64.to_le_bytes().to_vec(),
            1u32.to_le_bytes().to_vec(),
            2u64.to_le_bytes().to_vec(),
            1_500u64.to_le_bytes().to_vec(),
            vec![b'B'],
            1u32.to_le_bytes().to_vec(),
            7u64.to_le_bytes().to_vec(),
            0xABCu64.to_le_bytes().to_vec(),
            0x11u64.to_le_bytes().to_vec(),
            0x22u64.to_le_bytes().to_vec(),
        ]
        .concat();
        let golden: Vec<u8> = [
            (body.len() as u32).to_le_bytes().to_vec(),
            ((body.len() as u32) ^ u32::from_le_bytes(*b"NET1"))
                .to_le_bytes()
                .to_vec(),
            checksum(&body).to_le_bytes().to_vec(),
            body,
        ]
        .concat();
        assert_eq!(bytes, golden, "TraceDump wire layout changed");
    }

    #[test]
    fn trace_context_extension_is_all_or_nothing() {
        // The context extension is exactly 16 trailing bytes; a partial
        // one is malformed, not silently dropped.
        let good = Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![],
            ctx: Some(SpanContext {
                trace_id: 1,
                span_id: 2,
            }),
        }
        .encode();
        let (body, _) = split_frame(&good).unwrap();
        let partial = &body[..body.len() - 8];
        assert_eq!(
            Request::decode(partial),
            Err(WireError::Malformed(
                "trace-context extension is not 16 bytes"
            ))
        );

        // And a with-context frame is exactly the without-context frame
        // plus the 16-byte tail — old decoders see old bytes when the
        // sender is untraced.
        let bare = Request::SubmitReports {
            campaign: "c".to_string(),
            reports: vec![],
            ctx: None,
        }
        .encode();
        let (bare_body, _) = split_frame(&bare).unwrap();
        assert_eq!(&body[..body.len() - CTX_BYTES], bare_body);
    }

    #[test]
    fn trace_dump_refuses_unknown_phases() {
        let mut w = Writer::new(KIND_TRACE_DUMP);
        w.u64(0);
        w.u32(0);
        w.u32(1);
        w.u64(1);
        w.u64(10);
        w.u8(b'X');
        w.u32(1);
        w.u64(0);
        w.u64(0);
        w.u64(0);
        w.u64(0);
        assert_eq!(
            Response::decode(&w.buf),
            Err(WireError::Malformed("unknown trace event phase"))
        );
    }

    #[test]
    fn submit_acked_refuses_unknown_refusal_codes() {
        let mut w = Writer::new(KIND_SUBMIT_ACKED);
        w.u64(0);
        w.u64(0);
        w.u32(1);
        w.u64(5);
        w.u8(0xee);
        assert_eq!(
            Response::decode(&w.buf),
            Err(WireError::Malformed("unknown refusal code"))
        );
    }

    #[test]
    fn golden_streaming_wire_layout_is_pinned() {
        // The pipelined-submit frames share the v1 framing; a change to
        // either payload is a format break (bump the HELLO version byte
        // and keep v1 decoders).
        let bytes = Request::SubmitReportsStream {
            campaign: "cafe".to_string(),
            seq: 7,
            reports: vec![stamped(3, 9, 11, vec![(1, 2.5)])],
            ctx: None,
        }
        .encode();
        // body := kind(0x0c) idlen:u16 "cafe" seq:u64 count:u32
        //         epoch:u64 sent_at:u64 user:u64 nvals:u32 obj:u32 val:f64
        let body: Vec<u8> = [
            vec![0x0c],
            4u16.to_le_bytes().to_vec(),
            b"cafe".to_vec(),
            7u64.to_le_bytes().to_vec(),
            1u32.to_le_bytes().to_vec(),
            3u64.to_le_bytes().to_vec(),
            11u64.to_le_bytes().to_vec(),
            9u64.to_le_bytes().to_vec(),
            1u32.to_le_bytes().to_vec(),
            1u32.to_le_bytes().to_vec(),
            2.5f64.to_bits().to_le_bytes().to_vec(),
        ]
        .concat();
        let golden: Vec<u8> = [
            (body.len() as u32).to_le_bytes().to_vec(),
            ((body.len() as u32) ^ u32::from_le_bytes(*b"NET1"))
                .to_le_bytes()
                .to_vec(),
            checksum(&body).to_le_bytes().to_vec(),
            body,
        ]
        .concat();
        assert_eq!(bytes, golden, "SubmitReportsStream wire layout changed");
        assert_eq!(
            u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            0x99ca_6a1a_6610_8381,
            "SubmitReportsStream checksum constant changed: {:#x}",
            u64::from_le_bytes(bytes[8..16].try_into().unwrap())
        );

        let bytes = Response::SubmitAcked {
            contiguous: 8,
            queued: 96,
            refusals: vec![BatchRefusal {
                seq: 8,
                code: Some(ErrorCode::ServerBusy),
            }],
        }
        .encode();
        // body := kind(0x8e) contiguous:u64 queued:u64 nrefusals:u32
        //         seq:u64 code:u8
        let body: Vec<u8> = [
            vec![0x8e],
            8u64.to_le_bytes().to_vec(),
            96u64.to_le_bytes().to_vec(),
            1u32.to_le_bytes().to_vec(),
            8u64.to_le_bytes().to_vec(),
            vec![0x07],
        ]
        .concat();
        let golden: Vec<u8> = [
            (body.len() as u32).to_le_bytes().to_vec(),
            ((body.len() as u32) ^ u32::from_le_bytes(*b"NET1"))
                .to_le_bytes()
                .to_vec(),
            checksum(&body).to_le_bytes().to_vec(),
            body,
        ]
        .concat();
        assert_eq!(bytes, golden, "SubmitAcked wire layout changed");
        assert_eq!(
            u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            0x23fa_c372_b366_8f35,
            "SubmitAcked checksum constant changed: {:#x}",
            u64::from_le_bytes(bytes[8..16].try_into().unwrap())
        );
    }

    #[test]
    fn golden_cluster_wire_layout_is_pinned() {
        // The cluster frames share the v1 framing; their payloads are
        // pinned here the same way `golden_wire_layout_is_pinned` pins
        // the original five. A change means a format break: bump the
        // HELLO version byte and keep decoders for v1.
        let bytes = Request::QueryMetrics {
            campaign: "cafe".to_string(),
        }
        .encode();
        // body := kind(0x06) idlen:u16 "cafe"  → 1+2+4 = 7
        let body: Vec<u8> = [vec![0x06], 4u16.to_le_bytes().to_vec(), b"cafe".to_vec()].concat();
        let golden: Vec<u8> = [
            7u32.to_le_bytes().to_vec(),
            (7u32 ^ u32::from_le_bytes(*b"NET1")).to_le_bytes().to_vec(),
            checksum(&body).to_le_bytes().to_vec(),
            body,
        ]
        .concat();
        assert_eq!(bytes, golden, "QueryMetrics wire layout changed");
        assert_eq!(
            u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            0xf136_3cf3_dd59_6008,
            "QueryMetrics checksum constant changed"
        );

        let bytes = Request::ReplicateSegment {
            campaign: "cafe".to_string(),
            seq: 7,
            op: StoreOp::Append,
            name: "seg.0001".to_string(),
            arg: 0,
            bytes: b"abc".to_vec(),
        }
        .encode();
        // body := kind(0x0a) idlen:u16 "cafe" seq:u64 op:u8
        //         namelen:u16 "seg.0001" arg:u64 nbytes:u32 "abc"
        let body: Vec<u8> = [
            vec![0x0a],
            4u16.to_le_bytes().to_vec(),
            b"cafe".to_vec(),
            7u64.to_le_bytes().to_vec(),
            vec![0x00],
            8u16.to_le_bytes().to_vec(),
            b"seg.0001".to_vec(),
            0u64.to_le_bytes().to_vec(),
            3u32.to_le_bytes().to_vec(),
            b"abc".to_vec(),
        ]
        .concat();
        let golden: Vec<u8> = [
            (body.len() as u32).to_le_bytes().to_vec(),
            ((body.len() as u32) ^ u32::from_le_bytes(*b"NET1"))
                .to_le_bytes()
                .to_vec(),
            checksum(&body).to_le_bytes().to_vec(),
            body,
        ]
        .concat();
        assert_eq!(bytes, golden, "ReplicateSegment wire layout changed");
        assert_eq!(
            u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            0x033c_15dc_4987_7e7c,
            "ReplicateSegment checksum constant changed"
        );
    }

    #[test]
    fn replicated_store_names_are_path_safe() {
        for bad in ["", "a/b", "a\\b", "..", ".hidden", "x\0y"] {
            let frame = Request::ReplicateSegment {
                campaign: "c".to_string(),
                seq: 0,
                op: StoreOp::Remove,
                name: bad.to_string(),
                arg: 0,
                bytes: vec![],
            }
            .encode();
            let (body, _) = split_frame(&frame).unwrap();
            assert!(
                matches!(Request::decode(body), Err(WireError::Malformed(_))),
                "store name {bad:?} must be refused"
            );
        }
    }

    #[test]
    fn golden_wire_layout_is_pinned() {
        // Version-1 layout, byte for byte. If this fails you have changed
        // the wire format: bump the HELLO version byte and keep decoders
        // for the old one — deployed clients must not be misread.
        assert_eq!(HELLO, *b"DPTDNET\x01");

        let bytes = Request::CloseRound {
            campaign: "cafe".to_string(),
            epoch: 7,
        }
        .encode();
        // body := kind(0x03) idlen:u16 "cafe" epoch:u64  → 1+2+4+8 = 15
        let body: Vec<u8> = [
            vec![0x03],
            4u16.to_le_bytes().to_vec(),
            b"cafe".to_vec(),
            7u64.to_le_bytes().to_vec(),
        ]
        .concat();
        let golden: Vec<u8> = [
            15u32.to_le_bytes().to_vec(),
            (15u32 ^ u32::from_le_bytes(*b"NET1"))
                .to_le_bytes()
                .to_vec(),
            checksum(&body).to_le_bytes().to_vec(),
            body,
        ]
        .concat();
        assert_eq!(bytes, golden, "wire v1 frame layout changed");
        // And the checksum itself is pinned (FNV-1a over the body).
        assert_eq!(
            u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            0xb072_23e2_7d00_7524,
            "checksum constant changed: {:#x}",
            u64::from_le_bytes(bytes[8..16].try_into().unwrap())
        );
    }

    #[test]
    fn truncated_frames_ask_for_more_bytes() {
        let bytes = Request::QueryTruths {
            campaign: "c".to_string(),
        }
        .encode();
        for cut in 0..bytes.len() {
            match split_frame(&bytes[..cut]) {
                Err(WireError::Truncated { needed, have }) => {
                    assert_eq!(have, cut);
                    assert!(needed > cut);
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_headers_and_bodies_are_typed_errors() {
        let good = Request::CloseRound {
            campaign: "c".to_string(),
            epoch: 1,
        }
        .encode();

        // Flip a length-prefix bit: self-check catches it.
        let mut bad_len = good.clone();
        bad_len[1] ^= 0x40;
        assert_eq!(split_frame(&bad_len), Err(WireError::LenCheck));

        // Flip a body bit: checksum catches it.
        let mut bad_body = good.clone();
        *bad_body.last_mut().unwrap() ^= 0x01;
        assert_eq!(split_frame(&bad_body), Err(WireError::Checksum));

        // A consistent header claiming more than the cap is TooLarge —
        // rejected before any allocation.
        let huge = (MAX_FRAME_LEN as u32) + 1;
        let mut lying = Vec::new();
        lying.extend_from_slice(&huge.to_le_bytes());
        lying.extend_from_slice(&(huge ^ LEN_XOR).to_le_bytes());
        lying.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            split_frame(&lying),
            Err(WireError::TooLarge {
                claimed: u64::from(huge)
            })
        );
    }

    #[test]
    fn claimed_counts_are_bounded_before_allocation() {
        // A submit body claiming 2^32-1 reports in a tiny payload must
        // be Malformed, not a 4-billion-element Vec::with_capacity.
        let mut w = Writer::new(KIND_SUBMIT);
        w.str("c");
        w.u32(u32::MAX);
        let body = w.buf;
        assert_eq!(
            Request::decode(&body),
            Err(WireError::Malformed(
                "claimed count larger than the payload"
            ))
        );
        // Same for a modest but still payload-exceeding claim.
        let mut w = Writer::new(KIND_SUBMIT);
        w.str("c");
        w.u32(1_000);
        let body = w.buf;
        assert_eq!(
            Request::decode(&body),
            Err(WireError::Malformed(
                "claimed count larger than the payload"
            ))
        );
    }

    #[test]
    fn campaign_ids_are_path_safe() {
        assert!(validate_campaign_id("air-quality_7.v2").is_ok());
        for bad in ["", ".hidden", "a/b", "a\\b", "a b", "ü", "x\0"] {
            assert!(
                validate_campaign_id(bad).is_err(),
                "{bad:?} must be refused"
            );
        }
        let long = "x".repeat(MAX_CAMPAIGN_ID_LEN + 1);
        assert!(validate_campaign_id(&long).is_err());
        let max = "x".repeat(MAX_CAMPAIGN_ID_LEN);
        assert!(validate_campaign_id(&max).is_ok());
    }

    #[test]
    fn unknown_kinds_and_trailing_bytes_are_refused() {
        assert_eq!(Request::decode(&[0x7f]), Err(WireError::UnknownKind(0x7f)));
        assert_eq!(Response::decode(&[0x01]), Err(WireError::UnknownKind(0x01)));
        // A valid message with trailing garbage.
        let mut w = Writer::new(KIND_CREATED);
        w.u64(0);
        w.u8(0xaa);
        assert_eq!(
            Response::decode(&w.buf),
            Err(WireError::Malformed("trailing bytes after the payload"))
        );
    }
}
