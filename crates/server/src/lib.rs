//! Multi-campaign network service for differentially private truth
//! discovery.
//!
//! The paper's deployment story is a cloud server aggregating perturbed
//! reports from millions of phones; this crate is that serving layer,
//! std-only and feature-gate-free. One process hosts **many concurrent
//! campaigns** behind a real TCP wire protocol:
//!
//! * [`wire`] — the length-prefixed, checksummed binary protocol
//!   (golden-pinned v1 layout): `CreateCampaign`, batched
//!   `SubmitReports`, `CloseRound`, `QueryTruths`, `QueryBudget`, typed
//!   error replies.
//! * [`registry`] — [`CampaignRegistry`]: multiplexes campaigns, each
//!   backed by its own
//!   [`CampaignDriver`](dptd_protocol::campaign::CampaignDriver) +
//!   [`EngineBackend`](dptd_engine::EngineBackend) (optionally durable
//!   via a per-campaign WAL directory), behind a **bounded** submission
//!   queue with explicit `Busy` backpressure — the server never buffers
//!   unboundedly.
//! * [`frontend`] — the connection front end both [`Server`] and the
//!   cluster's node server share, in two interchangeable I/O models:
//!   an event-driven **reactor** (N poll-based threads multiplexing
//!   thousands of nonblocking connections with per-connection
//!   idle/stall deadlines — the default) and the original
//!   thread-per-connection **threads** model, both capped by one
//!   connection budget with typed `ServerBusy` refusals.
//! * [`decode`] — [`FrameDecoder`]: the per-connection incremental
//!   frame accumulator the reactor reads through, proptested to decode
//!   identically to the blocking reader at every byte boundary.
//! * [`server`] — [`Server`]: a campaign registry behind the front end.
//! * [`client`] — [`Client`]: the blocking client `dptd submit`, the
//!   loopback e2e harness and the `server_throughput` bench drive; also
//!   the windowed pipelined submitter (`submit_stream`).
//!
//! Privacy enforcement is exactly the in-process campaign layer's: the
//! per-user [`BudgetAccountant`](dptd_protocol::budget::BudgetAccountant)
//! refuses exhausted users before any report reaches the engine, and the
//! refusals surface as typed wire errors. Because each campaign's rounds
//! run under its own lock over the same deterministic pipeline, N
//! campaigns served concurrently over TCP produce weights digests and
//! budget ledgers **bit-identical** to N sequential in-process runs —
//! pinned by `tests/server_e2e.rs` at the workspace root.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod client;
pub mod decode;
pub mod frontend;
pub mod registry;
pub mod server;
pub mod wire;

use std::fmt;

pub use client::{Client, RetryPolicy, TraceOutcome};
pub use decode::FrameDecoder;
pub use frontend::{Frontend, FrontendConfig, FrontendStats, IoConfig, IoModel, RequestHandler};
pub use registry::{CampaignRegistry, RegistryConfig};
pub use server::{complete_frame, read_frame_body, write_frame, Server, ServerConfig};
pub use wire::{
    BatchRefusal, CampaignSpec, ErrorCode, MetricsReport, Request, Response, StoreOp, WireError,
};

/// Errors from the network layer (client and server plumbing).
#[derive(Debug)]
pub enum ServerError {
    /// A socket operation failed.
    Io {
        /// Which operation (`"connect"`, `"read frame"`, …).
        op: &'static str,
        /// The underlying error rendered as text.
        message: String,
    },
    /// The byte stream violated the wire protocol.
    Wire(WireError),
    /// The peer did not present the expected hello magic.
    BadHello,
    /// The server refused the connection at its worker budget.
    Busy,
    /// The server answered a request with a typed error.
    Remote {
        /// The wire-level cause.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered with a response of the wrong kind (protocol
    /// confusion — e.g. a `Budget` reply to a `CloseRound`).
    UnexpectedResponse(
        /// The reply actually received.
        Box<Response>,
    ),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io { op, message } => write!(f, "{op} failed: {message}"),
            ServerError::Wire(e) => write!(f, "wire protocol violation: {e}"),
            ServerError::BadHello => write!(f, "peer is not a dptd v1 endpoint (bad hello)"),
            ServerError::Busy => write!(f, "server at its connection budget"),
            ServerError::Remote { code, message } => {
                write!(f, "server refused ({code}): {message}")
            }
            ServerError::UnexpectedResponse(resp) => {
                write!(f, "unexpected response kind: {resp:?}")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        ServerError::Wire(e)
    }
}

pub(crate) fn io_err(op: &'static str, e: std::io::Error) -> ServerError {
    ServerError::Io {
        op,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_send_sync() {
        let e = ServerError::Remote {
            code: ErrorCode::BudgetExhausted,
            message: "all spent".to_string(),
        };
        assert!(e.to_string().contains("budget-exhausted"));
        let e: ServerError = WireError::Checksum.into();
        assert!(matches!(e, ServerError::Wire(_)));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServerError>();
    }
}
