//! The server/user role split of Algorithm 2 as a typed API.
//!
//! `dptd-protocol` drives these same types over a simulated network; the
//! split makes the trust boundary explicit in the type system: the server
//! only ever sees [`PerturbedReport`]s, never raw values, and the noise
//! variance a user sampled never leaves [`User::respond`].

use rand::Rng;
use serde::{Deserialize, Serialize};

use dptd_ldp::RandomizedVarianceGaussian;
use dptd_truth::{ObservationMatrix, TruthDiscoverer, TruthDiscoveryResult};

use crate::CoreError;

/// The public hyper-parameter the server broadcasts (step 1/3 of
/// Algorithm 2). Only `λ₂` — the *distribution* of noise variances — is
/// public; realised variances stay on-device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperParameter {
    /// Rate of the exponential distribution users draw noise variances
    /// from.
    pub lambda2: f64,
}

/// A task assignment: which objects a user is asked to observe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskAssignment {
    /// Object indices assigned to the user.
    pub objects: Vec<usize>,
}

/// One user's perturbed submission (step 5 of Algorithm 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerturbedReport {
    /// The submitting user's index.
    pub user: usize,
    /// `(object, perturbed value)` pairs.
    pub values: Vec<(usize, f64)>,
}

/// A crowd-sensing participant.
///
/// # Example
///
/// ```
/// use dptd_core::roles::{HyperParameter, User};
///
/// # fn main() -> Result<(), dptd_core::CoreError> {
/// let user = User::new(3);
/// let mut rng = dptd_stats::seeded_rng(1);
/// let report = user.respond(
///     &[(0, 12.5), (4, 9.0)],
///     HyperParameter { lambda2: 2.0 },
///     &mut rng,
/// )?;
/// assert_eq!(report.user, 3);
/// assert_eq!(report.values.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct User {
    id: usize,
}

impl User {
    /// Create a user with the given index.
    pub fn new(id: usize) -> Self {
        Self { id }
    }

    /// This user's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Steps 2–5 of Algorithm 2: given raw `(object, value)` measurements
    /// and the server's hyper-parameter, sample a private noise variance
    /// and return the perturbed report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ldp`] if the hyper-parameter is invalid.
    pub fn respond<R: Rng + ?Sized>(
        &self,
        measurements: &[(usize, f64)],
        hyper: HyperParameter,
        rng: &mut R,
    ) -> Result<PerturbedReport, CoreError> {
        let mechanism = RandomizedVarianceGaussian::new(hyper.lambda2)?;
        let raw: Vec<f64> = measurements.iter().map(|&(_, v)| v).collect();
        let variance = mechanism.sample_noise_variance(rng);
        let noisy = mechanism.perturb_report_with_variance(&raw, variance, rng);
        Ok(PerturbedReport {
            user: self.id,
            values: measurements.iter().map(|&(n, _)| n).zip(noisy).collect(),
        })
    }
}

/// The (untrusted) aggregation server.
#[derive(Debug, Clone)]
pub struct Server<A> {
    algorithm: A,
    hyper: HyperParameter,
    num_objects: usize,
}

impl<A: TruthDiscoverer> Server<A> {
    /// Create a server that will collect reports about `num_objects`
    /// objects and aggregate with `algorithm`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `λ₂` is not finite and
    /// positive or `num_objects` is zero.
    pub fn new(algorithm: A, lambda2: f64, num_objects: usize) -> Result<Self, CoreError> {
        if !(lambda2.is_finite() && lambda2 > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "lambda2",
                value: lambda2,
                constraint: "must be finite and > 0",
            });
        }
        if num_objects == 0 {
            return Err(CoreError::InvalidParameter {
                name: "num_objects",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        Ok(Self {
            algorithm,
            hyper: HyperParameter { lambda2 },
            num_objects,
        })
    }

    /// The hyper-parameter broadcast to users (step 3 of Algorithm 2).
    pub fn announce(&self) -> HyperParameter {
        self.hyper
    }

    /// Number of objects in the current campaign.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Step 6 of Algorithm 2: assemble the collected reports into an
    /// observation matrix and run truth discovery.
    ///
    /// Reports are indexed densely by their position in `reports`
    /// (user ids inside the reports are preserved for audit but the matrix
    /// row is the report's position, so missing users simply don't occupy
    /// a row).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when no reports were
    /// collected, and propagates matrix/algorithm errors (duplicate
    /// observations, uncovered objects, …).
    pub fn aggregate(
        &self,
        reports: &[PerturbedReport],
    ) -> Result<TruthDiscoveryResult, CoreError> {
        if reports.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "reports",
                value: 0.0,
                constraint: "need at least one report to aggregate",
            });
        }
        let rows: Vec<Vec<(usize, f64)>> = reports.iter().map(|r| r.values.clone()).collect();
        let matrix = ObservationMatrix::from_sparse_rows(self.num_objects, &rows)?;
        Ok(self.algorithm.discover(&matrix)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_truth::crh::Crh;

    #[test]
    fn server_validates() {
        assert!(Server::new(Crh::default(), 0.0, 5).is_err());
        assert!(Server::new(Crh::default(), 1.0, 0).is_err());
    }

    #[test]
    fn respond_perturbs_all_values() {
        let user = User::new(0);
        let mut rng = dptd_stats::seeded_rng(277);
        let report = user
            .respond(
                &[(0, 1.0), (1, 2.0)],
                HyperParameter { lambda2: 0.5 },
                &mut rng,
            )
            .unwrap();
        assert_eq!(report.values.len(), 2);
        assert_eq!(report.values[0].0, 0);
        assert_eq!(report.values[1].0, 1);
    }

    #[test]
    fn respond_rejects_bad_hyper() {
        let user = User::new(0);
        let mut rng = dptd_stats::seeded_rng(281);
        assert!(user
            .respond(&[(0, 1.0)], HyperParameter { lambda2: -1.0 }, &mut rng)
            .is_err());
    }

    #[test]
    fn end_to_end_rounds_match_pipeline_semantics() {
        // Three users, two objects, tiny noise: server recovers claims.
        let server = Server::new(Crh::default(), 1e9, 2).unwrap();
        let hyper = server.announce();
        let mut rng = dptd_stats::seeded_rng(283);
        let raw = [
            vec![(0usize, 5.0), (1usize, 8.0)],
            vec![(0, 5.1), (1, 8.1)],
            vec![(0, 4.9), (1, 7.9)],
        ];
        let reports: Vec<PerturbedReport> = raw
            .iter()
            .enumerate()
            .map(|(i, m)| User::new(i).respond(m, hyper, &mut rng).unwrap())
            .collect();
        let result = server.aggregate(&reports).unwrap();
        assert!((result.truths[0] - 5.0).abs() < 0.05);
        assert!((result.truths[1] - 8.0).abs() < 0.05);
    }

    #[test]
    fn aggregate_requires_reports_and_coverage() {
        let server = Server::new(Crh::default(), 1.0, 2).unwrap();
        assert!(server.aggregate(&[]).is_err());
        // One report covering only object 0 → object 1 uncovered.
        let r = PerturbedReport {
            user: 0,
            values: vec![(0, 1.0)],
        };
        assert!(server.aggregate(&[r]).is_err());
    }

    #[test]
    fn partial_participation_is_tolerated() {
        // Users may drop out; the server aggregates whoever submitted, as
        // long as every object is covered.
        let server = Server::new(Crh::default(), 1e9, 2).unwrap();
        let reports = vec![
            PerturbedReport {
                user: 7,
                values: vec![(0, 3.0), (1, 6.0)],
            },
            PerturbedReport {
                user: 42,
                values: vec![(0, 3.2)],
            },
        ];
        let result = server.aggregate(&reports).unwrap();
        assert_eq!(result.truths.len(), 2);
        assert!((result.truths[1] - 6.0).abs() < 1e-9);
    }
}
