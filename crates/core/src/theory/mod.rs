//! Executable forms of the paper's theorems.
//!
//! * [`utility`] — Theorem 4.3 (`(α, β)`-utility of the mechanism, the
//!   `C_{λ₁,α,β,S}` noise ceiling and the `α_{λ,c}` floor) and
//!   Theorem A.1 (the `c = 1` special case).
//! * [`privacy`] — Theorem 4.8 (the noise floor `c` must exceed for
//!   `(ε, δ)`-local differential privacy) built on Lemma 4.7's sensitivity
//!   bound.
//! * [`tradeoff`] — Theorem 4.9: intersecting the two bounds into a
//!   feasibility window for `c`, and Eq. 19's balance condition.
//!
//! ## Errata handled here
//!
//! Two formulas in the paper's proofs are reproduced incorrectly in print;
//! both are corrected in this implementation and the corrections are
//! verified against Monte-Carlo simulation in the test-suite:
//!
//! 1. **`E(Y)` for `c ≠ 1`** (proof of Theorem 4.3): the printed closed
//!    form is dimensionally inconsistent (off by a factor `√(λ₂/2)` in its
//!    second term). [`utility::expected_mean_gap`] uses the re-derived
//!    form, which matches simulation to 4 decimal places (see
//!    `expected_y_matches_monte_carlo`).
//! 2. **ε in Theorem 4.8**: the theorem statement drops the `ε` that its
//!    own proof carries (`y ≥ Δ²/(2ε)`). [`privacy::min_noise_level`]
//!    keeps ε; at `ε = 1` it reduces to the printed statement.

pub mod privacy;
pub mod tradeoff;
pub mod utility;
