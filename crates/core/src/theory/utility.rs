//! Theorem 4.3 — `(α, β)`-utility of the mechanism — and Theorem A.1
//! (the `c = 1` special case), as executable formulas.
//!
//! Notation: `σ_s² ~ Exp(λ₁)` (user error variances),
//! `δ_s² ~ Exp(λ₂)` (noise variances), `c = λ₁/λ₂` the noise level, and
//! `Y = √(σ_s² + σ_{s'}² + δ_{s'}²)` the cross-user deviation scale from
//! the proof of Theorem 4.3.

use crate::CoreError;

/// Validated inputs common to the utility formulas.
fn validate_positive(name: &'static str, value: f64) -> Result<(), CoreError> {
    if !(value.is_finite() && value > 0.0) {
        return Err(CoreError::InvalidParameter {
            name,
            value,
            constraint: "must be finite and > 0",
        });
    }
    Ok(())
}

/// `E[Y²] = 2/λ₁ + 1/λ₂` — exact second moment of the cross-user
/// deviation (sum of two `Exp(λ₁)` variances and one `Exp(λ₂)` variance).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] unless both rates are positive
/// and finite.
pub fn expected_square_gap(lambda1: f64, lambda2: f64) -> Result<f64, CoreError> {
    validate_positive("lambda1", lambda1)?;
    validate_positive("lambda2", lambda2)?;
    Ok(2.0 / lambda1 + 1.0 / lambda2)
}

/// `E[Y]` — first moment of the cross-user deviation.
///
/// For `λ₁ ≠ λ₂` this evaluates the re-derived closed form
///
/// ```text
/// E[Y] = √π · [ 3λ₂ / (4√λ₁ (λ₂−λ₁))
///             + (λ₁²/√λ₂ − λ₂√λ₁) / (2 (λ₂−λ₁)²) ]
/// ```
///
/// (the paper's printed version of this expression has a typo — a stray
/// `√2·λ₂` normalisation in the second term — which makes it
/// dimensionally inconsistent; the form above integrates the paper's own
/// density `h(y)` and matches Monte-Carlo simulation). For `λ₁ = λ₂`
/// (`c = 1`) it uses Appendix A's `E[Y] = 15√π/(16√λ₁)`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] unless both rates are positive
/// and finite.
pub fn expected_mean_gap(lambda1: f64, lambda2: f64) -> Result<f64, CoreError> {
    validate_positive("lambda1", lambda1)?;
    validate_positive("lambda2", lambda2)?;
    let sqrt_pi = std::f64::consts::PI.sqrt();
    // Near-equal rates: the generic form is 0/0; switch to Appendix A.
    if (lambda2 - lambda1).abs() < 1e-9 * lambda1 {
        return Ok(15.0 * sqrt_pi / (16.0 * lambda1.sqrt()));
    }
    let d = lambda2 - lambda1;
    Ok(sqrt_pi
        * (3.0 * lambda2 / (4.0 * lambda1.sqrt() * d)
            + (lambda1 * lambda1 / lambda2.sqrt() - lambda2 * lambda1.sqrt()) / (2.0 * d * d)))
}

/// `Var[Y] = E[Y²] − E[Y]²`.
///
/// # Errors
///
/// As for [`expected_mean_gap`].
pub fn variance_gap(lambda1: f64, lambda2: f64) -> Result<f64, CoreError> {
    let ey = expected_mean_gap(lambda1, lambda2)?;
    Ok((expected_square_gap(lambda1, lambda2)? - ey * ey).max(0.0))
}

/// The Theorem 4.3 ceiling on the noise level:
/// `C_{λ₁,α,β,S} = λ₁·√π·(α²βS²/(4√2) + α²√π/8 + α + 2/√π) − 2` (Eq. 15).
///
/// Any `c ≤ C` yields `(α, β)`-utility (for `α` above the corresponding
/// floor).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] unless `λ₁ > 0`, `α > 0`,
/// `β ∈ [0, 1]`, and `S ≥ 1`.
pub fn c_upper_bound(lambda1: f64, alpha: f64, beta: f64, s: usize) -> Result<f64, CoreError> {
    validate_positive("lambda1", lambda1)?;
    validate_positive("alpha", alpha)?;
    if !(0.0..=1.0).contains(&beta) {
        return Err(CoreError::InvalidParameter {
            name: "beta",
            value: beta,
            constraint: "must be in [0, 1]",
        });
    }
    if s == 0 {
        return Err(CoreError::InvalidParameter {
            name: "s",
            value: 0.0,
            constraint: "need at least one user",
        });
    }
    let sqrt_pi = std::f64::consts::PI.sqrt();
    let s = s as f64;
    Ok(lambda1
        * sqrt_pi
        * (alpha * alpha * beta * s * s / (4.0 * std::f64::consts::SQRT_2)
            + alpha * alpha * sqrt_pi / 8.0
            + alpha
            + 2.0 / sqrt_pi)
        - 2.0)
}

/// The Theorem 4.3 floor on `α` as printed in the paper:
/// `α_{λ,c} = (2√2/√(λ₁(1−c)))·(3/4 − c(c+√c+1)/(√2(1+√c)))`,
/// defined for `c < 1`. Returns `None` for `c ≥ 1` (the printed form's
/// `√(1−c)` leaves the reals; use [`alpha_threshold`] which is valid for
/// every `c`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] unless `λ₁ > 0` and `c ≥ 0`.
pub fn alpha_threshold_paper(lambda1: f64, c: f64) -> Result<Option<f64>, CoreError> {
    validate_positive("lambda1", lambda1)?;
    if !(c.is_finite() && c >= 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "c",
            value: c,
            constraint: "must be finite and >= 0",
        });
    }
    if c >= 1.0 {
        return Ok(None);
    }
    let lead = 2.0 * std::f64::consts::SQRT_2 / (lambda1 * (1.0 - c)).sqrt();
    let inner = 0.75 - c * (c + c.sqrt() + 1.0) / (std::f64::consts::SQRT_2 * (1.0 + c.sqrt()));
    Ok(Some(lead * inner))
}

/// The exact α floor from the proof: utility requires
/// `α > (2√2/√π)·E[Y]`. Valid for every noise level (it is what the
/// printed `α_{λ,c}` approximates for `c < 1`).
///
/// # Errors
///
/// As for [`expected_mean_gap`].
pub fn alpha_threshold(lambda1: f64, lambda2: f64) -> Result<f64, CoreError> {
    Ok(2.0 * std::f64::consts::SQRT_2 / std::f64::consts::PI.sqrt()
        * expected_mean_gap(lambda1, lambda2)?)
}

/// The Eq. 13 tail bound: for `α` above [`alpha_threshold`],
///
/// ```text
/// Pr{ 1/N Σ|x*_n − x̂*_n| ≥ α } ≤ 16·√(2/π)·Var(Y) / (S²·α²)
/// ```
///
/// capped at 1. Below the threshold the indicator term is 1 and the bound
/// is vacuous (returns 1).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-positive `α` or `S = 0`
/// plus rate validation from [`variance_gap`].
pub fn utility_beta_bound(
    lambda1: f64,
    lambda2: f64,
    s: usize,
    alpha: f64,
) -> Result<f64, CoreError> {
    validate_positive("alpha", alpha)?;
    if s == 0 {
        return Err(CoreError::InvalidParameter {
            name: "s",
            value: 0.0,
            constraint: "need at least one user",
        });
    }
    if alpha <= alpha_threshold(lambda1, lambda2)? {
        return Ok(1.0);
    }
    let var = variance_gap(lambda1, lambda2)?;
    let s = s as f64;
    let bound = 16.0 * (2.0 / std::f64::consts::PI).sqrt() * var / (s * s * alpha * alpha);
    Ok(bound.min(1.0))
}

/// Theorem A.1 (`c = 1`): the probability bound
/// `Pr{mean gap ≥ α} ≤ 16·√(2/π)·Var(Y)/(S²α²)` with
/// `Y² ~ Gamma(3, 1/λ₁)`, so `E[Y] = 15√π/(16√λ₁)`, `E[Y²] = 3/λ₁`.
/// Converges to 0 as `S → ∞` for `α` above the c=1 threshold
/// `15√2/(8√λ₁)`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for invalid `λ₁`, `α`, or
/// `S = 0`.
pub fn utility_beta_bound_c1(lambda1: f64, s: usize, alpha: f64) -> Result<f64, CoreError> {
    utility_beta_bound(lambda1, lambda1, s, alpha)
}

/// The `c = 1` α floor `15√2/(8√λ₁)` from Theorem A.1.
///
/// (The paper prints `15√(2λ₁)/8`, which increases with λ₁; the proof's
/// own `E(Y) = 15√π/(16√λ₁)` gives the decreasing form used here —
/// better data quality tolerates a smaller α.)
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for invalid `λ₁`.
pub fn alpha_threshold_c1(lambda1: f64) -> Result<f64, CoreError> {
    validate_positive("lambda1", lambda1)?;
    Ok(15.0 * std::f64::consts::SQRT_2 / (8.0 * lambda1.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_stats::dist::{Continuous, Exponential};

    #[test]
    fn validates_inputs() {
        assert!(expected_mean_gap(0.0, 1.0).is_err());
        assert!(expected_mean_gap(1.0, f64::NAN).is_err());
        assert!(c_upper_bound(1.0, 0.5, 1.5, 10).is_err());
        assert!(c_upper_bound(1.0, 0.5, 0.5, 0).is_err());
        assert!(alpha_threshold_paper(1.0, -0.1).is_err());
        assert!(utility_beta_bound(1.0, 1.0, 0, 1.0).is_err());
    }

    #[test]
    fn expected_y_matches_monte_carlo() {
        // The erratum check: our E(Y) closed form must match simulation.
        for (l1, l2) in [(2.0, 0.8), (1.0, 3.0), (0.5, 0.7), (4.0, 4.0)] {
            let e1 = Exponential::new(l1).unwrap();
            let e2 = Exponential::new(l2).unwrap();
            let mut rng = dptd_stats::seeded_rng(293);
            let n = 400_000;
            let mut acc = 0.0;
            for _ in 0..n {
                let y2 = e1.sample(&mut rng) + e1.sample(&mut rng) + e2.sample(&mut rng);
                acc += y2.sqrt();
            }
            let mc = acc / n as f64;
            let analytic = expected_mean_gap(l1, l2).unwrap();
            assert!(
                (mc - analytic).abs() < 0.01,
                "λ₁={l1} λ₂={l2}: MC {mc} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn second_moment_exact() {
        let v = expected_square_gap(2.0, 0.8).unwrap();
        assert!((v - (1.0 + 1.25)).abs() < 1e-12);
    }

    #[test]
    fn variance_nonnegative_and_consistent() {
        for (l1, l2) in [(2.0, 0.8), (1.0, 3.0), (5.0, 5.0)] {
            let var = variance_gap(l1, l2).unwrap();
            assert!(var >= 0.0);
            let ey = expected_mean_gap(l1, l2).unwrap();
            let ey2 = expected_square_gap(l1, l2).unwrap();
            assert!((var - (ey2 - ey * ey)).abs() < 1e-12);
        }
    }

    #[test]
    fn c_upper_bound_monotonicities() {
        // Theorem 4.3's discussion: C grows with α, β, S, λ₁.
        let base = c_upper_bound(2.0, 0.5, 0.1, 100).unwrap();
        assert!(c_upper_bound(2.0, 0.8, 0.1, 100).unwrap() > base);
        assert!(c_upper_bound(2.0, 0.5, 0.2, 100).unwrap() > base);
        assert!(c_upper_bound(2.0, 0.5, 0.1, 200).unwrap() > base);
        assert!(c_upper_bound(3.0, 0.5, 0.1, 100).unwrap() > base);
    }

    #[test]
    fn alpha_threshold_paper_matches_exact_at_zero_noise() {
        // At c → 0 both forms reduce to 3√2/(2√λ₁).
        let lambda1 = 2.0;
        let printed = alpha_threshold_paper(lambda1, 0.0).unwrap().unwrap();
        let want = 3.0 * std::f64::consts::SQRT_2 / (2.0 * lambda1.sqrt());
        assert!((printed - want).abs() < 1e-12);
        // And the exact threshold with a huge λ₂ (i.e. almost no noise)
        // agrees with the printed form.
        let exact = alpha_threshold(lambda1, 1e9).unwrap();
        assert!((exact - want).abs() < 1e-3, "exact {exact} want {want}");
    }

    #[test]
    fn alpha_threshold_paper_undefined_at_c_ge_1() {
        assert_eq!(alpha_threshold_paper(1.0, 1.0).unwrap(), None);
        assert_eq!(alpha_threshold_paper(1.0, 2.5).unwrap(), None);
    }

    #[test]
    fn beta_bound_shrinks_with_users() {
        let lambda1 = 2.0;
        let lambda2 = 1.0;
        let alpha = 2.0 * alpha_threshold(lambda1, lambda2).unwrap();
        let b100 = utility_beta_bound(lambda1, lambda2, 100, alpha).unwrap();
        let b400 = utility_beta_bound(lambda1, lambda2, 400, alpha).unwrap();
        assert!(b400 < b100);
        // 4x users → 16x smaller bound.
        assert!((b100 / b400 - 16.0).abs() < 1e-6);
    }

    #[test]
    fn beta_bound_vacuous_below_threshold() {
        let lambda1 = 2.0;
        let lambda2 = 1.0;
        let alpha = 0.5 * alpha_threshold(lambda1, lambda2).unwrap();
        assert_eq!(
            utility_beta_bound(lambda1, lambda2, 100, alpha).unwrap(),
            1.0
        );
    }

    #[test]
    fn c1_special_case_consistent_with_generic() {
        let lambda1 = 3.0;
        // E[Y] via the generic path at λ₂ = λ₁ equals Appendix A's form.
        let generic = expected_mean_gap(lambda1, lambda1).unwrap();
        let appendix = 15.0 * std::f64::consts::PI.sqrt() / (16.0 * lambda1.sqrt());
        assert!((generic - appendix).abs() < 1e-9);
        // And the β bound agrees between the two entry points.
        let a = utility_beta_bound(lambda1, lambda1, 50, 2.0).unwrap();
        let b = utility_beta_bound_c1(lambda1, 50, 2.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn c1_threshold_decreases_with_quality() {
        assert!(alpha_threshold_c1(4.0).unwrap() < alpha_threshold_c1(1.0).unwrap());
    }

    #[test]
    fn theorem_4_3_holds_empirically() {
        // Monte-Carlo check of the actual claim: generate worlds, run the
        // mechanism + CRH, and compare the empirical exceedance frequency
        // of the mean gap against the β bound.
        use crate::mechanism::PrivatePipeline;
        use dptd_sensing::synthetic::SyntheticConfig;
        use dptd_truth::crh::Crh;

        let lambda1 = 2.0;
        let c = 0.5;
        let lambda2 = lambda1 / c;
        let s = 50;
        let alpha = 1.5 * alpha_threshold(lambda1, lambda2).unwrap();
        let beta = utility_beta_bound(lambda1, lambda2, s, alpha).unwrap();

        let cfg = SyntheticConfig {
            num_users: s,
            num_objects: 20,
            lambda1,
            ..Default::default()
        };
        let pipeline = PrivatePipeline::new(Crh::default(), lambda2).unwrap();
        let trials = 60;
        let mut exceed = 0usize;
        for seed in 0..trials {
            let mut rng = dptd_stats::seeded_rng(3000 + seed);
            let ds = cfg.generate(&mut rng).unwrap();
            let run = pipeline.run(&ds.observations, &mut rng).unwrap();
            if run.utility_mae().unwrap() >= alpha {
                exceed += 1;
            }
        }
        let emp = exceed as f64 / trials as f64;
        assert!(
            emp <= beta + 0.1,
            "empirical exceedance {emp} above β bound {beta}"
        );
    }
}
