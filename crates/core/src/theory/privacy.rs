//! Theorem 4.8 — the noise floor for `(ε, δ)`-local differential privacy.
//!
//! Conditioned on a sampled variance `y`, the Gaussian mechanism at record
//! distance `Δ_s` has privacy loss `Δ_s²/(2y)`; requiring it to be at most
//! `ε` except with probability `δ` over `y ~ Exp(λ₂)` gives
//!
//! ```text
//! λ₂ ≤ 2·ε·ln(1/(1−δ)) / Δ_s²      ⇔      c = λ₁/λ₂ ≥ λ₁·Δ_s² / (2·ε·ln(1/(1−δ)))
//! ```
//!
//! With Lemma 4.7's sensitivity bound `Δ_s = γ_s/λ₁` this becomes the
//! paper's `c ≥ γ_s²/(2·ε·λ₁·ln(1/(1−δ)))`.
//!
//! **Erratum note**: the paper's printed theorem omits the `ε` factor that
//! its own proof derives (`y ≥ Δ²/(2ε)` from `exp(Δ²/2y) ≤ e^ε`). Without
//! ε the bound would not depend on the privacy level at all, and the
//! ε-axis of Figures 2/5/6 would be unreproducible. This module keeps ε;
//! setting `ε = 1` recovers the printed statement exactly.

use dptd_ldp::SensitivityBound;

use crate::CoreError;

/// Parameters of a privacy requirement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyRequirement {
    /// The ε of `(ε, δ)`-LDP.
    pub epsilon: f64,
    /// The δ of `(ε, δ)`-LDP.
    pub delta: f64,
    /// Lemma 4.7 sensitivity-bound parameters (`b`, `η`, `λ₁`).
    pub sensitivity: SensitivityBound,
}

impl PrivacyRequirement {
    /// Create a requirement.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `ε > 0` and
    /// `δ ∈ (0, 1)`.
    pub fn new(epsilon: f64, delta: f64, sensitivity: SensitivityBound) -> Result<Self, CoreError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "must be finite and > 0",
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "delta",
                value: delta,
                constraint: "must be in (0, 1)",
            });
        }
        Ok(Self {
            epsilon,
            delta,
            sensitivity,
        })
    }
}

/// The minimum noise level `c = λ₁/λ₂` for `(ε, δ)`-LDP using the paper's
/// sensitivity form `Δ_s = γ_s/λ₁` (Theorem 4.8 with the proof's ε
/// restored):
///
/// ```text
/// c ≥ γ_s² / (2·ε·λ₁·ln(1/(1−δ)))
/// ```
///
/// This is the variant the experiment harness uses to map an ε target to
/// a hyper-parameter `λ₂` — it reproduces the paper's λ₁-dependence
/// (Fig. 3: higher-quality data needs less noise).
pub fn min_noise_level(req: &PrivacyRequirement) -> f64 {
    let gamma = req.sensitivity.gamma();
    let lambda1 = req.sensitivity.lambda1;
    gamma * gamma / (2.0 * req.epsilon * lambda1 * (1.0 / (1.0 - req.delta)).ln())
}

/// The minimum noise level using the proof-faithful sensitivity
/// `Δ_s = γ_s/√λ₁` (valid for all `λ₁ > 0`, see
/// [`SensitivityBound::delta_bound_exact`]):
///
/// ```text
/// c ≥ λ₁·Δ_s²/(2·ε·ln(1/(1−δ))) = γ_s² / (2·ε·ln(1/(1−δ)))
/// ```
///
/// Note the λ₁ cancels — under the exact sensitivity, the required noise
/// level is quality-independent.
pub fn min_noise_level_exact(req: &PrivacyRequirement) -> f64 {
    let gamma = req.sensitivity.gamma();
    gamma * gamma / (2.0 * req.epsilon * (1.0 / (1.0 - req.delta)).ln())
}

/// Convert a noise level `c` into the server hyper-parameter
/// `λ₂ = λ₁/c`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] unless both inputs are finite
/// and positive.
pub fn lambda2_for_noise_level(lambda1: f64, c: f64) -> Result<f64, CoreError> {
    for (name, v) in [("lambda1", lambda1), ("c", c)] {
        if !(v.is_finite() && v > 0.0) {
            return Err(CoreError::InvalidParameter {
                name,
                value: v,
                constraint: "must be finite and > 0",
            });
        }
    }
    Ok(lambda1 / c)
}

/// The `(ε, δ)` actually achieved at a given noise level `c` for a fixed
/// record distance `Δ`: δ as a function of ε (the privacy profile),
/// `δ(ε) = 1 − exp(−λ₂·Δ²/(2ε))` with `λ₂ = λ₁/c`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-positive inputs.
pub fn achieved_delta(
    lambda1: f64,
    c: f64,
    sensitivity: f64,
    epsilon: f64,
) -> Result<f64, CoreError> {
    let lambda2 = lambda2_for_noise_level(lambda1, c)?;
    Ok(dptd_ldp::accountant::randomized_gaussian_delta(
        lambda2,
        sensitivity,
        epsilon,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_ldp::SensitivityBound;

    fn req(eps: f64, delta: f64, lambda1: f64) -> PrivacyRequirement {
        PrivacyRequirement::new(
            eps,
            delta,
            SensitivityBound::new(2.0, 0.9, lambda1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn validates_inputs() {
        let sb = SensitivityBound::new(2.0, 0.9, 1.0).unwrap();
        assert!(PrivacyRequirement::new(0.0, 0.1, sb).is_err());
        assert!(PrivacyRequirement::new(1.0, 0.0, sb).is_err());
        assert!(PrivacyRequirement::new(1.0, 1.0, sb).is_err());
        assert!(lambda2_for_noise_level(0.0, 1.0).is_err());
        assert!(lambda2_for_noise_level(1.0, -1.0).is_err());
    }

    #[test]
    fn stronger_privacy_needs_more_noise() {
        // Smaller ε → larger floor (this is exactly the ε the printed
        // theorem dropped).
        let weak = min_noise_level(&req(2.0, 0.1, 2.0));
        let strong = min_noise_level(&req(0.5, 0.1, 2.0));
        assert!(strong > weak);
        // Smaller δ → larger floor.
        let loose = min_noise_level(&req(1.0, 0.3, 2.0));
        let tight = min_noise_level(&req(1.0, 0.05, 2.0));
        assert!(tight > loose);
    }

    #[test]
    fn better_quality_needs_less_noise_in_paper_form() {
        let low_quality = min_noise_level(&req(1.0, 0.1, 0.5));
        let high_quality = min_noise_level(&req(1.0, 0.1, 4.0));
        assert!(high_quality < low_quality);
    }

    #[test]
    fn exact_form_is_quality_independent() {
        let a = min_noise_level_exact(&req(1.0, 0.1, 0.5));
        let b = min_noise_level_exact(&req(1.0, 0.1, 8.0));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn paper_and_exact_agree_at_lambda1_one() {
        let a = min_noise_level(&req(0.7, 0.2, 1.0));
        let b = min_noise_level_exact(&req(0.7, 0.2, 1.0));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn epsilon_one_recovers_printed_statement() {
        // Printed Theorem 4.8: c ≥ γ²/(2λ₁ ln(1/(1−δ))).
        let r = req(1.0, 0.25, 2.0);
        let gamma = r.sensitivity.gamma();
        let printed = gamma * gamma / (2.0 * 2.0 * (1.0 / 0.75f64).ln());
        assert!((min_noise_level(&r) - printed).abs() < 1e-12);
    }

    #[test]
    fn achieved_delta_closes_the_loop() {
        // Pick (ε, δ), compute the floor c, then verify that running at
        // exactly that c achieves δ at distance Δ_s = γ/λ₁.
        let r = req(0.8, 0.2, 2.0);
        let c = min_noise_level(&r);
        let sens = r.sensitivity.delta_bound_paper();
        let d = achieved_delta(2.0, c, sens, 0.8).unwrap();
        assert!((d - 0.2).abs() < 1e-9, "achieved δ {d}");
    }

    #[test]
    fn mechanism_at_floor_passes_empirical_audit() {
        // End-to-end: configure λ₂ from the theory, audit the mechanism
        // empirically, and check the audited ε̂ does not exceed the target
        // (up to sampling slack + the audit's own δ).
        use dptd_ldp::audit::{audit_mechanism, AuditConfig};
        use dptd_ldp::RandomizedVarianceGaussian;

        let r = req(1.0, 0.2, 2.0);
        let c = min_noise_level(&r);
        let lambda2 = lambda2_for_noise_level(2.0, c).unwrap();
        let mech = RandomizedVarianceGaussian::new(lambda2).unwrap();
        let sens = r.sensitivity.delta_bound_paper();

        let cfg = AuditConfig {
            trials: 60_000,
            bins: 24,
            min_count: 250,
            low: -6.0 * sens,
            high: 7.0 * sens,
        };
        let mut rng = dptd_stats::seeded_rng(307);
        let audit = audit_mechanism(&mech, 0.0, sens, &cfg, &mut rng).unwrap();
        assert!(
            audit.epsilon_hat <= 1.0 + 0.5,
            "audited ε̂ {} far above target 1.0 (δ slack {})",
            audit.epsilon_hat,
            audit.excluded_mass,
        );
    }
}
