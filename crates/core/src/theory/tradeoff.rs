//! Theorem 4.9 — the utility–privacy trade-off.
//!
//! Combining Theorem 4.3 (utility needs `c ≤ C_{λ₁,α,β,S}`) and
//! Theorem 4.8 (privacy needs `c ≥ c_min(ε, δ)`) yields a feasibility
//! window for the noise level. Eq. 19 is the knife-edge case where the
//! window closes to a single point.

use crate::theory::{privacy, utility};
use crate::CoreError;

/// A (possibly empty) feasibility window for the noise level `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasibleNoise {
    /// Privacy floor (Theorem 4.8).
    pub c_min: f64,
    /// Utility ceiling (Theorem 4.3).
    pub c_max: f64,
}

impl FeasibleNoise {
    /// Whether any noise level satisfies both requirements.
    pub fn is_feasible(&self) -> bool {
        self.c_min <= self.c_max && self.c_min.is_finite() && self.c_max > 0.0
    }

    /// A recommended operating point, or `None` if the window is empty.
    ///
    /// Privacy is a hard floor while utility improves monotonically as
    /// `c` decreases, so the best feasible choice sits just above the
    /// floor: `min(1.05·c_min, c_max)` (the 5% margin covers sensitivity
    /// mis-estimation without giving up meaningful utility).
    pub fn operating_point(&self) -> Option<f64> {
        if self.is_feasible() {
            Some((self.c_min.max(0.0) * 1.05).min(self.c_max))
        } else {
            None
        }
    }

    /// Width of the window (negative when infeasible).
    pub fn width(&self) -> f64 {
        self.c_max - self.c_min
    }
}

/// Compute the Theorem 4.9 window for a joint utility + privacy target.
///
/// * utility target: `(α, β)` with `S` users at data quality `λ₁`;
/// * privacy target: the [`PrivacyRequirement`](privacy::PrivacyRequirement)
///   (ε, δ, and the Lemma 4.7 sensitivity parameters).
///
/// # Errors
///
/// Propagates parameter validation from the two underlying bounds.
pub fn feasible_noise_window(
    alpha: f64,
    beta: f64,
    s: usize,
    req: &privacy::PrivacyRequirement,
) -> Result<FeasibleNoise, CoreError> {
    let lambda1 = req.sensitivity.lambda1;
    let c_max = utility::c_upper_bound(lambda1, alpha, beta, s)?;
    let c_min = privacy::min_noise_level(req);
    Ok(FeasibleNoise { c_min, c_max })
}

/// Pick a hyper-parameter `λ₂` achieving the joint target, or fail with
/// [`CoreError::Infeasible`] naming the two bounds.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when the window is empty, plus
/// parameter validation errors.
pub fn choose_lambda2(
    alpha: f64,
    beta: f64,
    s: usize,
    req: &privacy::PrivacyRequirement,
) -> Result<f64, CoreError> {
    let window = feasible_noise_window(alpha, beta, s, req)?;
    let c = window.operating_point().ok_or(CoreError::Infeasible {
        c_min: window.c_min,
        c_max: window.c_max,
    })?;
    privacy::lambda2_for_noise_level(req.sensitivity.lambda1, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::privacy::PrivacyRequirement;
    use dptd_ldp::SensitivityBound;

    fn req(eps: f64, delta: f64, lambda1: f64) -> PrivacyRequirement {
        PrivacyRequirement::new(
            eps,
            delta,
            SensitivityBound::new(1.5, 0.9, lambda1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn generous_targets_are_feasible() {
        // Many users + loose α/β + moderate privacy → window open.
        let w = feasible_noise_window(1.0, 0.2, 500, &req(1.0, 0.2, 2.0)).unwrap();
        assert!(w.is_feasible(), "window {w:?}");
        assert!(w.operating_point().is_some());
        assert!(w.width() > 0.0);
    }

    #[test]
    fn impossible_targets_are_rejected() {
        // Very strong privacy (tiny ε, tiny δ) with a strict utility
        // target and few users → empty window.
        let w = feasible_noise_window(0.01, 0.001, 2, &req(0.001, 0.001, 0.5)).unwrap();
        assert!(!w.is_feasible(), "window {w:?}");
        assert!(matches!(
            choose_lambda2(0.01, 0.001, 2, &req(0.001, 0.001, 0.5)),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn more_users_widen_the_window() {
        let narrow = feasible_noise_window(0.5, 0.1, 50, &req(1.0, 0.2, 2.0)).unwrap();
        let wide = feasible_noise_window(0.5, 0.1, 500, &req(1.0, 0.2, 2.0)).unwrap();
        assert!(wide.width() > narrow.width());
        // Privacy floor is unaffected by S.
        assert!((wide.c_min - narrow.c_min).abs() < 1e-12);
    }

    #[test]
    fn stronger_privacy_narrows_the_window() {
        let loose = feasible_noise_window(0.5, 0.1, 200, &req(2.0, 0.2, 2.0)).unwrap();
        let tight = feasible_noise_window(0.5, 0.1, 200, &req(0.2, 0.05, 2.0)).unwrap();
        assert!(tight.c_min > loose.c_min);
        assert!((tight.c_max - loose.c_max).abs() < 1e-12);
    }

    #[test]
    fn chosen_lambda2_lands_inside_window() {
        let r = req(1.0, 0.2, 2.0);
        let w = feasible_noise_window(1.0, 0.2, 300, &r).unwrap();
        let lambda2 = choose_lambda2(1.0, 0.2, 300, &r).unwrap();
        let c = 2.0 / lambda2; // λ₁/λ₂
        assert!(c >= w.c_min - 1e-12 && c <= w.c_max + 1e-12);
    }
}
