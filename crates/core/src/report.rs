//! Experiment reporting: per-run metrics and the Fig. 7 weight
//! comparison.

use serde::{Deserialize, Serialize};

use dptd_sensing::SensingDataset;
use dptd_truth::crh::Crh;
use dptd_truth::ObservationMatrix;

use crate::mechanism::PrivateRun;
use crate::CoreError;

/// The metrics every figure of the paper is built from, for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// MAE between aggregates on original vs perturbed data (the paper's
    /// utility axis).
    pub utility_mae: f64,
    /// Mean absolute added noise (the paper's noise axis).
    pub mean_abs_noise: f64,
    /// MAE of the *perturbed* aggregate against ground truth (when known).
    pub truth_mae_perturbed: Option<f64>,
    /// MAE of the *unperturbed* aggregate against ground truth.
    pub truth_mae_unperturbed: Option<f64>,
    /// Iterations the perturbed run took (Fig. 8's driver).
    pub iterations_perturbed: usize,
    /// Iterations the unperturbed run took.
    pub iterations_unperturbed: usize,
}

impl RunMetrics {
    /// Extract metrics from a [`PrivateRun`], optionally scoring against
    /// ground truth.
    ///
    /// # Errors
    ///
    /// Propagates metric computation failures (length mismatches cannot
    /// occur for runs produced by the pipeline).
    pub fn from_run(run: &PrivateRun, ground_truth: Option<&[f64]>) -> Result<Self, CoreError> {
        let (truth_mae_perturbed, truth_mae_unperturbed) = match ground_truth {
            Some(t) => (
                Some(dptd_stats::summary::mae(&run.perturbed.truths, t)?),
                Some(dptd_stats::summary::mae(&run.unperturbed.truths, t)?),
            ),
            None => (None, None),
        };
        Ok(Self {
            utility_mae: run.utility_mae()?,
            mean_abs_noise: run.noise.mean_abs_noise,
            truth_mae_perturbed,
            truth_mae_unperturbed,
            iterations_perturbed: run.perturbed.iterations,
            iterations_unperturbed: run.unperturbed.iterations,
        })
    }
}

/// The Fig. 7 artefact: per-user true weights (computed against ground
/// truth with the CRH weight formula) versus the weights CRH estimated,
/// on both original and perturbed data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightComparison {
    /// Weight each user *deserves* on the original data (CRH weight
    /// formula evaluated against ground truth).
    pub true_weights_original: Vec<f64>,
    /// Weight CRH estimated on the original data.
    pub estimated_weights_original: Vec<f64>,
    /// Weight each user deserves on the perturbed data.
    pub true_weights_perturbed: Vec<f64>,
    /// Weight CRH estimated on the perturbed data.
    pub estimated_weights_perturbed: Vec<f64>,
}

impl WeightComparison {
    /// Build the comparison for a dataset with known ground truth.
    ///
    /// `run` must have been produced from `dataset.observations`.
    ///
    /// # Errors
    ///
    /// Propagates truth-discovery errors from the weight evaluations.
    pub fn compute(
        dataset: &SensingDataset,
        run: &PrivateRun,
        crh: &Crh,
    ) -> Result<Self, CoreError> {
        let true_orig = true_weights(crh, &dataset.observations, &dataset.ground_truths);
        let true_pert = true_weights(crh, &run.perturbed_matrix, &dataset.ground_truths);
        Ok(Self {
            true_weights_original: true_orig,
            estimated_weights_original: run.unperturbed.weights.clone(),
            true_weights_perturbed: true_pert,
            estimated_weights_perturbed: run.perturbed.weights.clone(),
        })
    }

    /// Spearman rank correlation between true and estimated weights on the
    /// original data — the "mostly consistent" claim of Fig. 7a.
    pub fn rank_correlation_original(&self) -> f64 {
        spearman(
            &self.true_weights_original,
            &self.estimated_weights_original,
        )
    }

    /// Spearman rank correlation on the perturbed data (Fig. 7b).
    pub fn rank_correlation_perturbed(&self) -> f64 {
        spearman(
            &self.true_weights_perturbed,
            &self.estimated_weights_perturbed,
        )
    }
}

/// The CRH weight formula (Eq. 3) evaluated against a *known* truth
/// vector — the paper's "true weight" reference in Fig. 7.
fn true_weights(crh: &Crh, data: &ObservationMatrix, truths: &[f64]) -> Vec<f64> {
    crh.estimate_weights(data, truths, &data.object_std_devs())
}

/// Spearman rank correlation (ties broken by index, adequate for
/// continuous weights).
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "weight vectors must align");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("finite weights"));
        let mut ranks = vec![0.0; xs.len()];
        for (r, &i) in idx.iter().enumerate() {
            ranks[i] = r as f64;
        }
        ranks
    };
    let ra = rank(a);
    let rb = rank(b);
    let d2: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - y) * (x - y)).sum();
    let n = n as f64;
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::PrivatePipeline;
    use dptd_sensing::synthetic::SyntheticConfig;
    use dptd_truth::TruthDiscoverer;

    fn dataset() -> SensingDataset {
        let mut rng = dptd_stats::seeded_rng(311);
        SyntheticConfig {
            num_users: 40,
            num_objects: 25,
            ..Default::default()
        }
        .generate(&mut rng)
        .unwrap()
    }

    #[test]
    fn metrics_from_run() {
        let ds = dataset();
        let p = PrivatePipeline::new(Crh::default(), 2.0).unwrap();
        let mut rng = dptd_stats::seeded_rng(313);
        let run = p.run(&ds.observations, &mut rng).unwrap();
        let m = RunMetrics::from_run(&run, Some(&ds.ground_truths)).unwrap();
        assert!(m.utility_mae >= 0.0);
        assert!(m.mean_abs_noise > 0.0);
        assert!(m.truth_mae_perturbed.unwrap() >= 0.0);
        assert!(m.iterations_perturbed >= 1);

        let without_truth = RunMetrics::from_run(&run, None).unwrap();
        assert_eq!(without_truth.truth_mae_perturbed, None);
    }

    #[test]
    fn weight_comparison_ranks_correlate() {
        // Fig. 7's claim: estimated weights track true weights.
        let ds = dataset();
        let crh = Crh::default();
        let p = PrivatePipeline::new(crh, 5.0).unwrap();
        let mut rng = dptd_stats::seeded_rng(317);
        let run = p.run(&ds.observations, &mut rng).unwrap();
        let cmp = WeightComparison::compute(&ds, &run, &crh).unwrap();
        assert!(
            cmp.rank_correlation_original() > 0.8,
            "original rank corr {}",
            cmp.rank_correlation_original()
        );
        assert!(
            cmp.rank_correlation_perturbed() > 0.6,
            "perturbed rank corr {}",
            cmp.rank_correlation_perturbed()
        );
    }

    #[test]
    fn heavily_perturbed_user_weight_drops() {
        // The Fig. 7b phenomenon: pin a huge noise variance on one good
        // user; their *true weight on perturbed data* must drop relative
        // to their true weight on original data.
        let ds = dataset();
        let crh = Crh::default();
        let p = PrivatePipeline::new(crh, 2.0).unwrap();
        let mut rng = dptd_stats::seeded_rng(331);

        // Manually perturb: user 0 gets variance 9, everyone else 1e-9.
        let mut perturbed = ds.observations.clone();
        for s in 0..ds.num_users() {
            let var = if s == 0 { 9.0 } else { 1e-9 };
            let orig: Vec<f64> = ds
                .observations
                .observations_of_user(s)
                .map(|(_, v)| v)
                .collect();
            let noisy = p
                .mechanism()
                .perturb_report_with_variance(&orig, var, &mut rng);
            perturbed.replace_user_observations(s, &noisy);
        }
        let stds_orig = ds.observations.object_std_devs();
        let stds_pert = perturbed.object_std_devs();
        let w_orig = crh.estimate_weights(&ds.observations, &ds.ground_truths, &stds_orig);
        let w_pert = crh.estimate_weights(&perturbed, &ds.ground_truths, &stds_pert);
        // Rank of user 0 among all users must fall after perturbation.
        let rank = |ws: &[f64], s: usize| ws.iter().filter(|&&w| w < ws[s]).count();
        assert!(
            rank(&w_pert, 0) < rank(&w_orig, 0),
            "user 0 rank should drop: orig rank {} pert rank {}",
            rank(&w_orig, 0),
            rank(&w_pert, 0)
        );
        let _ = crh.discover(&perturbed).unwrap();
    }

    #[test]
    fn spearman_reference_values() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
    }
}
