use std::fmt;

/// Error type for the privacy-preserving truth-discovery pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A pipeline or theory parameter was outside its domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// The constraint that failed.
        constraint: &'static str,
    },
    /// No noise level `c` satisfies both the utility and privacy bounds
    /// for the requested parameters (Theorem 4.9's feasibility window is
    /// empty).
    Infeasible {
        /// Privacy lower bound on `c`.
        c_min: f64,
        /// Utility upper bound on `c`.
        c_max: f64,
    },
    /// An underlying LDP error.
    Ldp(dptd_ldp::LdpError),
    /// An underlying truth-discovery error.
    Truth(dptd_truth::TruthError),
    /// An underlying statistics error.
    Stats(dptd_stats::StatsError),
    /// An underlying sensing-simulator error.
    Sensing(dptd_sensing::SensingError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            CoreError::Infeasible { c_min, c_max } => write!(
                f,
                "no feasible noise level: privacy requires c >= {c_min} but utility requires c <= {c_max}"
            ),
            CoreError::Ldp(e) => write!(f, "privacy mechanism error: {e}"),
            CoreError::Truth(e) => write!(f, "truth discovery error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Sensing(e) => write!(f, "sensing simulation error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ldp(e) => Some(e),
            CoreError::Truth(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Sensing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dptd_ldp::LdpError> for CoreError {
    fn from(e: dptd_ldp::LdpError) -> Self {
        CoreError::Ldp(e)
    }
}

impl From<dptd_truth::TruthError> for CoreError {
    fn from(e: dptd_truth::TruthError) -> Self {
        CoreError::Truth(e)
    }
}

impl From<dptd_stats::StatsError> for CoreError {
    fn from(e: dptd_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<dptd_sensing::SensingError> for CoreError {
    fn from(e: dptd_sensing::SensingError) -> Self {
        CoreError::Sensing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = CoreError::Infeasible {
            c_min: 2.0,
            c_max: 1.0,
        };
        assert!(e.to_string().contains("feasible"));
        assert!(e.source().is_none());

        let e: CoreError = dptd_truth::TruthError::EmptyMatrix.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
