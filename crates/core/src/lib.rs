//! # dptd-core — privacy-preserving truth discovery (ICDCS 2020)
//!
//! This crate implements the primary contribution of *"Towards
//! Differentially Private Truth Discovery for Crowd Sensing Systems"*
//! (Li et al.): a perturbation mechanism under which an **untrusted**
//! server can still run quality-aware aggregation.
//!
//! The mechanism (Algorithm 2 of the paper):
//!
//! 1. the server releases a single public hyper-parameter `λ₂`;
//! 2. each user privately samples a noise variance `δ_s² ~ Exp(λ₂)` and
//!    adds i.i.d. `N(0, δ_s²)` noise to their report — no coordination, no
//!    extra round trips;
//! 3. the server runs ordinary truth discovery (CRH, GTM, …) on the
//!    perturbed matrix. Because weight estimation automatically
//!    down-weights heavily-perturbed users, the aggregate barely moves even
//!    under large noise.
//!
//! Modules:
//!
//! * [`mechanism`] — the end-to-end pipeline
//!   ([`mechanism::PrivatePipeline`]) and noise bookkeeping.
//! * [`roles`] — the server/user split of Algorithm 2 as a typed API
//!   (used by `dptd-protocol` to run the same logic over a network
//!   runtime).
//! * [`theory`] — Theorems 4.3/4.8/4.9, Lemma 4.7 and Appendix A as
//!   executable formulas, with the paper's two printed errata corrected
//!   and documented ([`theory::utility::expected_mean_gap`] and
//!   [`theory::privacy`]).
//! * [`report`] — experiment reporting: per-run utility/noise metrics and
//!   the true-vs-estimated weight comparison of Fig. 7.
//!
//! # End-to-end example
//!
//! ```
//! use dptd_core::mechanism::PrivatePipeline;
//! use dptd_sensing::synthetic::SyntheticConfig;
//! use dptd_truth::crh::Crh;
//!
//! # fn main() -> Result<(), dptd_core::CoreError> {
//! let mut rng = dptd_stats::seeded_rng(7);
//! let dataset = SyntheticConfig::default().generate(&mut rng)?;
//!
//! // λ₂ = 2 → expected noise variance 1/2 per user.
//! let pipeline = PrivatePipeline::new(Crh::default(), 2.0)?;
//! let run = pipeline.run(&dataset.observations, &mut rng)?;
//!
//! // Aggregates barely move despite the noise (the paper's headline).
//! assert!(run.utility_mae()? < 0.2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod mechanism;
pub mod report;
pub mod roles;
pub mod theory;

mod error;

pub use error::CoreError;
pub use mechanism::{NoiseStats, PrivatePipeline, PrivateRun};
