//! The end-to-end privacy-preserving truth-discovery pipeline
//! (Algorithm 2 of the paper).

use rand::Rng;

use dptd_ldp::RandomizedVarianceGaussian;
use dptd_truth::{ObservationMatrix, TruthDiscoverer, TruthDiscoveryResult};

use crate::CoreError;

/// Per-run noise bookkeeping (what Figures 2b–6b plot).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseStats {
    /// Noise variance `δ_s²` sampled by each user.
    pub user_variances: Vec<f64>,
    /// Mean of `|ξ^s_n|` over all perturbed cells — the paper's
    /// "average of added noise" axis.
    pub mean_abs_noise: f64,
    /// Mean of the sampled variances.
    pub mean_variance: f64,
}

/// The outcome of one private run: truth discovery on both the original
/// and the perturbed matrix, plus the noise actually added.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivateRun {
    /// Truth discovery output on the *original* data, `A(D)`.
    pub unperturbed: TruthDiscoveryResult,
    /// Truth discovery output on the *perturbed* data, `A(M(D))`.
    pub perturbed: TruthDiscoveryResult,
    /// The perturbed matrix itself (what the server actually saw).
    pub perturbed_matrix: ObservationMatrix,
    /// Noise bookkeeping.
    pub noise: NoiseStats,
}

impl PrivateRun {
    /// The paper's utility metric: MAE between aggregates before and after
    /// perturbation, `1/N Σ_n |x*_n − x̂*_n|` (Eq. 6, §5.1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] only if the two runs disagree on
    /// object count, which cannot happen for outputs of the same matrix.
    pub fn utility_mae(&self) -> Result<f64, CoreError> {
        Ok(dptd_stats::summary::mae(
            &self.unperturbed.truths,
            &self.perturbed.truths,
        )?)
    }
}

/// Algorithm 2: perturb every user's report with privately-sampled
/// Gaussian noise, then run a truth-discovery algorithm on the result.
///
/// Generic over the algorithm `A` — the mechanism is deliberately
/// algorithm-agnostic (§3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivatePipeline<A> {
    algorithm: A,
    mechanism: RandomizedVarianceGaussian,
}

impl<A: TruthDiscoverer> PrivatePipeline<A> {
    /// Create a pipeline with hyper-parameter `λ₂` (expected noise
    /// variance `1/λ₂` per user).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ldp`] if `λ₂` is not finite and positive.
    pub fn new(algorithm: A, lambda2: f64) -> Result<Self, CoreError> {
        Ok(Self {
            algorithm,
            mechanism: RandomizedVarianceGaussian::new(lambda2)?,
        })
    }

    /// The server-released hyper-parameter `λ₂`.
    pub fn lambda2(&self) -> f64 {
        self.mechanism.lambda2()
    }

    /// The underlying perturbation mechanism.
    pub fn mechanism(&self) -> &RandomizedVarianceGaussian {
        &self.mechanism
    }

    /// The truth-discovery algorithm run by the server.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// Perturb a matrix: each user samples one `δ_s² ~ Exp(λ₂)` and adds
    /// i.i.d. `N(0, δ_s²)` to every value they observed (steps 3–5 of
    /// Algorithm 2).
    pub fn perturb<R: Rng + ?Sized>(
        &self,
        data: &ObservationMatrix,
        rng: &mut R,
    ) -> (ObservationMatrix, NoiseStats) {
        let mut perturbed = data.clone();
        let mut user_variances = Vec::with_capacity(data.num_users());
        let mut abs_noise_sum = 0.0;
        let mut noise_count = 0usize;
        for s in 0..data.num_users() {
            let variance = self.mechanism.sample_noise_variance(rng);
            user_variances.push(variance);
            let original: Vec<f64> = data.observations_of_user(s).map(|(_, v)| v).collect();
            let noisy = self
                .mechanism
                .perturb_report_with_variance(&original, variance, rng);
            for (a, b) in original.iter().zip(&noisy) {
                abs_noise_sum += (a - b).abs();
                noise_count += 1;
            }
            perturbed.replace_user_observations(s, &noisy);
        }
        let mean_variance = user_variances.iter().sum::<f64>() / user_variances.len().max(1) as f64;
        let stats = NoiseStats {
            user_variances,
            mean_abs_noise: abs_noise_sum / noise_count.max(1) as f64,
            mean_variance,
        };
        (perturbed, stats)
    }

    /// Run the full pipeline: truth discovery on the original matrix (the
    /// reference `A(D)`), perturb, truth discovery on the perturbed matrix
    /// (`A(M(D))`).
    ///
    /// # Errors
    ///
    /// Propagates truth-discovery failures ([`CoreError::Truth`]).
    pub fn run<R: Rng + ?Sized>(
        &self,
        data: &ObservationMatrix,
        rng: &mut R,
    ) -> Result<PrivateRun, CoreError> {
        let unperturbed = self.algorithm.discover(data)?;
        let (perturbed_matrix, noise) = self.perturb(data, rng);
        let perturbed = self.algorithm.discover(&perturbed_matrix)?;
        Ok(PrivateRun {
            unperturbed,
            perturbed,
            perturbed_matrix,
            noise,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dptd_truth::baselines::MeanAggregator;
    use dptd_truth::crh::Crh;

    fn small_matrix() -> ObservationMatrix {
        ObservationMatrix::from_dense(&[
            &[1.0, 2.0, 3.0, 4.0][..],
            &[1.1, 2.1, 3.1, 4.1],
            &[0.9, 1.9, 2.9, 3.9],
            &[1.05, 2.05, 3.05, 4.05],
        ])
        .unwrap()
    }

    #[test]
    fn pipeline_validates_lambda2() {
        assert!(PrivatePipeline::new(Crh::default(), 0.0).is_err());
        assert!(PrivatePipeline::new(Crh::default(), -2.0).is_err());
    }

    #[test]
    fn perturbation_preserves_sparsity_and_counts() {
        let data = ObservationMatrix::from_sparse_rows(
            3,
            &[
                vec![(0, 1.0), (2, 3.0)],
                vec![(1, 2.0)],
                vec![(0, 1.1), (1, 2.1), (2, 3.1)],
            ],
        )
        .unwrap();
        let p = PrivatePipeline::new(Crh::default(), 1.0).unwrap();
        let mut rng = dptd_stats::seeded_rng(241);
        let (perturbed, stats) = p.perturb(&data, &mut rng);
        assert_eq!(perturbed.num_observations(), data.num_observations());
        assert_eq!(perturbed.value(0, 1), None);
        assert_eq!(stats.user_variances.len(), 3);
        assert!(stats.mean_abs_noise > 0.0);
    }

    #[test]
    fn one_variance_per_user_per_run() {
        // With λ₂ huge the sampled variances are tiny → all users barely
        // perturbed; with λ₂ tiny, noise is large. Either way each user
        // has exactly one recorded variance.
        let p = PrivatePipeline::new(MeanAggregator::new(), 1e6).unwrap();
        let mut rng = dptd_stats::seeded_rng(251);
        let (perturbed, stats) = p.perturb(&small_matrix(), &mut rng);
        assert_eq!(stats.user_variances.len(), 4);
        for s in 0..4 {
            for (n, v) in perturbed.observations_of_user(s) {
                let orig = small_matrix().value(s, n).unwrap();
                assert!((v - orig).abs() < 0.1, "user {s} object {n}");
            }
        }
    }

    #[test]
    fn run_reports_both_sides() {
        let p = PrivatePipeline::new(Crh::default(), 2.0).unwrap();
        let mut rng = dptd_stats::seeded_rng(257);
        let run = p.run(&small_matrix(), &mut rng).unwrap();
        assert_eq!(run.unperturbed.truths.len(), 4);
        assert_eq!(run.perturbed.truths.len(), 4);
        assert!(run.utility_mae().unwrap().is_finite());
    }

    #[test]
    fn utility_degrades_gracefully_with_noise() {
        // Mean of MAE over seeds must grow as λ₂ shrinks (more noise),
        // but stay bounded — the paper's core utility claim in miniature.
        let data = small_matrix();
        let mae_at = |lambda2: f64| {
            let p = PrivatePipeline::new(Crh::default(), lambda2).unwrap();
            let mut acc = 0.0;
            for seed in 0..20 {
                let mut rng = dptd_stats::seeded_rng(1000 + seed);
                acc += p.run(&data, &mut rng).unwrap().utility_mae().unwrap();
            }
            acc / 20.0
        };
        let low_noise = mae_at(100.0);
        let high_noise = mae_at(0.5);
        assert!(
            low_noise < high_noise,
            "low-noise MAE {low_noise} should be below high-noise {high_noise}"
        );
        assert!(low_noise < 0.05, "low-noise MAE {low_noise}");
    }

    #[test]
    fn weighted_aggregation_tolerates_noise_better_than_mean() {
        // The §3.2 claim: under the same perturbation, CRH's aggregate
        // moves less than the unweighted mean's (averaged over seeds).
        let data = {
            // 30 users × 10 objects for enough signal.
            let mut rng = dptd_stats::seeded_rng(263);
            let ds = dptd_sensing::synthetic::SyntheticConfig {
                num_users: 30,
                num_objects: 10,
                ..Default::default()
            }
            .generate(&mut rng)
            .unwrap();
            ds.observations
        };
        let lambda2 = 1.0;
        let crh_mae: f64 = {
            let p = PrivatePipeline::new(Crh::default(), lambda2).unwrap();
            (0..15)
                .map(|seed| {
                    let mut rng = dptd_stats::seeded_rng(2000 + seed);
                    p.run(&data, &mut rng).unwrap().utility_mae().unwrap()
                })
                .sum::<f64>()
                / 15.0
        };
        let mean_mae: f64 = {
            let p = PrivatePipeline::new(MeanAggregator::new(), lambda2).unwrap();
            (0..15)
                .map(|seed| {
                    let mut rng = dptd_stats::seeded_rng(2000 + seed);
                    p.run(&data, &mut rng).unwrap().utility_mae().unwrap()
                })
                .sum::<f64>()
                / 15.0
        };
        assert!(
            crh_mae < mean_mae,
            "CRH MAE {crh_mae} should beat mean MAE {mean_mae} under noise"
        );
    }

    #[test]
    fn noisier_users_get_lower_weights_on_perturbed_data() {
        // Pin variances: user 3 adds huge noise. After perturbation CRH
        // must rank user 3 last (the paper's §3.2 example / Fig. 7 story).
        let data = {
            let mut rng = dptd_stats::seeded_rng(269);
            dptd_sensing::synthetic::SyntheticConfig {
                num_users: 4,
                num_objects: 60,
                lambda1: 50.0, // very clean original data
                ..Default::default()
            }
            .generate(&mut rng)
            .unwrap()
            .observations
        };
        let p = PrivatePipeline::new(Crh::default(), 1.0).unwrap();
        let mut rng = dptd_stats::seeded_rng(271);
        let mut perturbed = data.clone();
        for s in 0..4 {
            let variance = if s == 3 { 4.0 } else { 1e-6 };
            let original: Vec<f64> = data.observations_of_user(s).map(|(_, v)| v).collect();
            let noisy = p
                .mechanism()
                .perturb_report_with_variance(&original, variance, &mut rng);
            perturbed.replace_user_observations(s, &noisy);
        }
        let out = Crh::default().discover(&perturbed).unwrap();
        for s in 0..3 {
            assert!(
                out.weights[3] < out.weights[s],
                "noisy user should rank last: {:?}",
                out.weights
            );
        }
    }
}
