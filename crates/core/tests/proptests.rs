//! Property-based tests for the mechanism pipeline and the theory
//! formulas.

use dptd_core::mechanism::PrivatePipeline;
use dptd_core::theory::{privacy, tradeoff, utility};
use dptd_ldp::SensitivityBound;
use dptd_truth::baselines::MeanAggregator;
use dptd_truth::ObservationMatrix;
use proptest::prelude::*;

fn requirement(eps: f64, delta: f64, lambda1: f64) -> privacy::PrivacyRequirement {
    privacy::PrivacyRequirement::new(
        eps,
        delta,
        SensitivityBound::new(1.5, 0.9, lambda1).unwrap(),
    )
    .unwrap()
}

proptest! {
    #[test]
    fn expected_gap_consistent_across_rates(
        lambda1 in 0.1..20.0f64,
        lambda2 in 0.1..20.0f64,
    ) {
        // E[Y] > 0, E[Y²] > E[Y]² (Y is non-degenerate), and both scale
        // sensibly: more noise (smaller λ₂) → larger moments.
        let ey = utility::expected_mean_gap(lambda1, lambda2).unwrap();
        let ey2 = utility::expected_square_gap(lambda1, lambda2).unwrap();
        prop_assert!(ey > 0.0);
        prop_assert!(ey2 > ey * ey - 1e-9);
    }

    #[test]
    fn expected_gap_monotone_in_noise(
        lambda1 in 0.2..10.0f64,
        l2_small in 0.05..1.0f64,
        factor in 1.5..50.0f64,
    ) {
        let noisy = utility::expected_mean_gap(lambda1, l2_small).unwrap();
        let quiet = utility::expected_mean_gap(lambda1, l2_small * factor).unwrap();
        prop_assert!(noisy > quiet, "E[Y] noisy {noisy} vs quiet {quiet}");
    }

    #[test]
    fn beta_bound_in_unit_interval(
        lambda1 in 0.2..10.0f64,
        lambda2 in 0.05..10.0f64,
        s in 1usize..2000,
        alpha in 0.01..50.0f64,
    ) {
        let b = utility::utility_beta_bound(lambda1, lambda2, s, alpha).unwrap();
        prop_assert!((0.0..=1.0).contains(&b));
    }

    #[test]
    fn beta_bound_monotone_in_alpha(
        lambda1 in 0.2..10.0f64,
        lambda2 in 0.05..10.0f64,
        s in 10usize..1000,
        alpha in 0.1..20.0f64,
        factor in 1.1..10.0f64,
    ) {
        let loose = utility::utility_beta_bound(lambda1, lambda2, s, alpha * factor).unwrap();
        let tight = utility::utility_beta_bound(lambda1, lambda2, s, alpha).unwrap();
        prop_assert!(loose <= tight + 1e-12);
    }

    #[test]
    fn privacy_floor_positive_and_monotone(
        eps in 0.05..5.0f64,
        delta in 0.01..0.9f64,
        lambda1 in 0.2..10.0f64,
    ) {
        let c = privacy::min_noise_level(&requirement(eps, delta, lambda1));
        prop_assert!(c > 0.0);
        // Doubling ε halves the floor exactly (1/ε dependence).
        let c2 = privacy::min_noise_level(&requirement(2.0 * eps, delta, lambda1));
        prop_assert!((c - 2.0 * c2).abs() < 1e-9 * c.max(1.0));
    }

    #[test]
    fn feasible_windows_are_ordered(
        eps in 0.1..3.0f64,
        delta in 0.05..0.5f64,
        lambda1 in 0.5..5.0f64,
        alpha in 0.05..2.0f64,
        beta in 0.01..0.5f64,
        s in 10usize..1000,
    ) {
        let req = requirement(eps, delta, lambda1);
        let w = tradeoff::feasible_noise_window(alpha, beta, s, &req).unwrap();
        if let Some(op) = w.operating_point() {
            prop_assert!(op >= w.c_min - 1e-12);
            prop_assert!(op <= w.c_max + 1e-12);
        }
    }

    #[test]
    fn perturbation_preserves_matrix_shape(
        users in 1usize..12,
        objects in 1usize..8,
        lambda2 in 0.05..100.0f64,
        seed in 0u64..500,
    ) {
        let rows: Vec<Vec<f64>> = (0..users)
            .map(|s| (0..objects).map(|n| (s * objects + n) as f64).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let data = ObservationMatrix::from_dense(&refs).unwrap();
        let pipeline = PrivatePipeline::new(MeanAggregator::new(), lambda2).unwrap();
        let mut rng = dptd_stats::seeded_rng(seed);
        let (perturbed, stats) = pipeline.perturb(&data, &mut rng);
        prop_assert_eq!(perturbed.num_users(), users);
        prop_assert_eq!(perturbed.num_objects(), objects);
        prop_assert_eq!(perturbed.num_observations(), users * objects);
        prop_assert_eq!(stats.user_variances.len(), users);
        prop_assert!(stats.user_variances.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn mean_pipeline_shift_is_bounded_by_max_noise(
        users in 2usize..10,
        objects in 1usize..6,
        lambda2 in 0.5..50.0f64,
        seed in 0u64..300,
    ) {
        // For the *mean* aggregator the aggregate shift on any object is
        // at most the largest per-user noise magnitude (convexity).
        let rows: Vec<Vec<f64>> = (0..users)
            .map(|_| (0..objects).map(|n| n as f64).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let data = ObservationMatrix::from_dense(&refs).unwrap();
        let pipeline = PrivatePipeline::new(MeanAggregator::new(), lambda2).unwrap();
        let mut rng = dptd_stats::seeded_rng(seed);
        let run = pipeline.run(&data, &mut rng).unwrap();
        let max_noise = (0..users)
            .flat_map(|s| {
                let orig = data.observations_of_user(s);
                let pert = run.perturbed_matrix.observations_of_user(s);
                orig.zip(pert).map(|((_, a), (_, b))| (a - b).abs()).collect::<Vec<_>>()
            })
            .fold(0.0f64, f64::max);
        for n in 0..objects {
            let shift = (run.unperturbed.truths[n] - run.perturbed.truths[n]).abs();
            prop_assert!(shift <= max_noise + 1e-9);
        }
    }
}
