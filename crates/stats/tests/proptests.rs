//! Property-based tests for the statistics substrate.

use dptd_stats::dist::{Continuous, Exponential, Gamma, Laplace, Normal, Uniform};
use dptd_stats::special::{erf, erfc, gamma_p, gamma_q, std_normal_cdf, std_normal_quantile};
use dptd_stats::summary::{mae, max_abs_error, quantile, rmse, RunningStats, Summary};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

fn positive_f64() -> impl Strategy<Value = f64> {
    1e-3..1e3f64
}

proptest! {
    #[test]
    fn erf_is_odd(x in -5.0..5.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
    }

    #[test]
    fn erf_erfc_complement(x in -5.0..5.0f64) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn erf_monotone(a in -5.0..5.0f64, b in -5.0..5.0f64) {
        if a < b {
            prop_assert!(erf(a) <= erf(b) + 1e-15);
        }
    }

    #[test]
    fn gamma_pq_complement(a in 0.05..20.0f64, x in 0.0..50.0f64) {
        prop_assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_quantile_roundtrip(p in 1e-6..0.999999f64) {
        let z = std_normal_quantile(p);
        prop_assert!((std_normal_cdf(z) - p).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_monotone(a in -8.0..8.0f64, b in -8.0..8.0f64) {
        if a <= b {
            prop_assert!(std_normal_cdf(a) <= std_normal_cdf(b) + 1e-15);
        }
    }

    #[test]
    fn normal_quantile_symmetry(p in 1e-6..0.5f64) {
        let lo = std_normal_quantile(p);
        let hi = std_normal_quantile(1.0 - p);
        prop_assert!((lo + hi).abs() < 1e-8);
    }

    #[test]
    fn normal_cdf_bounds(mu in finite_f64(), sigma in positive_f64(), x in finite_f64()) {
        let d = Normal::new(mu, sigma).unwrap();
        let c = d.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn exponential_samples_nonnegative(rate in positive_f64(), seed in 0u64..1000) {
        let d = Exponential::new(rate).unwrap();
        let mut rng = dptd_stats::seeded_rng(seed);
        for _ in 0..64 {
            prop_assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn gamma_samples_positive(shape in 0.1..10.0f64, scale in positive_f64(), seed in 0u64..1000) {
        let d = Gamma::new(shape, scale).unwrap();
        let mut rng = dptd_stats::seeded_rng(seed);
        for _ in 0..32 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn laplace_cdf_quantile_roundtrip(loc in finite_f64(), scale in positive_f64(), p in 0.001..0.999f64) {
        let d = Laplace::new(loc, scale).unwrap();
        prop_assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-9);
    }

    #[test]
    fn uniform_samples_in_support(low in -100.0..100.0f64, width in positive_f64(), seed in 0u64..1000) {
        let d = Uniform::new(low, low + width).unwrap();
        let mut rng = dptd_stats::seeded_rng(seed);
        for _ in 0..32 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= low && x < low + width);
        }
    }

    #[test]
    fn welford_mean_within_range(xs in prop::collection::vec(-1e6..1e6f64, 1..200)) {
        let r: RunningStats = xs.iter().copied().collect();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(r.mean() >= lo - 1e-9 && r.mean() <= hi + 1e-9);
        prop_assert!(r.sample_variance() >= 0.0);
    }

    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1e3..1e3f64, 1..100),
        split in 0usize..100,
    ) {
        let k = split.min(xs.len());
        let mut a: RunningStats = xs[..k].iter().copied().collect();
        let b: RunningStats = xs[k..].iter().copied().collect();
        a.merge(&b);
        let whole: RunningStats = xs.iter().copied().collect();
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-6);
    }

    #[test]
    fn mae_triangle_like(
        xs in prop::collection::vec(-1e3..1e3f64, 1..50),
        ys in prop::collection::vec(-1e3..1e3f64, 1..50),
    ) {
        if xs.len() == ys.len() {
            let m = mae(&xs, &ys).unwrap();
            let r = rmse(&xs, &ys).unwrap();
            let mx = max_abs_error(&xs, &ys).unwrap();
            // MAE <= RMSE <= max abs error (power-mean inequality).
            prop_assert!(m <= r + 1e-9);
            prop_assert!(r <= mx + 1e-9);
            prop_assert!(m >= 0.0);
        }
    }

    #[test]
    fn mae_zero_iff_identical(xs in prop::collection::vec(-1e3..1e3f64, 1..50)) {
        prop_assert!(mae(&xs, &xs).unwrap() == 0.0);
    }

    #[test]
    fn quantile_monotone_in_p(
        xs in prop::collection::vec(-1e3..1e3f64, 2..50),
        p1 in 0.0..1.0f64,
        p2 in 0.0..1.0f64,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(quantile(&xs, lo).unwrap() <= quantile(&xs, hi).unwrap() + 1e-12);
    }

    #[test]
    fn summary_median_between_min_max(xs in prop::collection::vec(-1e3..1e3f64, 1..50)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }
}
