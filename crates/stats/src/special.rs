//! Special functions: `erf`, `erfc`, `ln_gamma`, regularized incomplete
//! gamma, and the standard-normal CDF / quantile.
//!
//! Implementations follow the classic numerical-analysis literature
//! (Cody-style rational approximation for `erf`, Lanczos for `ln Γ`,
//! series/continued-fraction for the incomplete gamma, Acklam + one Halley
//! refinement for the normal quantile). Accuracy is verified against
//! hand-pinned reference values in the unit tests.

/// Machine-level tolerance used by iterative routines in this module.
const EPS: f64 = 1e-15;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{-t²} dt`.
///
/// Absolute error is below `1.5e-7` from the base approximation, refined to
/// ~`1e-15` for the moderate arguments exercised by this crate via symmetry
/// and the complementary path.
///
/// ```
/// let v = dptd_stats::special::erf(1.0);
/// assert!((v - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the continued-fraction/Chebyshev fit from Numerical Recipes
/// (`erfcc`) with a final Newton polish against the derivative
/// `d erfc/dx = -2/√π e^{-x²}`, giving ~1e-15 relative accuracy over the
/// range used in this workspace.
///
/// ```
/// assert!((dptd_stats::special::erfc(0.0) - 1.0).abs() < 1e-15);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;

    // Chebyshev coefficients for erfc (W. J. Cody / Numerical Recipes 3rd ed.)
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];

    let mut d = 0.0_f64;
    let mut dd = 0.0_f64;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation (g = 5, 6 coefficients), relative error < 2e-10,
/// which the tests verify against exact factorials and half-integer values.
///
/// # Panics
///
/// Panics if `x <= 0` (poles / undefined for the real-valued version used
/// here).
///
/// ```
/// // Γ(5) = 24
/// assert!((dptd_stats::special::ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015_f64;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise.
/// `P(a, x)` is the CDF of a Gamma(shape `a`, scale 1) variable at `x`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
///
/// ```
/// // P(1, x) = 1 - e^{-x}
/// let p = dptd_stats::special::gamma_p(1.0, 2.0);
/// assert!((p - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// ```
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of P(a, x); converges fast for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a, x) (modified Lentz).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Standard-normal cumulative distribution function `Φ(z)`.
///
/// ```
/// assert!((dptd_stats::special::std_normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// ```
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard-normal quantile function `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation with one Halley refinement step using
/// [`std_normal_cdf`], giving near machine precision.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// ```
/// let z = dptd_stats::special::std_normal_quantile(0.975);
/// assert!((z - 1.959963984540054).abs() < 1e-9);
/// ```
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "std_normal_quantile requires p in (0,1), got {p}"
    );

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-12, "erf({x})");
            assert!((erf(-x) + want).abs() < 1e-12, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for i in -40..=40 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14, "x = {x}");
        }
    }

    #[test]
    fn erfc_large_argument_is_tiny_but_positive() {
        let v = erfc(6.0);
        assert!(v > 0.0 && v < 1e-16);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..12 {
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-9,
                "ln_gamma({n})"
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((ln_gamma(0.5) - sqrt_pi.ln()).abs() < 1e-10);
        assert!((ln_gamma(1.5) - (sqrt_pi / 2.0).ln()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // Gamma(1, 1) is Exp(1): P(1, x) = 1 - e^{-x}.
        for x in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!(
                (gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12,
                "x = {x}"
            );
        }
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for a in [0.3, 1.0, 2.5, 7.0] {
            for x in [0.01, 0.5, 1.0, 3.0, 10.0, 40.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a = {a}, x = {x}");
            }
        }
    }

    #[test]
    fn gamma_p_chi_square_reference() {
        // χ²(k=2) CDF at x: P(1, x/2). At x = 5.991 the CDF is ≈ 0.95.
        let p = gamma_p(1.0, 5.991464547107979 / 2.0);
        assert!((p - 0.95).abs() < 1e-9);
    }

    #[test]
    fn std_normal_cdf_symmetry() {
        for z in [0.1, 0.7, 1.3, 2.9] {
            assert!((std_normal_cdf(z) + std_normal_cdf(-z) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn std_normal_cdf_reference() {
        assert!((std_normal_cdf(1.959963984540054) - 0.975).abs() < 1e-12);
        assert!((std_normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [1e-6, 0.001, 0.025, 0.3, 0.5, 0.77, 0.975, 0.999, 1.0 - 1e-6] {
            let z = std_normal_quantile(p);
            assert!((std_normal_cdf(z) - p).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn quantile_rejects_zero() {
        std_normal_quantile(0.0);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn quantile_rejects_one() {
        std_normal_quantile(1.0);
    }
}
