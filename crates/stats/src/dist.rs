//! Continuous probability distributions.
//!
//! The offline dependency set contains [`rand`] but not `rand_distr` or
//! `statrs`, so the distributions the paper's mechanism and experiments
//! need are implemented here: sampling, densities, CDFs and quantiles for
//! the normal, exponential, gamma, Laplace and uniform families, all
//! validated against the analytic CDFs by the KS tests in
//! [`crate::gof`].
//!
//! Every sampler draws from a caller-supplied [`Rng`], so a fixed seed
//! reproduces an experiment exactly.

use rand::Rng;

use crate::special::{gamma_p, ln_gamma, std_normal_cdf, std_normal_quantile};
use crate::StatsError;

/// A continuous univariate distribution: sampling plus the analytic
/// density/CDF/quantile functions.
pub trait Continuous {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draw `n` samples into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Natural log of the density at `x` (overridden where it can be
    /// computed without under/overflow).
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile (inverse CDF) at probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)` (the open interval; the endpoints
    /// are ±∞ or the support boundary depending on the family).
    fn quantile(&self, p: f64) -> f64;

    /// Distribution mean.
    fn mean(&self) -> f64;

    /// Distribution variance.
    fn variance(&self) -> f64;
}

fn check_probability(p: f64) {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile probability {p} must be in (0, 1)"
    );
}

fn validate(name: &'static str, value: f64, ok: bool) -> Result<(), StatsError> {
    if ok {
        Ok(())
    } else {
        Err(StatsError::InvalidParameter {
            name,
            value,
            constraint: "must be finite and > 0",
        })
    }
}

/// Normal (Gaussian) distribution `N(μ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create from mean `μ` and standard deviation `σ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `μ` is not finite or
    /// `σ` is not finite and strictly positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                value: mu,
                constraint: "must be finite",
            });
        }
        validate("sigma", sigma, sigma.is_finite() && sigma > 0.0)?;
        Ok(Self { mu, sigma })
    }

    /// Create from mean `μ` and **variance** `σ² > 0` (the paper's noise
    /// model hands around variances, not standard deviations).
    ///
    /// # Errors
    ///
    /// Same domain errors as [`Normal::new`].
    pub fn from_variance(mu: f64, variance: f64) -> Result<Self, StatsError> {
        validate("variance", variance, variance.is_finite() && variance > 0.0)?;
        Self::new(mu, variance.sqrt())
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Mean `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draw one standard-normal variate via Box–Muller.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // u ∈ (0, 1]: avoids ln(0). One pair of uniforms per variate keeps
        // the trait object-free and the stream layout simple.
        let u: f64 = 1.0 - rng.gen::<f64>();
        let v: f64 = rng.gen();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }
}

impl Continuous for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * Self::standard_sample(rng)
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (std::f64::consts::TAU).sqrt())
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        -0.5 * z * z - self.sigma.ln() - 0.5 * std::f64::consts::TAU.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        check_probability(p);
        self.mu + self.sigma * std_normal_quantile(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

/// Exponential distribution with **rate** `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create from rate `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `λ` is not finite and
    /// strictly positive.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        validate("rate", rate, rate.is_finite() && rate > 0.0)?;
        Ok(Self { rate })
    }

    /// The rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Continuous for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF on u ∈ (0, 1].
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        check_probability(p);
        -(-p).ln_1p() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

/// Gamma distribution with shape `k` and **scale** `θ` (mean `kθ`); the
/// χ²(k) distribution is `Gamma(k/2, 2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Create from shape `k > 0` and scale `θ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if either parameter is not
    /// finite and strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        validate("shape", shape, shape.is_finite() && shape > 0.0)?;
        validate("scale", scale, scale.is_finite() && scale > 0.0)?;
        Ok(Self { shape, scale })
    }

    /// The shape `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Marsaglia–Tsang squeeze sampler for shape ≥ 1.
    fn sample_shape_ge_one<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal::standard_sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Continuous for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit = if self.shape >= 1.0 {
            Self::sample_shape_ge_one(self.shape, rng)
        } else {
            // Boost: G(k) = G(k+1) · U^{1/k}.
            let g = Self::sample_shape_ge_one(self.shape + 1.0, rng);
            let u: f64 = 1.0 - rng.gen::<f64>();
            g * u.powf(1.0 / self.shape)
        };
        // A shape < 1 boost can underflow to exactly 0, which is outside
        // the support; nudge to the smallest positive normal.
        (unit * self.scale).max(f64::MIN_POSITIVE)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        ((self.shape - 1.0) * z.ln() - z - ln_gamma(self.shape)).exp() / self.scale
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        check_probability(p);
        // Wilson–Hilferty starting point, then bisection on the monotone
        // regularised incomplete gamma (robust for all shapes; the χ²
        // factors CATD needs land here with shapes from 0.5 upwards).
        let k = self.shape;
        let z = std_normal_quantile(p);
        let wh = k * (1.0 - 1.0 / (9.0 * k) + z / (3.0 * k.sqrt())).powi(3);
        let mut hi = if wh.is_finite() && wh > 0.0 { wh } else { k };
        while gamma_p(k, hi) < p {
            hi *= 2.0;
            if hi > 1e300 {
                break;
            }
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if gamma_p(k, mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-14 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi) * self.scale
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }
}

/// Laplace (double-exponential) distribution with location `μ` and scale
/// `b` — the classic ε-LDP noise distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    loc: f64,
    scale: f64,
}

impl Laplace {
    /// Create from location `μ` (finite) and scale `b > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] on a non-finite location
    /// or a scale that is not finite and strictly positive.
    pub fn new(loc: f64, scale: f64) -> Result<Self, StatsError> {
        if !loc.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "loc",
                value: loc,
                constraint: "must be finite",
            });
        }
        validate("scale", scale, scale.is_finite() && scale > 0.0)?;
        Ok(Self { loc, scale })
    }

    /// The location `μ`.
    pub fn loc(&self) -> f64 {
        self.loc
    }

    /// The scale `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Continuous for Laplace {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF on u ∈ (-1/2, 1/2].
        let u: f64 = rng.gen::<f64>() - 0.5;
        self.loc - self.scale * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }

    fn pdf(&self, x: f64) -> f64 {
        (-(x - self.loc).abs() / self.scale).exp() / (2.0 * self.scale)
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.loc) / self.scale;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        check_probability(p);
        if p < 0.5 {
            self.loc + self.scale * (2.0 * p).ln()
        } else {
            self.loc - self.scale * (2.0 - 2.0 * p).ln()
        }
    }

    fn mean(&self) -> f64 {
        self.loc
    }

    fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }
}

/// Uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Create on `[low, high)` with `low < high`, both finite.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the bounds are not
    /// finite or not strictly ordered.
    pub fn new(low: f64, high: f64) -> Result<Self, StatsError> {
        if !(low.is_finite() && high.is_finite() && low < high) {
            return Err(StatsError::InvalidParameter {
                name: "high",
                value: high,
                constraint: "bounds must be finite with low < high",
            });
        }
        Ok(Self { low, high })
    }

    /// The inclusive lower bound.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// The exclusive upper bound.
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl Continuous for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + rng.gen::<f64>() * (self.high - self.low)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x >= self.low && x < self.high {
            1.0 / (self.high - self.low)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.low {
            0.0
        } else if x >= self.high {
            1.0
        } else {
            (x - self.low) / (self.high - self.low)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        check_probability(p);
        self.low + p * (self.high - self.low)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }

    fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::from_variance(0.0, -1.0).is_err());
        assert!(Exponential::new(0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(1.0, f64::INFINITY).is_err());
        assert!(Laplace::new(0.0, -1.0).is_err());
        assert!(Uniform::new(1.0, 1.0).is_err());
    }

    #[test]
    fn normal_moments_match_samples() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = crate::seeded_rng(101);
        let xs = d.sample_n(&mut rng, 50_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - d.mean()).abs() < 0.05, "mean {mean}");
        assert!((var - d.variance()).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_moments_match_samples() {
        let d = Exponential::new(2.5).unwrap();
        let mut rng = crate::seeded_rng(103);
        let xs = d.sample_n(&mut rng, 50_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - d.mean()).abs() < 0.01, "mean {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_moments_match_samples() {
        for (shape, scale) in [(0.5, 2.0), (1.0, 1.0), (3.0, 0.5), (9.5, 2.0)] {
            let d = Gamma::new(shape, scale).unwrap();
            let mut rng = crate::seeded_rng(107);
            let xs = d.sample_n(&mut rng, 50_000);
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            assert!(
                (mean - d.mean()).abs() < 0.05 * d.mean().max(1.0),
                "shape {shape}: mean {mean} vs {}",
                d.mean()
            );
            assert!(xs.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn cdf_quantile_round_trips() {
        let n = Normal::new(-1.0, 3.0).unwrap();
        let e = Exponential::new(0.7).unwrap();
        let g = Gamma::new(2.5, 1.5).unwrap();
        let l = Laplace::new(0.5, 2.0).unwrap();
        let u = Uniform::new(-2.0, 5.0).unwrap();
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            assert!((n.cdf(n.quantile(p)) - p).abs() < 1e-8);
            assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-12);
            assert!((g.cdf(g.quantile(p)) - p).abs() < 1e-8, "gamma at {p}");
            assert!((l.cdf(l.quantile(p)) - p).abs() < 1e-12);
            assert!((u.cdf(u.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn chi_square_quantiles_match_tables() {
        // χ²(k) = Gamma(k/2, 2); spot-check textbook values.
        let cases = [
            (1.0, 0.95, 3.8415),
            (2.0, 0.95, 5.9915),
            (5.0, 0.95, 11.0705),
            (10.0, 0.05, 3.9403),
        ];
        for (k, p, want) in cases {
            let d = Gamma::new(k / 2.0, 2.0).unwrap();
            let got = d.quantile(p);
            assert!(
                (got - want).abs() < 1e-3,
                "chi2({k}) at {p}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn laplace_sampler_is_symmetric() {
        let d = Laplace::new(0.0, 1.0).unwrap();
        let mut rng = crate::seeded_rng(109);
        let xs = d.sample_n(&mut rng, 50_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn uniform_stays_in_support() {
        let d = Uniform::new(2.0, 3.0).unwrap();
        let mut rng = crate::seeded_rng(113);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..3.0).contains(&x));
        }
    }
}
