use std::fmt;

/// Error type for invalid statistical parameters or undefined operations.
///
/// Every fallible constructor and computation in this crate returns
/// `Result<_, StatsError>` so callers can distinguish *why* a parameter was
/// rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was outside its domain (e.g. a non-positive
    /// standard deviation). Carries the parameter name and offending value.
    InvalidParameter {
        /// Human-readable parameter name (e.g. `"std_dev"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Constraint the value failed (e.g. `"must be finite and > 0"`).
        constraint: &'static str,
    },
    /// A probability argument was outside `[0, 1]`.
    InvalidProbability {
        /// Human-readable argument name.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The operation needs at least this many data points.
    NotEnoughData {
        /// Number of points required.
        required: usize,
        /// Number of points provided.
        actual: usize,
    },
    /// Two paired slices had different lengths.
    LengthMismatch {
        /// Length of the first slice.
        left: usize,
        /// Length of the second slice.
        right: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "invalid parameter {name} = {value}: {constraint}")
            }
            StatsError::InvalidProbability { name, value } => {
                write!(f, "probability {name} = {value} is outside [0, 1]")
            }
            StatsError::NotEnoughData { required, actual } => {
                write!(f, "need at least {required} data points, got {actual}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(
                    f,
                    "paired slices have mismatched lengths {left} and {right}"
                )
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StatsError::InvalidParameter {
            name: "rate",
            value: -1.0,
            constraint: "must be finite and > 0",
        };
        let s = e.to_string();
        assert!(s.contains("rate"));
        assert!(s.contains("-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }

    #[test]
    fn length_mismatch_display() {
        let e = StatsError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
    }
}
