//! Percentile bootstrap confidence intervals.
//!
//! The experiment harness averages noisy per-replicate metrics (utility
//! MAE, noise magnitude); a bootstrap CI communicates how much of a
//! reported difference is Monte-Carlo error. Used by the `dptd-bench`
//! sweep tables.

use rand::Rng;

use crate::StatsError;

/// A two-sided confidence interval for a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Lower percentile bound.
    pub low: f64,
    /// Upper percentile bound.
    pub high: f64,
    /// The confidence level used (e.g. `0.95`).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains a value.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low && x <= self.high
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.high - self.low
    }
}

/// Percentile bootstrap CI for the mean of `xs`.
///
/// Resamples `xs` with replacement `resamples` times, takes the empirical
/// `(1±level)/2` quantiles of the resampled means.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for fewer than two observations,
/// [`StatsError::InvalidProbability`] for a level outside `(0, 1)`, and
/// [`StatsError::InvalidParameter`] for zero resamples.
///
/// # Example
///
/// ```
/// use dptd_stats::bootstrap::bootstrap_mean_ci;
///
/// let xs = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02];
/// let mut rng = dptd_stats::seeded_rng(1);
/// let ci = bootstrap_mean_ci(&xs, 0.95, 2000, &mut rng).unwrap();
/// assert!(ci.contains(1.0));
/// ```
pub fn bootstrap_mean_ci<R: Rng + ?Sized>(
    xs: &[f64],
    level: f64,
    resamples: usize,
    rng: &mut R,
) -> Result<ConfidenceInterval, StatsError> {
    if xs.len() < 2 {
        return Err(StatsError::NotEnoughData {
            required: 2,
            actual: xs.len(),
        });
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "level",
            value: level,
        });
    }
    if resamples == 0 {
        return Err(StatsError::InvalidParameter {
            name: "resamples",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..xs.len() {
            acc += xs[rng.gen_range(0..xs.len())];
        }
        means.push(acc / xs.len() as f64);
    }
    let alpha = (1.0 - level) / 2.0;
    Ok(ConfidenceInterval {
        mean,
        low: crate::summary::quantile(&means, alpha)?,
        high: crate::summary::quantile(&means, 1.0 - alpha)?,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Continuous, Normal};

    #[test]
    fn validates_inputs() {
        let mut rng = crate::seeded_rng(1009);
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 100, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0, 2.0], 1.0, 100, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0, 2.0], 0.95, 0, &mut rng).is_err());
    }

    #[test]
    fn interval_brackets_the_mean() {
        let mut rng = crate::seeded_rng(1013);
        let xs: Vec<f64> = Normal::new(5.0, 1.0).unwrap().sample_n(&mut rng, 100);
        let ci = bootstrap_mean_ci(&xs, 0.95, 2000, &mut rng).unwrap();
        assert!(ci.low <= ci.mean && ci.mean <= ci.high);
        assert!(ci.contains(5.0), "CI [{}, {}] misses 5", ci.low, ci.high);
    }

    #[test]
    fn more_data_narrows_the_interval() {
        let mut rng = crate::seeded_rng(1019);
        let d = Normal::new(0.0, 1.0).unwrap();
        let small: Vec<f64> = d.sample_n(&mut rng, 20);
        let large: Vec<f64> = d.sample_n(&mut rng, 2000);
        let ci_small = bootstrap_mean_ci(&small, 0.95, 1000, &mut rng).unwrap();
        let ci_large = bootstrap_mean_ci(&large, 0.95, 1000, &mut rng).unwrap();
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn coverage_is_roughly_nominal() {
        // Repeat the experiment: the 90% CI should contain the true mean
        // in roughly 90% of repetitions (generous tolerance for speed).
        let d = Normal::new(2.0, 1.0).unwrap();
        let mut hits = 0;
        let trials = 100;
        for t in 0..trials {
            let mut rng = crate::seeded_rng(2000 + t);
            let xs: Vec<f64> = d.sample_n(&mut rng, 40);
            let ci = bootstrap_mean_ci(&xs, 0.9, 500, &mut rng).unwrap();
            if ci.contains(2.0) {
                hits += 1;
            }
        }
        assert!(
            (75..=100).contains(&hits),
            "coverage {hits}/{trials} far from nominal 90%"
        );
    }
}
