//! Statistics substrate for the `dptd` workspace.
//!
//! The offline dependency set contains [`rand`] but not `rand_distr` or any
//! special-function crate, so everything the paper's mechanism and theory
//! need is implemented here from scratch:
//!
//! * [`special`] — error function, log-gamma, regularized incomplete gamma,
//!   and the standard-normal CDF/quantile built on top of them.
//! * [`dist`] — continuous probability distributions (normal, exponential,
//!   gamma, Laplace, uniform) with sampling, densities, CDFs and quantiles.
//! * [`summary`] — streaming (Welford) and batch summaries, error metrics
//!   (MAE/RMSE), and quantile estimation.
//! * [`gof`] — goodness-of-fit tests (Kolmogorov–Smirnov, chi-square) used
//!   by the test-suite to validate the samplers and by the privacy tests to
//!   compare perturbed-output distributions.
//! * [`histogram`] — fixed-width binning used by the empirical LDP checks.
//! * [`digest`] — deterministic FNV-1a fingerprints for reproducibility
//!   checks (golden stream digests, backend-equivalence diffing).
//!
//! # Example
//!
//! ```
//! use dptd_stats::dist::{Continuous, Exponential, Normal};
//!
//! # fn main() -> Result<(), dptd_stats::StatsError> {
//! let mut rng = dptd_stats::seeded_rng(7);
//! // The paper's noise model: variance ~ Exp(rate λ₂), noise ~ N(0, variance).
//! let variance = Exponential::new(2.0)?.sample(&mut rng);
//! let noise = Normal::new(0.0, variance.sqrt())?.sample(&mut rng);
//! assert!(noise.is_finite());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bootstrap;
pub mod digest;
pub mod dist;
pub mod gof;
pub mod histogram;
pub mod special;
pub mod summary;

mod error;

pub use error::StatsError;

/// Convenience constructor for a deterministic, seedable RNG.
///
/// All simulations in the workspace accept a seed so experiments are exactly
/// reproducible; this wraps `StdRng::seed_from_u64`.
///
/// ```
/// let mut a = dptd_stats::seeded_rng(42);
/// let mut b = dptd_stats::seeded_rng(42);
/// use rand::Rng;
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
