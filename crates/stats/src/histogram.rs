//! Fixed-width histograms.
//!
//! Used by the empirical LDP audit (likelihood-ratio over binned mechanism
//! outputs) and by the experiment harness for diagnostic output.

use crate::StatsError;

/// A histogram with `bins` equal-width bins over `[low, high)`.
///
/// Out-of-range samples are counted in saturating edge bins so that total
/// mass is preserved (important for the privacy audit, where clipping the
/// tails would bias likelihood ratios).
///
/// # Example
///
/// ```
/// use dptd_stats::histogram::Histogram;
///
/// # fn main() -> Result<(), dptd_stats::StatsError> {
/// let mut h = Histogram::new(0.0, 10.0, 5)?;
/// h.extend([1.0, 1.5, 7.0, 11.0]); // 11.0 lands in the last bin
/// assert_eq!(h.count(0), 2);
/// assert_eq!(h.count(3), 1);
/// assert_eq!(h.count(4), 1);
/// assert_eq!(h.total(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create an empty histogram over `[low, high)` with `bins` bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the range is not finite
    /// with `low < high`, or `bins == 0`.
    pub fn new(low: f64, high: f64, bins: usize) -> Result<Self, StatsError> {
        if !(low.is_finite() && high.is_finite() && low < high) {
            return Err(StatsError::InvalidParameter {
                name: "range",
                value: high - low,
                constraint: "low and high must be finite with low < high",
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        Ok(Self {
            low,
            high,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Add one sample. Values below `low` go to bin 0, values at or above
    /// `high` to the last bin.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.low {
            0
        } else if x >= self.high {
            bins - 1
        } else {
            let f = (x - self.low) / (self.high - self.low);
            ((f * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bins()`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All counts as a slice.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The half-open interval `[left, right)` covered by bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bins()`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index {i} out of range");
        let w = (self.high - self.low) / self.counts.len() as f64;
        (self.low + i as f64 * w, self.low + (i + 1) as f64 * w)
    }

    /// Empirical probability mass of bin `i` (`count / total`), `0` when
    /// empty.
    pub fn mass(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Empirical density estimate for bin `i` (mass / bin width).
    pub fn density(&self, i: usize) -> f64 {
        let (l, r) = self.bin_range(i);
        self.mass(i) / (r - l)
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(0.0, 0.0, 4).is_err());
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 3).is_err());
    }

    #[test]
    fn binning_is_exact_on_boundaries() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.push(0.0); // bin 0
        h.push(0.25); // bin 1
        h.push(0.5); // bin 2
        h.push(0.75); // bin 3
        h.push(0.999); // bin 3
        assert_eq!(h.counts(), &[1, 1, 1, 2]);
    }

    #[test]
    fn out_of_range_saturates() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.push(-5.0);
        h.push(5.0);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn mass_and_density() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.extend([0.5, 0.6, 1.5, 1.6]);
        assert_eq!(h.mass(0), 0.5);
        assert_eq!(h.density(0), 0.5);
        let (l, r) = h.bin_range(1);
        assert_eq!((l, r), (1.0, 2.0));
    }

    #[test]
    fn gaussian_histogram_is_symmetricish() {
        use crate::dist::{Continuous, Normal};
        let d = Normal::standard();
        let mut h = Histogram::new(-4.0, 4.0, 8).unwrap();
        h.extend(d.sample_n(&mut crate::seeded_rng(47), 100_000));
        // Compare symmetric bins around zero.
        for i in 0..4 {
            let a = h.mass(i);
            let b = h.mass(7 - i);
            assert!((a - b).abs() < 0.01, "bins {i} vs {}", 7 - i);
        }
    }
}
