//! Batch and streaming summaries plus paired error metrics.
//!
//! The paper's headline utility metric is the **mean absolute error** (MAE,
//! the L1 distance between aggregates before and after perturbation, §5.1);
//! [`mae`] implements it. [`Summary`] and [`RunningStats`] provide the
//! descriptive statistics the experiment harness reports alongside.

use crate::StatsError;

/// Descriptive statistics of a batch of samples.
///
/// # Example
///
/// ```
/// use dptd_stats::summary::Summary;
///
/// # fn main() -> Result<(), dptd_stats::StatsError> {
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n-1) sample variance; `0` when `count == 1`.
    pub variance: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50% quantile, linear interpolation).
    pub median: f64,
}

impl Summary {
    /// Summarise a slice of samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] on an empty slice.
    pub fn of(xs: &[f64]) -> Result<Self, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::NotEnoughData {
                required: 1,
                actual: 0,
            });
        }
        let mut running = RunningStats::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            running.push(x);
            min = min.min(x);
            max = max.max(x);
        }
        Ok(Self {
            count: xs.len(),
            mean: running.mean(),
            variance: running.sample_variance(),
            min,
            max,
            median: quantile(xs, 0.5)?,
        })
    }

    /// Standard deviation (square root of the sample variance).
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Numerically stable streaming mean/variance (Welford's algorithm).
///
/// Used by the experiment harness to accumulate per-trial metrics without
/// storing every replicate.
///
/// # Example
///
/// ```
/// use dptd_stats::summary::RunningStats;
///
/// let mut r = RunningStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 4.0);
/// assert_eq!(r.sample_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations so far; `0` if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; `0` with fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by `n`); `0` if empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation from the sample variance.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut r = Self::new();
        r.extend(iter);
        r
    }
}

/// Mean absolute error between two paired slices — the paper's utility
/// metric (`1/N Σ_n |x*_n − x̂*_n|`, Eq. 6 / §5.1).
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] if the slices differ in length and
/// [`StatsError::NotEnoughData`] if they are empty.
///
/// ```
/// let m = dptd_stats::summary::mae(&[1.0, 2.0], &[1.5, 1.0]).unwrap();
/// assert!((m - 0.75).abs() < 1e-15);
/// ```
pub fn mae(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    paired(a, b)?;
    Ok(a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64)
}

/// Root mean squared error between two paired slices.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] if the slices differ in length and
/// [`StatsError::NotEnoughData`] if they are empty.
pub fn rmse(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    paired(a, b)?;
    let mse = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64;
    Ok(mse.sqrt())
}

/// Largest absolute elementwise difference between two paired slices.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] if the slices differ in length and
/// [`StatsError::NotEnoughData`] if they are empty.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    paired(a, b)?;
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max))
}

fn paired(a: &[f64], b: &[f64]) -> Result<(), StatsError> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(StatsError::NotEnoughData {
            required: 1,
            actual: 0,
        });
    }
    Ok(())
}

/// The `p`-quantile of a slice using linear interpolation between order
/// statistics (type-7, the numpy default).
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] on an empty slice or
/// [`StatsError::InvalidProbability`] if `p ∉ [0, 1]`.
///
/// ```
/// let q = dptd_stats::summary::quantile(&[1.0, 2.0, 3.0, 4.0], 0.5).unwrap();
/// assert_eq!(q, 2.5);
/// ```
pub fn quantile(xs: &[f64], p: f64) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData {
            required: 1,
            actual: 0,
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability {
            name: "p",
            value: p,
        });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// Median convenience wrapper over [`quantile`] at `p = 0.5`.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] on an empty slice.
pub fn median(xs: &[f64]) -> Result<f64, StatsError> {
    quantile(xs, 0.5)
}

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] on an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData {
            required: 1,
            actual: 0,
        });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.variance, 1.0);
    }

    #[test]
    fn summary_rejects_empty() {
        assert!(matches!(
            Summary::of(&[]),
            Err(StatsError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn welford_matches_naive() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let r: RunningStats = xs.iter().copied().collect();
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_var =
            xs.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((r.mean() - naive_mean).abs() < 1e-12);
        assert!((r.sample_variance() - naive_var).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.7 - 3.0).collect();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        let mut merged = a;
        merged.merge(&b);
        let seq: RunningStats = xs.iter().copied().collect();
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-12);
        assert!((merged.sample_variance() - seq.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn mae_rmse_reference() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let b = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(mae(&a, &b).unwrap(), 1.0);
        assert_eq!(rmse(&a, &b).unwrap(), 1.0);
        assert_eq!(max_abs_error(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn paired_metrics_reject_mismatch() {
        assert!(matches!(
            mae(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { left: 1, right: 2 })
        ));
        assert!(rmse(&[], &[]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 10.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 50.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 30.0);
        assert_eq!(quantile(&xs, 0.25).unwrap(), 20.0);
        assert_eq!(quantile(&xs, 0.1).unwrap(), 14.0);
    }

    #[test]
    fn quantile_rejects_bad_p() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn median_of_unsorted() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
    }
}
