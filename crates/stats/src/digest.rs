//! Deterministic 64-bit digests (FNV-1a) for reproducibility checks.
//!
//! Several layers of the workspace need a cheap, platform-independent
//! fingerprint of a numeric sequence: the load generator pins its golden
//! stream digests, and the CLI prints a `weights digest` so two campaign
//! backends can be diffed from the shell. They must all agree on the
//! algorithm and byte order, so the fold lives here once.

/// An incremental FNV-1a hasher over little-endian encodings.
///
/// # Example
///
/// ```
/// use dptd_stats::digest::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write_u64(7);
/// h.write_f64(1.5);
/// let a = h.finish();
/// let mut h = Fnv1a::new();
/// h.write_u64(7);
/// h.write_f64(1.5);
/// assert_eq!(a, h.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Fold one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Fold a `u64` as its 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Fold an `f64` by its IEEE-754 bit pattern (little-endian), so the
    /// digest is exact — no rounding, `-0.0 != 0.0`.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot digest of a float slice by bit pattern.
pub fn fnv1a_f64s(values: &[f64]) -> u64 {
    let mut h = Fnv1a::new();
    for &v in values {
        h.write_f64(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // FNV-1a of the empty input is the offset basis; of b"a" it is
        // the published 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn order_and_bits_matter() {
        assert_ne!(fnv1a_f64s(&[1.0, 2.0]), fnv1a_f64s(&[2.0, 1.0]));
        assert_ne!(fnv1a_f64s(&[0.0]), fnv1a_f64s(&[-0.0]));
        assert_eq!(fnv1a_f64s(&[]), Fnv1a::new().finish());
    }
}
