//! Goodness-of-fit tests.
//!
//! These back two kinds of checks in the workspace:
//!
//! 1. validating the hand-rolled samplers in [`crate::dist`] against their
//!    analytic CDFs (one-sample Kolmogorov–Smirnov), and
//! 2. the *empirical local-differential-privacy* audit in `dptd-ldp`, which
//!    compares output histograms of the mechanism on two different inputs
//!    (two-sample KS / chi-square).

use crate::dist::Continuous;
use crate::StatsError;

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic: the sup-distance between the two CDFs.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution approximation).
    pub p_value: f64,
}

impl KsTest {
    /// Whether the test rejects equality at significance level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// One-sample KS test of `xs` against the analytic CDF of `dist`.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] if `xs` has fewer than 8 points
/// (the asymptotic p-value is meaningless below that).
///
/// ```
/// use dptd_stats::dist::{Continuous, Normal};
/// use dptd_stats::gof::ks_one_sample;
///
/// # fn main() -> Result<(), dptd_stats::StatsError> {
/// let d = Normal::standard();
/// let xs = d.sample_n(&mut dptd_stats::seeded_rng(3), 5000);
/// let t = ks_one_sample(&xs, &d)?;
/// assert!(!t.rejects_at(0.001));
/// # Ok(())
/// # }
/// ```
pub fn ks_one_sample<D: Continuous>(xs: &[f64], dist: &D) -> Result<KsTest, StatsError> {
    if xs.len() < 8 {
        return Err(StatsError::NotEnoughData {
            required: 8,
            actual: xs.len(),
        });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in KS input"));
    let n = sorted.len() as f64;
    let mut d_stat = 0.0_f64;
    for (i, &x) in sorted.iter().enumerate() {
        let cdf = dist.cdf(x);
        let ecdf_hi = (i + 1) as f64 / n;
        let ecdf_lo = i as f64 / n;
        d_stat = d_stat.max((ecdf_hi - cdf).abs()).max((cdf - ecdf_lo).abs());
    }
    Ok(KsTest {
        statistic: d_stat,
        p_value: kolmogorov_sf((n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d_stat),
    })
}

/// Two-sample KS test between `xs` and `ys`.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] if either sample has fewer than 8
/// points.
pub fn ks_two_sample(xs: &[f64], ys: &[f64]) -> Result<KsTest, StatsError> {
    if xs.len() < 8 || ys.len() < 8 {
        return Err(StatsError::NotEnoughData {
            required: 8,
            actual: xs.len().min(ys.len()),
        });
    }
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));

    let (mut i, mut j) = (0usize, 0usize);
    let (n1, n2) = (a.len() as f64, b.len() as f64);
    let mut d_stat = 0.0_f64;
    while i < a.len() && j < b.len() {
        let d1 = a[i];
        let d2 = b[j];
        if d1 <= d2 {
            i += 1;
        }
        if d2 <= d1 {
            j += 1;
        }
        d_stat = d_stat.max((i as f64 / n1 - j as f64 / n2).abs());
    }
    let ne = (n1 * n2 / (n1 + n2)).sqrt();
    Ok(KsTest {
        statistic: d_stat,
        p_value: kolmogorov_sf((ne + 0.12 + 0.11 / ne) * d_stat),
    })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{j≥1} (-1)^{j-1} e^{-2 j² λ²}`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda < 1e-8 {
        return 1.0;
    }
    let mut sum = 0.0_f64;
    let mut sign = 1.0_f64;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Result of a chi-square test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareTest {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom used for the p-value.
    pub dof: usize,
    /// Upper-tail p-value `Q(dof/2, χ²/2)`.
    pub p_value: f64,
}

impl ChiSquareTest {
    /// Whether the test rejects the null at significance level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Pearson chi-square test of observed counts against expected counts.
///
/// `ddof` is the number of *extra* degrees of freedom to subtract beyond the
/// usual `k - 1` (e.g. the number of parameters estimated from the data).
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] if the slices differ in length,
/// [`StatsError::NotEnoughData`] if there are fewer than 2 bins or the
/// degrees of freedom underflow, and [`StatsError::InvalidParameter`] if any
/// expected count is non-positive.
pub fn chi_square(
    observed: &[f64],
    expected: &[f64],
    ddof: usize,
) -> Result<ChiSquareTest, StatsError> {
    if observed.len() != expected.len() {
        return Err(StatsError::LengthMismatch {
            left: observed.len(),
            right: expected.len(),
        });
    }
    if observed.len() < 2 {
        return Err(StatsError::NotEnoughData {
            required: 2,
            actual: observed.len(),
        });
    }
    if observed.len() < 2 + ddof {
        return Err(StatsError::NotEnoughData {
            required: 2 + ddof,
            actual: observed.len(),
        });
    }
    let mut stat = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        if e <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "expected",
                value: e,
                constraint: "all expected counts must be > 0",
            });
        }
        stat += (o - e) * (o - e) / e;
    }
    let dof = observed.len() - 1 - ddof;
    Ok(ChiSquareTest {
        statistic: stat,
        dof,
        p_value: crate::special::gamma_q(dof as f64 / 2.0, stat / 2.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Normal, Uniform};

    #[test]
    fn ks_accepts_correct_distribution() {
        let d = Exponential::new(2.0).unwrap();
        let xs = d.sample_n(&mut crate::seeded_rng(23), 20_000);
        let t = ks_one_sample(&xs, &d).unwrap();
        assert!(!t.rejects_at(0.001), "stat {} p {}", t.statistic, t.p_value);
    }

    #[test]
    fn ks_rejects_wrong_distribution() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let xs = d.sample_n(&mut crate::seeded_rng(29), 20_000);
        let wrong = Normal::new(0.5, 1.0).unwrap();
        let t = ks_one_sample(&xs, &wrong).unwrap();
        assert!(t.rejects_at(0.001), "stat {} p {}", t.statistic, t.p_value);
    }

    #[test]
    fn ks_two_sample_same_source_accepts() {
        let d = Uniform::new(0.0, 1.0).unwrap();
        let xs = d.sample_n(&mut crate::seeded_rng(31), 10_000);
        let ys = d.sample_n(&mut crate::seeded_rng(37), 10_000);
        let t = ks_two_sample(&xs, &ys).unwrap();
        assert!(!t.rejects_at(0.001));
    }

    #[test]
    fn ks_two_sample_shifted_rejects() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let xs = d.sample_n(&mut crate::seeded_rng(41), 10_000);
        let ys: Vec<f64> = d
            .sample_n(&mut crate::seeded_rng(43), 10_000)
            .into_iter()
            .map(|x| x + 0.3)
            .collect();
        let t = ks_two_sample(&xs, &ys).unwrap();
        assert!(t.rejects_at(0.001));
    }

    #[test]
    fn ks_needs_enough_data() {
        let d = Normal::standard();
        assert!(ks_one_sample(&[1.0, 2.0], &d).is_err());
    }

    #[test]
    fn chi_square_uniform_counts_accept() {
        // Perfectly uniform observed counts must not reject.
        let observed = [100.0; 10];
        let expected = [100.0; 10];
        let t = chi_square(&observed, &expected, 0).unwrap();
        assert_eq!(t.statistic, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_skewed_counts_reject() {
        let observed = [200.0, 50.0, 50.0, 100.0];
        let expected = [100.0, 100.0, 100.0, 100.0];
        let t = chi_square(&observed, &expected, 0).unwrap();
        assert!(t.rejects_at(0.001));
    }

    #[test]
    fn chi_square_validates_input() {
        assert!(chi_square(&[1.0], &[1.0], 0).is_err());
        assert!(chi_square(&[1.0, 2.0], &[1.0], 0).is_err());
        assert!(chi_square(&[1.0, 2.0], &[1.0, 0.0], 0).is_err());
        assert!(chi_square(&[1.0, 2.0], &[1.0, 2.0], 1).is_err());
    }
}
