//! [`SegmentStore`]: the segmented write-ahead log itself — rotation,
//! the compactor, garbage collection, and bounded-time recovery.
//!
//! See the [module docs](crate::store) for the layout and crash-safety
//! argument. The store implements [`RecordLog`], so
//! [`EngineBackend::with_log`](crate::backend::EngineBackend::with_log)
//! commits rounds through it exactly as it does through a
//! single-segment [`WalWriter`](crate::wal::WalWriter) — the durability
//! barrier (commit = durable append, failure = rollback) is unchanged.

use std::path::Path;

use crate::wal::{self, EpochRecord, RecordKind, RecordLog, Replay, WalError, WAL_MAGIC};

use super::fs::{DirFs, StoreFs};
use super::manifest::{parse_segment_name, segment_file_name, Manifest, MANIFEST_FILE};

/// Rotation and compaction thresholds. All three are *lazy*: they are
/// evaluated against durably committed state immediately before the
/// next append, so an interrupted run and its resume make identical
/// rotation/compaction decisions — what keeps crash recovery
/// bit-identical at the directory level, not just the state level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Seal the active segment once it holds at least this many bytes
    /// (`0` disables size-based rotation).
    pub rotate_bytes: u64,
    /// Seal the active segment once it holds at least this many records
    /// (`0` disables count-based rotation).
    pub rotate_records: u64,
    /// Write a snapshot and garbage-collect everything it covers once
    /// this many epoch records follow the newest snapshot (`0` disables
    /// compaction; the log then grows without bound, like the
    /// single-segment layout).
    pub compact_every: u64,
}

impl Default for StoreConfig {
    /// 64 MiB size rotation, no count rotation, compaction every 256
    /// records.
    fn default() -> Self {
        Self {
            rotate_bytes: 64 << 20,
            rotate_records: 0,
            compact_every: 256,
        }
    }
}

/// What one segment of a replayed store holds (for `dptd recover
/// --stats` and the harnesses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The segment's id (its file is
    /// [`segment_file_name`]`(id)`).
    pub id: u64,
    /// The file's total length in bytes (committed prefix + any torn
    /// tail).
    pub bytes: u64,
    /// Committed records in the segment.
    pub records: u64,
    /// Epochs of the snapshot records inside the segment (normally at
    /// most one, as the segment's first record).
    pub snapshot_epochs: Vec<u64>,
    /// Torn-tail bytes (only ever non-zero for the active segment).
    pub torn_bytes: u64,
}

/// A read-only replay of a whole segmented store directory.
#[derive(Debug, Clone)]
pub struct StoreReplay {
    /// Every committed record across every segment, in log order —
    /// feed to [`recover_replay`](crate::recovery::recover_replay).
    pub replay: Replay,
    /// Per-segment accounting, in manifest order.
    pub segments: Vec<SegmentInfo>,
    /// Segment files on disk that the manifest does not name, with
    /// their sizes: staged-but-uncommitted segments or interrupted
    /// garbage collection. A writer deletes them at open; a reader
    /// only reports them.
    pub orphans: Vec<(String, u64)>,
    /// The manifest the replay followed (synthesized for a legacy
    /// single-segment directory with no manifest file).
    pub manifest: Manifest,
}

impl StoreReplay {
    /// The newest snapshot record's epoch anywhere in the log.
    pub fn newest_snapshot_epoch(&self) -> Option<u64> {
        self.segments
            .iter()
            .flat_map(|s| s.snapshot_epochs.iter().copied())
            .max()
    }

    /// Total bytes of every manifest-named segment file.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Bytes a compaction running now would free: everything except
    /// one fresh segment holding a snapshot of the newest committed
    /// record. Computed arithmetically — a snapshot is the record's
    /// frame minus its accepted-user list — so inspecting a
    /// million-user log never serializes one just to measure it.
    pub fn reclaimable_bytes(&self) -> u64 {
        let Some(last) = self.replay.records.last() else {
            return 0;
        };
        let snapshot_len = last.encoded_len() - 8 * last.accepted_users.len();
        let keep = (WAL_MAGIC.len() + snapshot_len) as u64;
        self.total_bytes().saturating_sub(keep)
    }
}

/// The segmented snapshot store: an ordered set of checksummed segment
/// files rooted in an atomically-rewritten [`Manifest`], with segment
/// rotation, snapshot compaction and garbage collection.
///
/// Open with [`SegmentStore::open`] (or
/// [`SegmentStore::open_dir`]); commit records through the
/// [`RecordLog`] impl. The caller holds the directory's advisory
/// [`WalLock`](crate::wal::WalLock), exactly as with
/// [`FileWal`](crate::wal::FileWal).
#[derive(Debug)]
pub struct SegmentStore {
    fs: Box<dyn StoreFs>,
    config: StoreConfig,
    manifest: Manifest,
    /// Committed bytes of the active segment (its magic included).
    active_len: u64,
    /// Committed records in the active segment.
    active_records: u64,
    /// Epoch records committed since the newest snapshot (or ever, if
    /// the log holds no snapshot) — the compaction clock.
    records_since_snapshot: u64,
    /// The newest committed record: everything a lazily-written
    /// snapshot needs.
    last_record: Option<EpochRecord>,
    /// Set when an append failed; the next append truncates the active
    /// segment back to its committed length first.
    dirty: bool,
}

/// Replay every manifest-named segment through `read`, enforcing that
/// only the **active** (last) segment may carry a torn tail — sealed
/// segments were synced record-by-record before the manifest ever
/// sealed them, so damage there is real corruption.
///
/// `synthesized` says the manifest was never on disk (a fresh or
/// legacy-adopted directory): only then may the active segment be
/// missing. A *committed* manifest references files it created before
/// its own atomic rewrite, so any named segment that has vanished —
/// sealed or active — lost committed records and is refused rather
/// than silently replayed as a shorter campaign (which would regress
/// the privacy-budget ledger).
fn replay_manifest(
    manifest: &Manifest,
    synthesized: bool,
    mut read: impl FnMut(&str) -> Result<Option<Vec<u8>>, WalError>,
) -> Result<(Replay, Vec<SegmentInfo>), WalError> {
    let mut records = Vec::new();
    let mut infos = Vec::new();
    let mut valid_len = 0u64;
    let mut truncated_bytes = 0u64;
    for (i, &id) in manifest.segments.iter().enumerate() {
        let is_active = i + 1 == manifest.segments.len();
        let name = segment_file_name(id);
        let bytes = match read(&name)? {
            Some(bytes) => bytes,
            None if is_active && synthesized => Vec::new(),
            None => {
                return Err(WalError::Corrupt {
                    offset: 0,
                    reason: "manifest names a segment that is missing",
                });
            }
        };
        let replayed = wal::replay(&bytes)?;
        if !is_active {
            if replayed.truncated_bytes > 0 {
                return Err(WalError::Corrupt {
                    offset: replayed.valid_len,
                    reason: "sealed segment has a torn tail",
                });
            }
            if replayed.records.is_empty() {
                return Err(WalError::Corrupt {
                    offset: 0,
                    reason: "sealed segment holds no committed records",
                });
            }
        } else {
            valid_len = replayed.valid_len;
            truncated_bytes = replayed.truncated_bytes;
        }
        infos.push(SegmentInfo {
            id,
            bytes: bytes.len() as u64,
            records: replayed.records.len() as u64,
            snapshot_epochs: replayed
                .records
                .iter()
                .filter(|r| r.kind == RecordKind::Snapshot)
                .map(|r| r.epoch)
                .collect(),
            torn_bytes: replayed.truncated_bytes,
        });
        records.extend(replayed.records);
    }
    Ok((
        Replay {
            records,
            valid_len,
            truncated_bytes,
        },
        infos,
    ))
}

/// Epoch records after the newest snapshot (the compaction clock's
/// replayed value).
fn count_since_snapshot(records: &[EpochRecord]) -> u64 {
    let mut count = 0;
    for record in records.iter().rev() {
        match record.kind {
            RecordKind::Snapshot => break,
            RecordKind::Epoch => count += 1,
        }
    }
    count
}

impl SegmentStore {
    /// Open (creating or repairing as needed) the segmented store in
    /// `fs`, returning it alongside the replay of every committed
    /// record — hand both to
    /// [`EngineBackend::with_log`](crate::backend::EngineBackend::with_log).
    ///
    /// Opening repairs every crash the store's operations can leave
    /// behind, deterministically: a leftover manifest temp file is
    /// deleted, orphan segments (staged rotations/compactions whose
    /// manifest commit never happened, or an interrupted garbage
    /// collection) are deleted, and the active segment's torn tail is
    /// truncated. A directory written by the single-segment
    /// [`FileWal`](crate::wal::FileWal) layout is adopted in place: its
    /// `segment-000.wal` becomes the whole manifest.
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] for a damaged manifest, a missing or torn
    /// **sealed** segment, or corruption inside any segment;
    /// [`WalError::Io`] for filesystem failures.
    pub fn open(mut fs: Box<dyn StoreFs>, config: StoreConfig) -> Result<(Self, Replay), WalError> {
        // A crash inside an atomic rewrite leaves a `*.tmp` staging file
        // (`MANIFEST.tmp`, `segment-NNN.wal.tmp`); none was ever part of
        // the log, so all are garbage.
        for name in fs.list()? {
            if name.ends_with(".tmp") {
                fs.remove(&name)?;
            }
        }
        let (manifest, manifest_on_disk) = match fs.read(MANIFEST_FILE)? {
            Some(bytes) => (Manifest::decode(&bytes)?, true),
            // Fresh directory, or a legacy single-segment FileWal dir:
            // either way segment 0 is the whole log.
            None => (Manifest { segments: vec![0] }, false),
        };
        // Orphan segments are uncommitted staging or interrupted GC;
        // both repairs are deletion.
        for name in fs.list()? {
            if let Some(id) = parse_segment_name(&name) {
                if !manifest.segments.contains(&id) {
                    fs.remove(&name)?;
                }
            }
        }
        let (replay, infos) = replay_manifest(&manifest, !manifest_on_disk, |name| fs.read(name))?;
        let active_name = segment_file_name(manifest.active());
        if replay.truncated_bytes > 0 {
            fs.truncate(&active_name, replay.valid_len)?;
        }
        let mut active_len = replay.valid_len;
        if active_len == 0 {
            fs.append(&active_name, &WAL_MAGIC)?;
            active_len = WAL_MAGIC.len() as u64;
        }
        if !manifest_on_disk {
            // Adoption is durable only once the manifest is: written
            // after the segment it names exists.
            fs.write_atomic(MANIFEST_FILE, &manifest.encode())?;
        }
        let active_records = infos.last().map_or(0, |info| info.records);
        let store = Self {
            fs,
            config,
            manifest,
            active_len,
            active_records,
            records_since_snapshot: count_since_snapshot(&replay.records),
            last_record: replay.records.last().cloned(),
            dirty: false,
        };
        Ok((store, replay))
    }

    /// [`SegmentStore::open`] over a real directory ([`DirFs`]).
    ///
    /// # Errors
    ///
    /// As [`SegmentStore::open`], plus directory-creation failures.
    pub fn open_dir(dir: &Path, config: StoreConfig) -> Result<(Self, Replay), WalError> {
        let fs = DirFs::open(dir)?;
        Self::open(Box::new(fs), config)
    }

    /// The store's thresholds.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The manifest as currently committed.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Epoch records committed since the newest snapshot.
    pub fn records_since_snapshot(&self) -> u64 {
        self.records_since_snapshot
    }

    fn compaction_due(&self) -> bool {
        self.config.compact_every > 0
            && self.last_record.is_some()
            && self.records_since_snapshot >= self.config.compact_every
    }

    fn rotation_due(&self) -> bool {
        self.active_records > 0
            && ((self.config.rotate_bytes > 0 && self.active_len >= self.config.rotate_bytes)
                || (self.config.rotate_records > 0
                    && self.active_records >= self.config.rotate_records))
    }

    /// Seal the active segment and open a fresh one. Commit point: the
    /// manifest rewrite (a crash before it leaves an orphan the next
    /// open deletes).
    fn rotate(&mut self) -> Result<(), WalError> {
        let id = self.manifest.next_id();
        let name = segment_file_name(id);
        // Atomic creation: a leftover orphan from an earlier interrupted
        // attempt is simply replaced.
        self.fs.write_atomic(&name, &WAL_MAGIC)?;
        let mut next = self.manifest.clone();
        next.segments.push(id);
        self.fs.write_atomic(MANIFEST_FILE, &next.encode())?;
        self.manifest = next;
        self.active_len = WAL_MAGIC.len() as u64;
        self.active_records = 0;
        Ok(())
    }

    /// The compactor: write a snapshot of the newest committed record
    /// into a fresh segment, commit it as the *entire* manifest, then
    /// garbage-collect every superseded segment. Commit point: the
    /// manifest rewrite — before it the snapshot segment is an orphan;
    /// after it the old segments are orphans; either way the next open
    /// repairs by deletion and recovery replays to the same state.
    fn compact(&mut self) -> Result<(), WalError> {
        let snapshot = self
            .last_record
            .as_ref()
            .expect("compaction_due requires a committed record")
            .to_snapshot();
        let id = self.manifest.next_id();
        let name = segment_file_name(id);
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&snapshot.encode());
        self.fs.write_atomic(&name, &bytes)?;
        let next = Manifest { segments: vec![id] };
        self.fs.write_atomic(MANIFEST_FILE, &next.encode())?;
        let old = std::mem::replace(&mut self.manifest, next);
        self.active_len = bytes.len() as u64;
        self.active_records = 1;
        self.records_since_snapshot = 0;
        self.last_record = Some(snapshot);
        // GC: everything the snapshot covers. A failure mid-loop leaves
        // orphans (the manifest no longer names these files), which the
        // next open deletes — recovery never reads them either way.
        for stale in old.segments {
            self.fs.remove(&segment_file_name(stale))?;
        }
        Ok(())
    }
}

impl RecordLog for SegmentStore {
    fn append_record(&mut self, record: &EpochRecord) -> Result<(), WalError> {
        let active = segment_file_name(self.manifest.active());
        if self.dirty {
            // Same repair discipline as `WalWriter`: a failed append may
            // have left a torn prefix (or a full frame whose sync
            // failed, which the caller was told did not commit) —
            // truncate back to the acknowledged length before retrying.
            self.fs.truncate(&active, self.active_len)?;
            self.dirty = false;
        }
        if self.compaction_due() {
            self.compact()?;
        } else if self.rotation_due() {
            self.rotate()?;
        }
        let active = segment_file_name(self.manifest.active());
        let frame = record.encode();
        match self.fs.append(&active, &frame) {
            Ok(()) => {
                self.active_len += frame.len() as u64;
                self.active_records += 1;
                if record.kind == RecordKind::Epoch {
                    self.records_since_snapshot += 1;
                } else {
                    self.records_since_snapshot = 0;
                }
                self.last_record = Some(record.clone());
                Ok(())
            }
            Err(e) => {
                self.dirty = true;
                Err(e)
            }
        }
    }

    fn sync(&mut self) -> Result<(), WalError> {
        let active = segment_file_name(self.manifest.active());
        self.fs.sync(&active)
    }
}

/// Replay a segmented store directory **strictly read-only**: nothing
/// is created, repaired, truncated or deleted — orphans and torn tails
/// are reported, not fixed. This is what `dptd recover` uses.
///
/// A directory with no manifest but a legacy `segment-000.wal` is read
/// through a synthesized single-segment manifest.
///
/// # Errors
///
/// [`WalError::Io`] when the directory holds no log at all;
/// [`WalError::Corrupt`]/[`WalError::BadMagic`] as
/// [`SegmentStore::open`].
pub fn read_dir(dir: &Path) -> Result<StoreReplay, WalError> {
    let read_file = |name: &str| -> Result<Option<Vec<u8>>, WalError> {
        match std::fs::read(dir.join(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(WalError::Io {
                op: "load",
                message: e.to_string(),
            }),
        }
    };
    let (manifest, synthesized) = match read_file(MANIFEST_FILE)? {
        Some(bytes) => (Manifest::decode(&bytes)?, false),
        None => {
            if read_file(&segment_file_name(0))?.is_none() {
                return Err(WalError::Io {
                    op: "load",
                    message: format!(
                        "no write-ahead log in `{}` (neither a MANIFEST nor a segment-000.wal)",
                        dir.display()
                    ),
                });
            }
            (Manifest { segments: vec![0] }, true)
        }
    };
    let (replay, segments) = replay_manifest(&manifest, synthesized, |name| read_file(name))?;
    let mut orphans = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            // Orphans a writer open would delete: segments the manifest
            // does not name, and `*.tmp` staging files left by a crash
            // inside an atomic rewrite.
            let unnamed_segment =
                parse_segment_name(&name).is_some_and(|id| !manifest.segments.contains(&id));
            if unnamed_segment || name.ends_with(".tmp") {
                let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
                orphans.push((name, bytes));
            }
        }
    }
    orphans.sort();
    Ok(StoreReplay {
        replay,
        segments,
        orphans,
        manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::super::fs::MemFs;
    use super::*;
    use crate::recovery::recover_replay;
    use crate::wal::WalPolicy;
    use dptd_truth::Loss;

    const USERS: usize = 3;

    fn policy() -> WalPolicy {
        WalPolicy {
            per_round_epsilon: 0.5,
            per_round_delta: 0.0,
            budget_epsilon: 64.0,
            budget_delta: 0.0,
            stream_tag: 7,
        }
    }

    /// A ledger-consistent record sequence: epoch `e` accepts user
    /// `e % USERS` and snapshots the accumulated state, so
    /// `recover_replay` passes its cross-checks on any suffix seeded
    /// from a snapshot.
    fn records(n: u64) -> Vec<EpochRecord> {
        let mut debits = vec![0u32; USERS];
        let mut losses = vec![0.0f64; USERS];
        (0..n)
            .map(|epoch| {
                let user = (epoch as usize) % USERS;
                debits[user] += 1;
                losses[user] += 0.25 * (epoch + 1) as f64;
                EpochRecord {
                    kind: RecordKind::Epoch,
                    epoch,
                    batches_seen: epoch + 1,
                    loss: Loss::Squared,
                    policy: policy(),
                    accepted_users: vec![user],
                    cumulative_losses: losses.clone(),
                    rounds_debited: debits.clone(),
                }
            })
            .collect()
    }

    fn config(rotate_records: u64, compact_every: u64) -> StoreConfig {
        StoreConfig {
            rotate_bytes: 0,
            rotate_records,
            compact_every,
        }
    }

    fn segment_names(mem: &MemFs) -> Vec<String> {
        mem.snapshot()
            .keys()
            .filter(|k| parse_segment_name(k).is_some())
            .cloned()
            .collect()
    }

    #[test]
    fn rotation_seals_segments_at_the_record_budget() {
        let mem = MemFs::new();
        let (mut store, replay) = SegmentStore::open(Box::new(mem.clone()), config(2, 0)).unwrap();
        assert!(replay.records.is_empty());
        for r in records(5) {
            store.append_record(&r).unwrap();
        }
        // Lazy rotation: segment 0 sealed at 2 records, segment 1 at 2,
        // segment 2 active with the 5th.
        assert_eq!(store.manifest().segments, vec![0, 1, 2]);
        assert_eq!(
            segment_names(&mem),
            vec!["segment-000.wal", "segment-001.wal", "segment-002.wal"]
        );
        drop(store);

        // Reopen: all five records replay across the segments.
        let (store, replay) = SegmentStore::open(Box::new(mem.clone()), config(2, 0)).unwrap();
        assert_eq!(replay.records, records(5));
        assert_eq!(replay.truncated_bytes, 0);
        let recovered = recover_replay(&replay, USERS, Loss::Squared, Some(&policy())).unwrap();
        assert_eq!(recovered.records_applied, 5);
        assert_eq!(recovered.last_epoch, Some(4));
        drop(store);
    }

    #[test]
    fn compaction_snapshots_and_collects_covered_segments() {
        let mem = MemFs::new();
        let (mut store, _) = SegmentStore::open(Box::new(mem.clone()), config(2, 3)).unwrap();
        let all = records(8);
        for r in &all {
            store.append_record(r).unwrap();
        }
        // Compaction fired (lazily) whenever 3 epoch records had
        // accumulated past the newest snapshot: old segments are gone,
        // the manifest names only the post-snapshot tail.
        assert!(
            store.manifest().segments.len() <= 3,
            "manifest kept {} segments",
            store.manifest().segments.len()
        );
        let reference = recover_replay(
            &Replay {
                records: all.clone(),
                valid_len: 0,
                truncated_bytes: 0,
            },
            USERS,
            Loss::Squared,
            Some(&policy()),
        )
        .unwrap();
        drop(store);

        let (_, replay) = SegmentStore::open(Box::new(mem.clone()), config(2, 3)).unwrap();
        // The replay is the compacted suffix: a seeding snapshot plus
        // the records after it — strictly fewer than the full history.
        assert!(replay.records.len() < all.len());
        assert_eq!(replay.records[0].kind, RecordKind::Snapshot);
        let recovered = recover_replay(&replay, USERS, Loss::Squared, Some(&policy())).unwrap();
        assert_eq!(recovered.records_applied, 8);
        assert_eq!(recovered.last_epoch, Some(7));
        assert_eq!(recovered.rounds_debited, reference.rounds_debited);
        assert_eq!(recovered.crh.weights(), reference.crh.weights());
        assert!(recovered.snapshot_epoch.is_some());
    }

    #[test]
    fn disk_usage_is_bounded_by_the_compaction_budget() {
        // 60 rounds with compaction every 4: total on-disk bytes must
        // stay under a fixed multiple of one snapshot, independent of
        // the round count.
        let mem = MemFs::new();
        let (mut store, _) = SegmentStore::open(Box::new(mem.clone()), config(0, 4)).unwrap();
        let all = records(60);
        for r in &all {
            store.append_record(r).unwrap();
        }
        let snapshot_bytes = all.last().unwrap().to_snapshot().encode().len() as u64;
        let total: u64 = mem.snapshot().values().map(|v| v.len() as u64).sum();
        // One snapshot + at most compact_every records + manifest/magic
        // slack; 8× one snapshot is comfortably above that and
        // comfortably below the 60-record uncompacted log.
        assert!(
            total < 8 * snapshot_bytes,
            "{total} bytes on disk vs snapshot {snapshot_bytes}"
        );
        let uncompacted: u64 = all.iter().map(|r| r.encode().len() as u64).sum();
        assert!(total < uncompacted / 2);
    }

    #[test]
    fn legacy_single_segment_directories_are_adopted() {
        // A PR-3-era FileWal directory: segment-000.wal, no manifest.
        let mem = MemFs::new();
        let mut legacy = WAL_MAGIC.to_vec();
        for r in records(3) {
            legacy.extend_from_slice(&r.encode());
        }
        {
            let mut fs: Box<dyn StoreFs> = Box::new(mem.clone());
            fs.append("segment-000.wal", &legacy).unwrap();
        }
        let (store, replay) = SegmentStore::open(Box::new(mem.clone()), config(0, 0)).unwrap();
        assert_eq!(replay.records, records(3));
        assert_eq!(store.manifest().segments, vec![0]);
        // Adoption persisted the manifest.
        assert!(mem.snapshot().contains_key(MANIFEST_FILE));
    }

    #[test]
    fn orphans_and_stale_tmp_files_are_repaired_at_open() {
        let mem = MemFs::new();
        let (mut store, _) = SegmentStore::open(Box::new(mem.clone()), config(2, 0)).unwrap();
        for r in records(3) {
            store.append_record(&r).unwrap();
        }
        drop(store);
        // Simulate a killed rotation/compaction: a staged segment the
        // manifest never committed, plus torn atomic rewrites (both the
        // manifest's and a staged segment's temp file).
        {
            let mut fs: Box<dyn StoreFs> = Box::new(mem.clone());
            fs.append("segment-099.wal", b"staged-but-never-committed")
                .unwrap();
            fs.append("MANIFEST.tmp", b"torn atomic rewrite").unwrap();
            fs.append("segment-042.wal.tmp", b"torn segment staging")
                .unwrap();
        }
        let (_, replay) = SegmentStore::open(Box::new(mem.clone()), config(2, 0)).unwrap();
        assert_eq!(replay.records, records(3), "repair must not lose records");
        let files = mem.snapshot();
        assert!(!files.contains_key("segment-099.wal"), "orphan kept");
        assert!(!files.contains_key("MANIFEST.tmp"), "stale tmp kept");
        assert!(
            !files.contains_key("segment-042.wal.tmp"),
            "stale segment tmp kept"
        );
    }

    #[test]
    fn a_committed_manifest_with_a_missing_active_segment_is_refused() {
        let mem = MemFs::new();
        let (mut store, _) = SegmentStore::open(Box::new(mem.clone()), config(0, 0)).unwrap();
        for r in records(2) {
            store.append_record(&r).unwrap();
        }
        let active = segment_file_name(store.manifest().active());
        drop(store);
        // The manifest is on disk and names the active segment, so its
        // disappearance can only be external data loss: replaying the
        // log as empty would regress the privacy-budget ledger.
        {
            let mut fs: Box<dyn StoreFs> = Box::new(mem.clone());
            fs.remove(&active).unwrap();
        }
        let err = SegmentStore::open(Box::new(mem.clone()), config(0, 0)).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err:?}");
        // Read-only inspection refuses identically... via a real dir.
        let dir = std::env::temp_dir().join(format!(
            "dptd-store-missing-active-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut store, _) = SegmentStore::open_dir(&dir, config(0, 0)).unwrap();
        for r in records(2) {
            store.append_record(&r).unwrap();
        }
        let active = segment_file_name(store.manifest().active());
        drop(store);
        std::fs::remove_file(dir.join(active)).unwrap();
        assert!(matches!(read_dir(&dir), Err(WalError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_gc_repairs_and_missing_sealed_segments_refuse() {
        // Build a compacted store, then re-create one of the collected
        // segments as an orphan (= a GC killed between deletes).
        let mem = MemFs::new();
        let (mut store, _) = SegmentStore::open(Box::new(mem.clone()), config(2, 3)).unwrap();
        for r in records(7) {
            store.append_record(&r).unwrap();
        }
        let manifest = store.manifest().clone();
        drop(store);
        {
            let mut fs: Box<dyn StoreFs> = Box::new(mem.clone());
            let mut stale = WAL_MAGIC.to_vec();
            stale.extend_from_slice(&records(1)[0].encode());
            fs.append("segment-000.wal", &stale).unwrap();
        }
        assert!(!manifest.segments.contains(&0), "0 was collected");
        // Read-only replay reports the orphan; the writer deletes it and
        // recovers the exact same records either way.
        let (_, replay) = SegmentStore::open(Box::new(mem.clone()), config(2, 3)).unwrap();
        let r1 = recover_replay(&replay, USERS, Loss::Squared, Some(&policy())).unwrap();
        assert_eq!(r1.last_epoch, Some(6));
        assert!(!mem.snapshot().contains_key("segment-000.wal"));

        // A manifest-named sealed segment that vanished is refused, not
        // silently skipped: committed records are gone.
        let (mut store, _) = SegmentStore::open(Box::new(mem.clone()), config(1, 0)).unwrap();
        for r in records(9).into_iter().skip(7) {
            store.append_record(&r).unwrap();
        }
        assert!(store.manifest().segments.len() > 1);
        let sealed = segment_file_name(store.manifest().segments[0]);
        drop(store);
        {
            let mut fs: Box<dyn StoreFs> = Box::new(mem.clone());
            fs.remove(&sealed).unwrap();
        }
        let err = SegmentStore::open(Box::new(mem.clone()), config(1, 0)).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn torn_active_tail_is_truncated_only_for_writers() {
        let dir = std::env::temp_dir().join(format!(
            "dptd-store-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut store, _) = SegmentStore::open_dir(&dir, config(2, 0)).unwrap();
        for r in records(3) {
            store.append_record(&r).unwrap();
        }
        drop(store);
        let active = {
            let replayed = read_dir(&dir).unwrap();
            segment_file_name(replayed.manifest.active())
        };
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join(&active))
                .unwrap();
            f.write_all(&[0xba, 0xad]).unwrap();
        }
        // Reader: reports the tear, leaves the bytes alone.
        let replayed = read_dir(&dir).unwrap();
        assert_eq!(replayed.replay.truncated_bytes, 2);
        assert_eq!(replayed.replay.records, records(3));
        assert_eq!(replayed.segments.last().unwrap().torn_bytes, 2);
        let before = std::fs::read(dir.join(&active)).unwrap();
        assert_eq!(read_dir(&dir).unwrap().replay.records.len(), 3);
        assert_eq!(std::fs::read(dir.join(&active)).unwrap(), before);
        // Writer: truncates the tear away.
        let (_, replay) = SegmentStore::open_dir(&dir, config(2, 0)).unwrap();
        assert_eq!(replay.truncated_bytes, 2);
        assert_eq!(
            std::fs::read(dir.join(&active)).unwrap().len(),
            before.len() - 2
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_replay_reports_stats() {
        let mem = MemFs::new();
        let dir = std::env::temp_dir().join(format!(
            "dptd-store-stats-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut store, _) = SegmentStore::open_dir(&dir, config(2, 3)).unwrap();
        for r in records(8) {
            store.append_record(&r).unwrap();
        }
        drop(store);
        let replayed = read_dir(&dir).unwrap();
        assert!(replayed.newest_snapshot_epoch().is_some());
        assert!(replayed.total_bytes() > 0);
        assert!(replayed.reclaimable_bytes() < replayed.total_bytes());
        assert!(replayed.orphans.is_empty());
        drop(mem);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
