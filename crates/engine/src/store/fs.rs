//! The store's view of a directory: named byte files with append,
//! atomic replace, and removal.
//!
//! [`SegmentStore`](crate::store::SegmentStore) never touches the
//! filesystem directly; it goes through [`StoreFs`] so the exact same
//! rotation/compaction/GC logic runs over a real fsynced directory
//! ([`DirFs`]), an in-memory map for tests ([`MemFs`]), and a
//! crash-injecting wrapper ([`FailingFs`]) that kills the "process" at
//! an arbitrary byte budget — the segmented analogue of
//! [`FailingWal`](crate::wal::FailingWal).
//!
//! Durability discipline in [`DirFs`] mirrors [`crate::wal::FileWal`]:
//! appends `sync_data` before returning, file creation and removal
//! fsync the directory (the *name* must survive power loss, not just
//! the bytes), and [`StoreFs::write_atomic`] is temp-file + fsync +
//! rename + directory fsync — the only way the manifest is ever
//! replaced, so a crash leaves either the old manifest or the new one,
//! never a torn hybrid.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::wal::WalError;

fn io_err(op: &'static str, e: std::io::Error) -> WalError {
    WalError::Io {
        op,
        message: e.to_string(),
    }
}

/// A directory of named byte files, as the segmented store consumes it.
///
/// Mutating operations must be durable when they return `Ok` (data
/// synced; names synced on create/remove/rename). A failed operation
/// may leave a *prefix* of an append behind (a torn write) but must
/// never tear [`StoreFs::write_atomic`] — that one is all-or-nothing by
/// contract.
pub trait StoreFs: fmt::Debug + Send {
    /// Read a whole file; `Ok(None)` when it does not exist.
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, WalError>;
    /// Append `bytes` (creating the file if needed), synced before `Ok`.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError>;
    /// Discard everything past `len` bytes of `name`.
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), WalError>;
    /// Atomically replace `name` with `bytes`: after a crash the file
    /// holds either its previous content or exactly `bytes`.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError>;
    /// Remove `name` (an error if it does not exist — guard with
    /// [`StoreFs::read`]), with the removal itself made durable.
    fn remove(&mut self, name: &str) -> Result<(), WalError>;
    /// Names of every file present.
    fn list(&mut self) -> Result<Vec<String>, WalError>;
    /// Flush `name` (and the directory) to stable storage.
    fn sync(&mut self, name: &str) -> Result<(), WalError>;
}

/// [`StoreFs`] over a real directory, with the fsync discipline
/// described in the module docs.
#[derive(Debug, Clone)]
pub struct DirFs {
    dir: PathBuf,
}

impl DirFs {
    /// Open `dir` (creating it, and durably recording its name in the
    /// parent, if needed).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Self, WalError> {
        fs::create_dir_all(dir).map_err(|e| io_err("create dir", e))?;
        if let (Some(parent), Ok(d)) = (dir.parent(), fs::File::open(dir)) {
            drop(d);
            if let Ok(p) = fs::File::open(parent) {
                p.sync_all().map_err(|e| io_err("sync parent dir", e))?;
            }
        }
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    /// The underlying directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn sync_dir(&self) -> Result<(), WalError> {
        let d = fs::File::open(&self.dir).map_err(|e| io_err("open dir", e))?;
        d.sync_all().map_err(|e| io_err("sync dir", e))
    }
}

impl StoreFs for DirFs {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, WalError> {
        match fs::read(self.dir.join(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", e)),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        let path = self.dir.join(name);
        let fresh = !path.exists();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("append", e))?;
        file.write_all(bytes).map_err(|e| io_err("append", e))?;
        file.sync_data().map_err(|e| io_err("append", e))?;
        if fresh {
            self.sync_dir()?;
        }
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), WalError> {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(self.dir.join(name))
            .map_err(|e| io_err("truncate", e))?;
        file.set_len(len).map_err(|e| io_err("truncate", e))?;
        file.sync_data().map_err(|e| io_err("truncate", e))
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let path = self.dir.join(name);
        {
            let mut file = fs::File::create(&tmp).map_err(|e| io_err("write tmp", e))?;
            file.write_all(bytes).map_err(|e| io_err("write tmp", e))?;
            file.sync_all().map_err(|e| io_err("write tmp", e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err("rename", e))?;
        self.sync_dir()
    }

    fn remove(&mut self, name: &str) -> Result<(), WalError> {
        fs::remove_file(self.dir.join(name)).map_err(|e| io_err("remove", e))?;
        self.sync_dir()
    }

    fn list(&mut self) -> Result<Vec<String>, WalError> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("list", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", e))?;
            if entry.file_type().map_err(|e| io_err("list", e))?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn sync(&mut self, name: &str) -> Result<(), WalError> {
        match fs::File::open(self.dir.join(name)) {
            Ok(file) => file.sync_all().map_err(|e| io_err("sync", e))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("sync", e)),
        }
        self.sync_dir()
    }
}

/// In-memory [`StoreFs`] for tests. Clones share the same map, so a
/// harness can keep a handle, hand a clone to the store, "crash" it,
/// and inspect exactly what survived.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemFs {
    /// An empty in-memory directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// A directory seeded with `files` (e.g. what survived a simulated
    /// crash).
    pub fn from_map(files: BTreeMap<String, Vec<u8>>) -> Self {
        Self {
            files: Arc::new(Mutex::new(files)),
        }
    }

    /// A copy of the current directory contents — the unit the
    /// fault-injection harness compares for bit-identical recovery.
    pub fn snapshot(&self) -> BTreeMap<String, Vec<u8>> {
        self.files.lock().expect("memfs lock").clone()
    }
}

impl StoreFs for MemFs {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, WalError> {
        Ok(self.files.lock().expect("memfs lock").get(name).cloned())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.files
            .lock()
            .expect("memfs lock")
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), WalError> {
        if let Some(buf) = self.files.lock().expect("memfs lock").get_mut(name) {
            if (len as usize) < buf.len() {
                buf.truncate(len as usize);
            }
        }
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.files
            .lock()
            .expect("memfs lock")
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), WalError> {
        match self.files.lock().expect("memfs lock").remove(name) {
            Some(_) => Ok(()),
            None => Err(WalError::Io {
                op: "remove",
                message: format!("no such file `{name}`"),
            }),
        }
    }

    fn list(&mut self) -> Result<Vec<String>, WalError> {
        Ok(self
            .files
            .lock()
            .expect("memfs lock")
            .keys()
            .cloned()
            .collect())
    }

    fn sync(&mut self, _name: &str) -> Result<(), WalError> {
        Ok(())
    }
}

/// Crash-injection [`StoreFs`]: forwards to `inner` until a byte budget
/// runs out, then dies — tearing the offending *append* mid-write
/// (exactly what a crash during `write(2)` leaves), while
/// [`StoreFs::write_atomic`], truncation and removal either complete
/// within the budget or crash having done **nothing** (they are atomic
/// on a real filesystem: rename either lands or it does not).
///
/// Costs: an append costs its byte length and can tear; `write_atomic`
/// costs its byte length, all-or-nothing; `truncate` and `remove` cost
/// one unit each, all-or-nothing; reads, listing and syncs are free.
/// Enumerating every budget from 0 to an uninterrupted run's total cost
/// therefore kills the store at every byte of every record append and
/// at every boundary inside rotation, compaction and GC.
#[derive(Debug)]
pub struct FailingFs<F: StoreFs> {
    inner: F,
    remaining: u64,
    crashed: bool,
}

impl<F: StoreFs> FailingFs<F> {
    /// Crash once `budget` cost units have been consumed.
    pub fn new(inner: F, budget: u64) -> Self {
        Self {
            inner,
            remaining: budget,
            crashed: false,
        }
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Unwrap the inner fs (to inspect what survived the crash).
    pub fn into_inner(self) -> F {
        self.inner
    }

    fn dead(op: &'static str) -> WalError {
        WalError::Io {
            op,
            message: "injected crash: process already dead".to_string(),
        }
    }

    /// Charge an all-or-nothing operation costing `cost`.
    fn charge(&mut self, op: &'static str, cost: u64) -> Result<(), WalError> {
        if self.crashed {
            return Err(Self::dead(op));
        }
        if cost > self.remaining {
            self.crashed = true;
            self.remaining = 0;
            return Err(WalError::Io {
                op,
                message: "injected crash: budget exhausted".to_string(),
            });
        }
        self.remaining -= cost;
        Ok(())
    }
}

impl<F: StoreFs> StoreFs for FailingFs<F> {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, WalError> {
        if self.crashed {
            return Err(Self::dead("read"));
        }
        self.inner.read(name)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        if self.crashed {
            return Err(Self::dead("append"));
        }
        if (bytes.len() as u64) <= self.remaining {
            self.remaining -= bytes.len() as u64;
            return self.inner.append(name, bytes);
        }
        // Torn write: persist only the prefix the budget covers, then die.
        let keep = self.remaining as usize;
        self.crashed = true;
        self.remaining = 0;
        if keep > 0 {
            self.inner.append(name, &bytes[..keep])?;
        }
        Err(WalError::Io {
            op: "append",
            message: format!("injected crash: write torn after {keep} bytes"),
        })
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), WalError> {
        self.charge("truncate", 1)?;
        self.inner.truncate(name, len)
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.charge("write_atomic", bytes.len() as u64)?;
        self.inner.write_atomic(name, bytes)
    }

    fn remove(&mut self, name: &str) -> Result<(), WalError> {
        self.charge("remove", 1)?;
        self.inner.remove(name)
    }

    fn list(&mut self) -> Result<Vec<String>, WalError> {
        if self.crashed {
            return Err(Self::dead("list"));
        }
        self.inner.list()
    }

    fn sync(&mut self, name: &str) -> Result<(), WalError> {
        if self.crashed {
            return Err(Self::dead("sync"));
        }
        self.inner.sync(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_round_trips_and_shares_between_clones() {
        let mut fs = MemFs::new();
        assert_eq!(fs.read("a").unwrap(), None);
        fs.append("a", b"he").unwrap();
        fs.append("a", b"llo").unwrap();
        let mut twin = fs.clone();
        assert_eq!(twin.read("a").unwrap().unwrap(), b"hello");
        twin.truncate("a", 2).unwrap();
        assert_eq!(fs.read("a").unwrap().unwrap(), b"he");
        fs.write_atomic("b", b"x").unwrap();
        assert_eq!(fs.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        fs.remove("a").unwrap();
        assert!(fs.remove("a").is_err(), "double remove must error");
        assert_eq!(fs.list().unwrap(), vec!["b".to_string()]);
    }

    #[test]
    fn failingfs_tears_appends_but_never_atomic_writes() {
        let mem = MemFs::new();
        let mut failing = FailingFs::new(mem.clone(), 10);
        failing.append("seg", b"123456").unwrap(); // 6 spent, 4 left
        assert!(failing.write_atomic("MANIFEST", b"12345").is_err());
        assert!(failing.crashed());
        // The atomic write did NOT land torn — it did not land at all.
        assert_eq!(mem.snapshot().get("MANIFEST"), None);
        assert_eq!(mem.snapshot().get("seg").unwrap(), b"123456");

        // An append over budget tears at exactly the remaining bytes.
        let mem = MemFs::new();
        let mut failing = FailingFs::new(mem.clone(), 4);
        assert!(failing.append("seg", b"123456").is_err());
        assert_eq!(mem.snapshot().get("seg").unwrap(), b"1234");
        // The dead process stays dead.
        assert!(failing.read("seg").is_err());
        assert!(failing.append("seg", b"x").is_err());
    }

    #[test]
    fn dirfs_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!(
            "dptd-dirfs-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let mut d = DirFs::open(&dir).unwrap();
        assert_eq!(d.read("a").unwrap(), None);
        d.append("a", b"he").unwrap();
        d.append("a", b"llo").unwrap();
        assert_eq!(d.read("a").unwrap().unwrap(), b"hello");
        d.truncate("a", 2).unwrap();
        d.write_atomic("m", b"manifest").unwrap();
        d.write_atomic("m", b"manifest2").unwrap();
        assert_eq!(d.read("m").unwrap().unwrap(), b"manifest2");
        assert_eq!(d.list().unwrap(), vec!["a".to_string(), "m".to_string()]);
        d.sync("a").unwrap();
        d.remove("a").unwrap();
        assert_eq!(d.read("a").unwrap(), None);
        assert!(d.remove("a").is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
