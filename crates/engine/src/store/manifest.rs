//! The segmented store's manifest: the single source of truth for
//! which segment files constitute the log, in order.
//!
//! The manifest is a tiny checksummed binary file, only ever replaced
//! **atomically** ([`StoreFs::write_atomic`](super::fs::StoreFs) —
//! temp file + fsync + rename + directory fsync), which is what makes
//! rotation and compaction crash-atomic: every multi-file operation is
//! staged so that the single manifest rename is its commit point. Any
//! `segment-*.wal` file *not* named by the manifest is an orphan — a
//! staged segment whose commit never happened, or a collected segment
//! whose deletion was interrupted — and is deterministically deleted
//! when a writer next opens the store.
//!
//! # On-disk layout (version 1, pinned by a golden test)
//!
//! ```text
//! file    := magic frame
//! magic   := "DPTDMAN" 0x01                     (8 bytes)
//! frame   := payload_len:u32 len_check:u32 checksum:u64 payload
//! payload := segment_count:u64 segment_id:u64*  (little-endian)
//! ```
//!
//! `len_check` is `payload_len ^ "MAN1"` and `checksum` is FNV-1a over
//! the payload — the same self-check + checksum discipline as the WAL's
//! record frames. Segment ids are strictly increasing; the **last** id
//! is the active (appending) segment.

use dptd_stats::digest::Fnv1a;

use crate::wal::WalError;

/// Name of the manifest file inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// The 8-byte manifest header: 7 ASCII magic bytes plus the version.
pub const MANIFEST_MAGIC: [u8; 8] = *b"DPTDMAN\x01";

/// XOR mask for the manifest frame's length self-check.
const MAN_XOR: u32 = u32::from_le_bytes(*b"MAN1");

/// The ordered list of segments that constitute the log. The last entry
/// is the active segment; everything before it is sealed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Strictly increasing segment ids, oldest first, never empty.
    pub segments: Vec<u64>,
}

/// File name of segment `id` (`segment-000.wal`, `segment-001.wal`, …;
/// the zero-padding widens past 999 without colliding).
pub fn segment_file_name(id: u64) -> String {
    format!("segment-{id:03}.wal")
}

/// Parse a segment file name back to its id (`None` for any other
/// file — the lock, the manifest, a temp file).
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("segment-")?
        .strip_suffix(".wal")?
        .parse()
        .ok()
}

impl Manifest {
    /// The active (appending) segment's id.
    pub fn active(&self) -> u64 {
        *self.segments.last().expect("manifest is never empty")
    }

    /// The id the next rotation or compaction will use. Ids strictly
    /// increase for the store's lifetime, so a garbage-collected id is
    /// never reused (a stale file can never masquerade as a live one).
    pub fn next_id(&self) -> u64 {
        self.active() + 1
    }

    /// Encode the manifest file (magic + checksummed frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(8 + 8 * self.segments.len());
        payload.extend_from_slice(&(self.segments.len() as u64).to_le_bytes());
        for &id in &self.segments {
            payload.extend_from_slice(&id.to_le_bytes());
        }
        let mut bytes = MANIFEST_MAGIC.to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&((payload.len() as u32) ^ MAN_XOR).to_le_bytes());
        bytes.extend_from_slice(&checksum(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Decode and validate a manifest file.
    ///
    /// A manifest is only ever written atomically, so **any** damage —
    /// bad magic, failed self-check, bad checksum, truncation, a
    /// non-increasing id list — is [`WalError::Corrupt`] (or
    /// [`WalError::BadMagic`] for a foreign header), never repaired:
    /// unlike a log tail there is no legitimate way for it to be torn.
    pub fn decode(bytes: &[u8]) -> Result<Self, WalError> {
        let corrupt = |reason: &'static str, offset: u64| WalError::Corrupt { offset, reason };
        if bytes.len() < MANIFEST_MAGIC.len() {
            return Err(corrupt("manifest shorter than its header", 0));
        }
        if bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(WalError::BadMagic);
        }
        let rest = &bytes[MANIFEST_MAGIC.len()..];
        if rest.len() < 16 {
            return Err(corrupt("manifest frame header truncated", 8));
        }
        let payload_len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        let len_check = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if payload_len ^ MAN_XOR != len_check {
            return Err(corrupt("manifest length failed its self-check", 8));
        }
        let stored_sum = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        let payload = &rest[16..];
        if payload.len() != payload_len as usize {
            return Err(corrupt("manifest payload length mismatch", 24));
        }
        if checksum(payload) != stored_sum {
            return Err(corrupt("manifest checksum mismatch", 24));
        }
        if payload.len() < 8 {
            return Err(corrupt("manifest payload truncated", 24));
        }
        let count = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let ids = &payload[8..];
        if ids.len() as u64 != count.saturating_mul(8) {
            return Err(corrupt("manifest id count disagrees with its payload", 24));
        }
        if count == 0 {
            return Err(corrupt("manifest names no segments", 24));
        }
        let mut segments = Vec::with_capacity(count as usize);
        for chunk in ids.chunks_exact(8) {
            let id = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            if segments.last().is_some_and(|&last| id <= last) {
                return Err(corrupt("manifest segment ids not increasing", 24));
            }
            segments.push(id);
        }
        Ok(Self { segments })
    }
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    for &b in payload {
        h.write_u8(b);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            segments: vec![0, 3, 7],
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        assert_eq!(m.active(), 7);
        assert_eq!(m.next_id(), 8);
    }

    #[test]
    fn golden_manifest_layout_is_pinned() {
        // Version-1 layout, byte for byte. If this fails you changed the
        // manifest format: bump the magic version byte.
        let m = Manifest {
            segments: vec![2, 5],
        };
        let golden: Vec<u8> = [
            b"DPTDMAN\x01".to_vec(),
            // payload_len = 24
            vec![24, 0, 0, 0],
            (24u32 ^ u32::from_le_bytes(*b"MAN1"))
                .to_le_bytes()
                .to_vec(),
            // FNV-1a over the payload
            checksum(&[2u64.to_le_bytes(), 2u64.to_le_bytes(), 5u64.to_le_bytes()].concat())
                .to_le_bytes()
                .to_vec(),
            // count = 2, ids 2 and 5
            vec![2, 0, 0, 0, 0, 0, 0, 0],
            vec![2, 0, 0, 0, 0, 0, 0, 0],
            vec![5, 0, 0, 0, 0, 0, 0, 0],
        ]
        .concat();
        assert_eq!(m.encode(), golden);
    }

    #[test]
    fn every_damaged_manifest_is_refused() {
        let good = Manifest {
            segments: vec![0, 1],
        }
        .encode();
        // Any single-byte flip is BadMagic or Corrupt, never a silent
        // different manifest.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xff;
            let err = Manifest::decode(&bad).unwrap_err();
            assert!(
                matches!(err, WalError::Corrupt { .. } | WalError::BadMagic),
                "flip at {i}: {err:?}"
            );
        }
        // Any truncation is refused too (a manifest is never torn).
        for cut in 0..good.len() {
            assert!(Manifest::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Non-increasing ids and an empty list are structural damage.
        let dup = Manifest {
            segments: vec![3, 3],
        };
        assert!(Manifest::decode(&dup.encode()).is_err());
        let mut empty = MANIFEST_MAGIC.to_vec();
        let payload = 0u64.to_le_bytes();
        empty.extend_from_slice(&8u32.to_le_bytes());
        empty.extend_from_slice(&(8u32 ^ MAN_XOR).to_le_bytes());
        empty.extend_from_slice(&checksum(&payload).to_le_bytes());
        empty.extend_from_slice(&payload);
        assert!(Manifest::decode(&empty).is_err());
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_file_name(0), "segment-000.wal");
        assert_eq!(segment_file_name(12), "segment-012.wal");
        assert_eq!(segment_file_name(4096), "segment-4096.wal");
        for id in [0, 7, 999, 1000, u64::MAX] {
            assert_eq!(parse_segment_name(&segment_file_name(id)), Some(id));
        }
        assert_eq!(parse_segment_name("MANIFEST"), None);
        assert_eq!(parse_segment_name("LOCK"), None);
        assert_eq!(parse_segment_name("segment-000.wal.tmp"), None);
        assert_eq!(parse_segment_name("segment-.wal"), None);
    }
}
