//! Store observation: a hook on every committed mutation of a
//! [`StoreFs`] directory.
//!
//! WAL replication needs to see each append, atomic replace, truncation
//! and removal **after** it has durably landed on the primary, in
//! commit order. [`ObservedFs`] wraps any [`StoreFs`] and notifies a
//! [`StoreObserver`] exactly then — after the inner operation returns
//! `Ok`, never before, and never on failure. The observer is
//! deliberately infallible: a lagging or dead follower must not be able
//! to fail (or reorder) the primary's own writes, so an observer that
//! wants to surface trouble records it for its owner to poll.

use std::fmt;

use crate::wal::WalError;

use super::fs::StoreFs;

/// A sink for committed store mutations, invoked in commit order.
///
/// Reads, listings and syncs are not observed: they do not change the
/// directory, so a follower replaying only these four callbacks
/// reconstructs it byte for byte.
pub trait StoreObserver: fmt::Debug + Send {
    /// `bytes` were appended to `name` (the file was created if new).
    fn on_append(&mut self, name: &str, bytes: &[u8]);
    /// `name` was atomically replaced with `bytes`.
    fn on_write_atomic(&mut self, name: &str, bytes: &[u8]);
    /// `name` was truncated to `len` bytes.
    fn on_truncate(&mut self, name: &str, len: u64);
    /// `name` was removed.
    fn on_remove(&mut self, name: &str);
}

/// A [`StoreFs`] wrapper that forwards every operation to `inner` and
/// reports each **successful** mutation to its observer. Plugs into
/// [`SegmentStore::open`](super::SegmentStore::open) like any other
/// filesystem, so a replicated campaign store is an ordinary store over
/// an observed directory.
#[derive(Debug)]
pub struct ObservedFs {
    inner: Box<dyn StoreFs>,
    observer: Box<dyn StoreObserver>,
}

impl ObservedFs {
    /// Observe every committed mutation of `inner` with `observer`.
    pub fn new(inner: Box<dyn StoreFs>, observer: Box<dyn StoreObserver>) -> Self {
        Self { inner, observer }
    }
}

impl StoreFs for ObservedFs {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, WalError> {
        self.inner.read(name)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.inner.append(name, bytes)?;
        self.observer.on_append(name, bytes);
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), WalError> {
        self.inner.truncate(name, len)?;
        self.observer.on_truncate(name, len);
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        self.inner.write_atomic(name, bytes)?;
        self.observer.on_write_atomic(name, bytes);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), WalError> {
        self.inner.remove(name)?;
        self.observer.on_remove(name);
        Ok(())
    }

    fn list(&mut self) -> Result<Vec<String>, WalError> {
        self.inner.list()
    }

    fn sync(&mut self, name: &str) -> Result<(), WalError> {
        self.inner.sync(name)
    }
}

#[cfg(test)]
mod tests {
    use super::super::fs::MemFs;
    use super::*;

    /// Records callbacks as `(op, name, arg)` tuples.
    #[derive(Debug, Default)]
    struct Recorder(std::sync::Arc<std::sync::Mutex<Vec<(String, String, u64)>>>);

    impl StoreObserver for Recorder {
        fn on_append(&mut self, name: &str, bytes: &[u8]) {
            self.log("append", name, bytes.len() as u64);
        }
        fn on_write_atomic(&mut self, name: &str, bytes: &[u8]) {
            self.log("write_atomic", name, bytes.len() as u64);
        }
        fn on_truncate(&mut self, name: &str, len: u64) {
            self.log("truncate", name, len);
        }
        fn on_remove(&mut self, name: &str) {
            self.log("remove", name, 0);
        }
    }

    impl Recorder {
        fn log(&mut self, op: &str, name: &str, arg: u64) {
            self.0
                .lock()
                .unwrap()
                .push((op.to_string(), name.to_string(), arg));
        }
    }

    #[test]
    fn successful_mutations_are_observed_in_commit_order() {
        let recorder = Recorder::default();
        let ops = recorder.0.clone();
        let mut fs = ObservedFs::new(Box::new(MemFs::new()), Box::new(recorder));
        fs.append("seg", b"abc").unwrap();
        fs.write_atomic("MANIFEST", b"m1").unwrap();
        fs.truncate("seg", 1).unwrap();
        fs.remove("seg").unwrap();
        // Reads/listings/syncs do not mutate and are not observed.
        fs.read("MANIFEST").unwrap();
        fs.list().unwrap();
        fs.sync("MANIFEST").unwrap();
        assert_eq!(
            *ops.lock().unwrap(),
            vec![
                ("append".to_string(), "seg".to_string(), 3),
                ("write_atomic".to_string(), "MANIFEST".to_string(), 2),
                ("truncate".to_string(), "seg".to_string(), 1),
                ("remove".to_string(), "seg".to_string(), 0),
            ]
        );
    }

    #[test]
    fn failed_mutations_are_not_observed() {
        let recorder = Recorder::default();
        let ops = recorder.0.clone();
        let mut fs = ObservedFs::new(Box::new(MemFs::new()), Box::new(recorder));
        // Removing a missing file fails in the inner fs: no callback.
        assert!(fs.remove("ghost").is_err());
        assert!(ops.lock().unwrap().is_empty());
    }
}
