//! Segmented snapshot store: WAL compaction, segment rotation, and
//! bounded-time recovery.
//!
//! The single-segment [`FileWal`](crate::wal::FileWal) layout appends
//! one full-state [`EpochRecord`](crate::wal::EpochRecord) per round to
//! one file forever, so a long-running campaign's disk usage — and its
//! crash-recovery replay time — grow as `O(rounds × num_users)`. This
//! module replaces that placeholder with a **log-structured store**:
//!
//! * [`Manifest`] (`MANIFEST`): a checksummed binary file naming the
//!   ordered segment files that constitute the log, replaced only via
//!   atomic rename (temp file + fsync + rename + directory fsync). The
//!   manifest rename is the commit point of every multi-file
//!   operation.
//! * **Segments** (`segment-NNN.wal`): each a self-contained v1 WAL
//!   file. Appends go to the last (*active*) segment; earlier ones are
//!   sealed at record boundaries. Rotation seals the active segment
//!   once it exceeds a byte/record budget ([`StoreConfig`]).
//! * **The compactor**: once enough epoch records accumulate past the
//!   newest snapshot, the store writes a v2
//!   [`RecordKind::Snapshot`](crate::wal::RecordKind) record — the
//!   same payload layout as every epoch record (which already carries
//!   the full carried-weights + cumulative-ledger state), with an
//!   empty accepted-user set so replay never re-debits — into a fresh
//!   segment, commits that segment as the entire manifest, and
//!   garbage-collects everything the snapshot covers. Disk usage and
//!   recovery time become `O(num_users + rounds_since_last_snapshot)`
//!   instead of `O(campaign lifetime)`.
//! * **Recovery** ([`SegmentStore::open`] for writers, [`read_dir`]
//!   for read-only inspection): replays the manifest's segments in
//!   order; [`recover_replay`](crate::recovery::recover_replay) seeks
//!   to the newest valid snapshot, seeds the estimator and the
//!   privacy-budget ledger from it, and replays only the suffix.
//!   Every crash window — torn record tail, torn manifest rewrite,
//!   staged-but-uncommitted rotation or compaction, interrupted
//!   garbage collection — repairs deterministically (orphan deletion +
//!   tail truncation), so a killed-and-resumed campaign ends
//!   bit-identical to an uninterrupted one, directory bytes included.
//!
//! Crash injection for all of the above runs through [`FailingFs`],
//! the segmented analogue of [`FailingWal`](crate::wal::FailingWal):
//! `crates/engine/tests/store_faults.rs` kills the store at every byte
//! of every append and at every boundary inside rotation, compaction
//! and GC.

mod fs;
mod manifest;
mod observer;
#[allow(clippy::module_inception)]
mod store;

pub use fs::{DirFs, FailingFs, MemFs, StoreFs};
pub use manifest::{
    parse_segment_name, segment_file_name, Manifest, MANIFEST_FILE, MANIFEST_MAGIC,
};
pub use observer::{ObservedFs, StoreObserver};
pub use store::{read_dir, SegmentInfo, SegmentStore, StoreConfig, StoreReplay};
